//! Tiered prediction cascades: cheap calibrated front-tiers with a
//! high-confidence short-circuit.
//!
//! `BENCH_serve.json` shows the per-family serving cost spread is enormous
//! (a 64-row tree batch runs ~50× faster than the MLP), yet every request
//! pays full price for the model it was addressed to. A [`CascadeModel`]
//! bundles an ordered list of tier models sharing one feature contract:
//! tier 0 answers every row it is *confident* about, and only the ambiguous
//! remainder falls through to the next (more expensive) tier.
//!
//! "Confident" must mean the same thing for a tree, a naive bayes, a logreg
//! and an MLP, so every family's raw margin (`AnyClassifier::decision_value`)
//! is passed through a monotone per-tier [`Calibrator`] — Platt sigmoid or
//! isotonic bins, fit on held-out rows at build time — yielding a posterior
//! `p ∈ (0, 1)`. A row short-circuits at tier `t` when
//! `max(p, 1−p) ≥ threshold[t]`.
//!
//! Threshold semantics are exact by construction: calibrated probabilities
//! are clamped to `(CONF_EPS, 1 − CONF_EPS)`, so confidence lives in
//! `[0.5, 1)` — a threshold of `0.0` short-circuits **every** row at that
//! tier (the cascade is byte-identical to the tier alone) and a threshold
//! of `1.0` short-circuits **none** (byte-identical to the tiers below).
//! The last tier always answers.

use crate::any::AnyClassifier;
use crate::error::{MlError, Result};

/// Calibrated probabilities are clamped to `(CONF_EPS, 1 − CONF_EPS)` so
/// confidence is always strictly below 1 (threshold 1.0 ⇒ never
/// short-circuit) and `max(p, 1−p)` is always ≥ 0.5 ≥ 0 (threshold 0.0 ⇒
/// always short-circuit).
pub const CONF_EPS: f64 = 1e-9;

/// Hard cap on cascade depth: per-tier serving counters use fixed slots,
/// and tier provenance travels as one byte per row.
pub const MAX_TIERS: usize = 8;

/// A monotone margin→probability map fit on held-out rows at build time.
///
/// Monotonicity is the load-bearing property: a larger margin never yields
/// a smaller calibrated probability, so thresholding calibrated confidence
/// is equivalent to thresholding the margin itself — calibration only makes
/// the threshold *comparable across model families*.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Calibrator {
    /// Platt scaling: `p = sigmoid(a·s + b)` with `a ≥ 0`.
    Platt {
        /// Slope (non-negative, preserving monotonicity).
        a: f64,
        /// Intercept.
        b: f64,
    },
    /// Isotonic regression (pool-adjacent-violators): a nondecreasing step
    /// function. `xs[i]` is the left edge (smallest score) of block `i`,
    /// `ps[i]` its pooled probability.
    Isotonic {
        /// Sorted, strictly increasing block left edges.
        xs: Vec<f64>,
        /// Nondecreasing block probabilities, parallel to `xs`.
        ps: Vec<f64>,
    },
}

impl Calibrator {
    /// Maps a raw margin to a calibrated positive-class probability,
    /// clamped to `(CONF_EPS, 1 − CONF_EPS)`.
    pub fn calibrate(&self, s: f64) -> f64 {
        let p = match self {
            Calibrator::Platt { a, b } => sigmoid(a * s + b),
            Calibrator::Isotonic { xs, ps } => {
                let i = xs.partition_point(|&x| x <= s);
                if i == 0 {
                    ps[0]
                } else {
                    ps[i - 1]
                }
            }
        };
        p.clamp(CONF_EPS, 1.0 - CONF_EPS)
    }

    /// Confidence of the implied label: `max(p, 1−p) ∈ [0.5, 1)`.
    pub fn confidence(&self, s: f64) -> f64 {
        let p = self.calibrate(s);
        p.max(1.0 - p)
    }

    /// Fits Platt scaling (`p = sigmoid(a·s + b)`, `a ≥ 0`) by Newton's
    /// method on the log-loss, with Platt's smoothed targets
    /// (`t⁺ = (n⁺+1)/(n⁺+2)`, `t⁻ = 1/(n⁻+2)`) to avoid degenerate fits on
    /// separable held-out sets. Deterministic.
    pub fn fit_platt(scores: &[f64], labels: &[bool]) -> Result<Calibrator> {
        if scores.is_empty() || scores.len() != labels.len() {
            return Err(MlError::Invalid(format!(
                "platt fit needs matching non-empty scores/labels, got {}/{}",
                scores.len(),
                labels.len()
            )));
        }
        let n_pos = labels.iter().filter(|&&y| y).count() as f64;
        let n_neg = labels.len() as f64 - n_pos;
        let t_pos = (n_pos + 1.0) / (n_pos + 2.0);
        let t_neg = 1.0 / (n_neg + 2.0);
        let targets: Vec<f64> = labels
            .iter()
            .map(|&y| if y { t_pos } else { t_neg })
            .collect();
        let mut a = 0.0f64;
        let mut b = {
            // Start from the marginal log-odds of the smoothed targets.
            let m = targets.iter().sum::<f64>() / targets.len() as f64;
            (m / (1.0 - m)).ln()
        };
        for _ in 0..100 {
            let (mut ga, mut gb) = (0.0f64, 0.0f64);
            let (mut haa, mut hab, mut hbb) = (0.0f64, 0.0f64, 0.0f64);
            for (&s, &t) in scores.iter().zip(&targets) {
                let p = sigmoid(a * s + b);
                let r = p - t;
                let w = (p * (1.0 - p)).max(1e-12);
                ga += r * s;
                gb += r;
                haa += w * s * s;
                hab += w * s;
                hbb += w;
            }
            // Ridge keeps the 2×2 solve stable when scores are (near-)constant.
            haa += 1e-9;
            hbb += 1e-9;
            let det = haa * hbb - hab * hab;
            if det.abs() < 1e-18 {
                break;
            }
            let da = (ga * hbb - gb * hab) / det;
            let db = (gb * haa - ga * hab) / det;
            a -= da;
            b -= db;
            if da.abs() < 1e-10 && db.abs() < 1e-10 {
                break;
            }
        }
        if !a.is_finite() || !b.is_finite() || a < 0.0 {
            // A negative slope means the margin is anti-correlated with the
            // labels on the held-out set — never true for a sane tier, but
            // monotonicity is a hard invariant, so fall back to the
            // margin-blind constant fit.
            let m = targets.iter().sum::<f64>() / targets.len() as f64;
            a = 0.0;
            b = (m / (1.0 - m)).ln();
        }
        let c = Calibrator::Platt { a, b };
        c.validate()?;
        Ok(c)
    }

    /// Fits isotonic regression by weighted pool-adjacent-violators over the
    /// distinct scores. Block probabilities are the raw pooled means —
    /// nondecreasing by PAV construction (per-block smoothing would break
    /// that across blocks of different sizes); pure 0/1 blocks are softened
    /// by the [`CONF_EPS`] clamp at calibration time instead.
    pub fn fit_isotonic(scores: &[f64], labels: &[bool]) -> Result<Calibrator> {
        if scores.is_empty() || scores.len() != labels.len() {
            return Err(MlError::Invalid(format!(
                "isotonic fit needs matching non-empty scores/labels, got {}/{}",
                scores.len(),
                labels.len()
            )));
        }
        let mut pairs: Vec<(f64, bool)> =
            scores.iter().copied().zip(labels.iter().copied()).collect();
        pairs.sort_by(|l, r| l.0.partial_cmp(&r.0).unwrap_or(std::cmp::Ordering::Equal));
        // Merge equal scores into single weighted points first, so the step
        // edges are strictly increasing.
        struct Block {
            x: f64,
            n: f64,
            pos: f64,
        }
        let mut points: Vec<Block> = Vec::new();
        for (s, y) in pairs {
            match points.last_mut() {
                Some(last) if last.x == s => {
                    last.n += 1.0;
                    last.pos += f64::from(u8::from(y));
                }
                _ => points.push(Block {
                    x: s,
                    n: 1.0,
                    pos: f64::from(u8::from(y)),
                }),
            }
        }
        // PAV: pool any adjacent blocks whose means decrease.
        let mut stack: Vec<Block> = Vec::new();
        for p in points {
            stack.push(p);
            while stack.len() >= 2 {
                let a = &stack[stack.len() - 2];
                let b = &stack[stack.len() - 1];
                if a.pos * b.n <= b.pos * a.n {
                    break;
                }
                let b = stack.pop().expect("two blocks checked");
                let a = stack.last_mut().expect("two blocks checked");
                a.n += b.n;
                a.pos += b.pos;
            }
        }
        let xs: Vec<f64> = stack.iter().map(|b| b.x).collect();
        let ps: Vec<f64> = stack.iter().map(|b| b.pos / b.n).collect();
        let c = Calibrator::Isotonic { xs, ps };
        c.validate()?;
        Ok(c)
    }

    /// Structural invariants (also enforced when decoding artifacts): finite
    /// params, non-negative Platt slope, strictly increasing isotonic edges
    /// with nondecreasing probabilities.
    pub fn validate(&self) -> Result<()> {
        let bad = |what: &str| Err(MlError::Invalid(format!("invalid calibrator: {what}")));
        match self {
            Calibrator::Platt { a, b } => {
                if !a.is_finite() || !b.is_finite() {
                    return bad("non-finite platt params");
                }
                if *a < 0.0 {
                    return bad("negative platt slope breaks monotonicity");
                }
            }
            Calibrator::Isotonic { xs, ps } => {
                if xs.is_empty() || xs.len() != ps.len() {
                    return bad("isotonic edge/probability lengths disagree or are empty");
                }
                if xs.iter().any(|x| !x.is_finite()) || ps.iter().any(|p| !p.is_finite()) {
                    return bad("non-finite isotonic params");
                }
                if xs.windows(2).any(|w| w[0] >= w[1]) {
                    return bad("isotonic edges must be strictly increasing");
                }
                if ps.windows(2).any(|w| w[0] > w[1]) {
                    return bad("isotonic probabilities must be nondecreasing");
                }
            }
        }
        Ok(())
    }
}

#[inline]
fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

/// One stage of a cascade: a model, its margin calibrator, and the
/// confidence threshold at which it may answer a row itself.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CascadeTier {
    /// The tier's classifier (any family, including subset projections and
    /// quantized payloads).
    pub model: AnyClassifier,
    /// Margin→probability map for this tier's decision values.
    pub calibrator: Calibrator,
    /// Short-circuit when calibrated confidence ≥ this (`0.0` = always
    /// answer, `1.0` = never). Ignored on the last tier, which always
    /// answers.
    pub threshold: f64,
}

/// An ordered list of tiers sharing one feature contract. Rows enter at
/// tier 0 and escalate while confidence stays below the tier threshold;
/// the last tier always answers.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CascadeModel {
    /// Tiers, cheapest first. `1..=MAX_TIERS` entries.
    pub tiers: Vec<CascadeTier>,
}

/// Flat per-row output of a tiered batch prediction, in global row order.
#[derive(Debug, Clone, PartialEq)]
pub struct TieredPrediction {
    /// Final label per row.
    pub labels: Vec<bool>,
    /// Index of the tier that answered each row.
    pub tiers: Vec<u8>,
    /// Calibrated confidence of the answering tier, per row.
    pub confidence: Vec<f64>,
}

impl TieredPrediction {
    /// Rows answered per tier, as fixed [`MAX_TIERS`] slots.
    pub fn tier_histogram(&self) -> [u64; MAX_TIERS] {
        let mut h = [0u64; MAX_TIERS];
        for &t in &self.tiers {
            h[(t as usize).min(MAX_TIERS - 1)] += 1;
        }
        h
    }
}

impl CascadeModel {
    /// Builds a cascade, checking tier count, thresholds and calibrators.
    pub fn new(tiers: Vec<CascadeTier>) -> Result<CascadeModel> {
        let c = CascadeModel { tiers };
        c.validate()?;
        Ok(c)
    }

    /// Structural invariants (also enforced when decoding artifacts).
    pub fn validate(&self) -> Result<()> {
        if self.tiers.is_empty() || self.tiers.len() > MAX_TIERS {
            return Err(MlError::Invalid(format!(
                "cascade needs 1..={MAX_TIERS} tiers, got {}",
                self.tiers.len()
            )));
        }
        for (i, tier) in self.tiers.iter().enumerate() {
            if !(0.0..=1.0).contains(&tier.threshold) {
                return Err(MlError::Invalid(format!(
                    "cascade tier {i} threshold {} outside [0, 1]",
                    tier.threshold
                )));
            }
            tier.calibrator.validate()?;
            if matches!(tier.model, AnyClassifier::Cascade(_)) {
                return Err(MlError::Invalid(
                    "cascade tiers cannot themselves be cascades".into(),
                ));
            }
        }
        Ok(())
    }

    /// Per-row tiered walk: returns the answering tier's raw decision value
    /// (label = `value ≥ 0`), its index, and its calibrated confidence.
    /// The reference semantics every batched path must bit-match.
    pub fn decide_row_scratch(&self, row: &[u32], scratch: &mut Vec<u32>) -> (f64, u8, f64) {
        let last = self.tiers.len() - 1;
        for (t, tier) in self.tiers.iter().enumerate() {
            let s = tier.model.decision_value_scratch(row, scratch);
            let conf = tier.calibrator.confidence(s);
            if t == last || conf >= tier.threshold {
                return (s, t as u8, conf);
            }
        }
        unreachable!("last tier always answers")
    }

    /// Tiered prediction over **many row buffers at once** — the cascade
    /// counterpart of `AnyClassifier::predict_segments_sharded`. Tier 0
    /// scores the whole logical batch through the sharded kernels without
    /// copying any segment; rows whose calibrated confidence clears the
    /// tier threshold are answered in place, and only the ambiguous
    /// remainder is re-packed contiguously for the next tier. Output is in
    /// global row order (bit-identical to [`CascadeModel::decide_row_scratch`]
    /// per row, regardless of sharding or segmentation).
    pub fn predict_segments_tiered(
        &self,
        segments: &[&[u32]],
        d: usize,
        max_threads: usize,
        min_rows_per_shard: usize,
    ) -> TieredPrediction {
        assert!(d > 0, "d must be positive");
        let mut bounds = Vec::with_capacity(segments.len() + 1);
        let mut total = 0usize;
        for seg in segments {
            assert!(
                seg.len().is_multiple_of(d),
                "every segment must be n × d codes"
            );
            bounds.push(total);
            total += seg.len() / d;
        }
        bounds.push(total);

        let mut labels = vec![false; total];
        let mut tiers_out = vec![0u8; total];
        let mut conf_out = vec![0f64; total];
        // Global ids of rows still unanswered, and (past tier 0) their codes
        // re-packed contiguously in the same order.
        let mut active: Vec<usize> = (0..total).collect();
        let mut packed: Vec<u32> = Vec::new();
        let last = self.tiers.len() - 1;
        for (t, tier) in self.tiers.iter().enumerate() {
            if active.is_empty() {
                break;
            }
            let scores = if t == 0 {
                tier.model
                    .score_segments_sharded(segments, d, max_threads, min_rows_per_shard)
            } else {
                tier.model.score_segments_sharded(
                    &[packed.as_slice()],
                    d,
                    max_threads,
                    min_rows_per_shard,
                )
            };
            let mut next_active = Vec::new();
            let mut next_packed = Vec::new();
            for (k, &g) in active.iter().enumerate() {
                let s = scores[k];
                let conf = tier.calibrator.confidence(s);
                if t == last || conf >= tier.threshold {
                    labels[g] = s >= 0.0;
                    tiers_out[g] = t as u8;
                    conf_out[g] = conf;
                } else {
                    next_active.push(g);
                    // Locate row g's codes in the original segments.
                    let seg = bounds.partition_point(|&b| b <= g) - 1;
                    let lo = (g - bounds[seg]) * d;
                    next_packed.extend_from_slice(&segments[seg][lo..lo + d]);
                }
            }
            active = next_active;
            packed = next_packed;
        }
        TieredPrediction {
            labels,
            tiers: tiers_out,
            confidence: conf_out,
        }
    }

    /// Single-buffer convenience over [`CascadeModel::predict_segments_tiered`].
    pub fn predict_batch_tiered(
        &self,
        rows: &[u32],
        d: usize,
        max_threads: usize,
        min_rows_per_shard: usize,
    ) -> TieredPrediction {
        self.predict_segments_tiered(&[rows], d, max_threads, min_rows_per_shard)
    }
}

/// Picks the smallest threshold τ (maximizing short-circuit coverage) such
/// that among held-out rows with confidence ≥ τ, the fraction agreeing with
/// the top tier is ≥ `target_p`. Input is per-row `(confidence,
/// agrees_with_top)`. Returns `1.0` (never short-circuit) when no cut
/// meets the target.
pub fn pick_threshold(conf_agree: &[(f64, bool)], target_p: f64) -> f64 {
    let mut sorted = conf_agree.to_vec();
    sorted.sort_by(|l, r| r.0.partial_cmp(&l.0).unwrap_or(std::cmp::Ordering::Equal));
    let mut best = 1.0f64;
    let mut agree = 0usize;
    let mut i = 0usize;
    while i < sorted.len() {
        let c = sorted[i].0;
        // Rows sharing a confidence value are indivisible: include them all.
        while i < sorted.len() && sorted[i].0 == c {
            agree += usize::from(sorted[i].1);
            i += 1;
        }
        if agree as f64 >= target_p * i as f64 {
            best = c;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{CatDataset, FeatureMeta, Provenance};
    use crate::model::{Classifier, MajorityClass};
    use crate::naive_bayes::NaiveBayes;
    use crate::tree::{DecisionTree, SplitCriterion, TreeParams};

    fn ds(seed: u64, n: usize) -> CatDataset {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let d = 3usize;
        let k = 4u32;
        let features: Vec<FeatureMeta> = (0..d)
            .map(|j| FeatureMeta::new(format!("f{j}"), k, Provenance::Home))
            .collect();
        let rows: Vec<u32> = (0..n * d).map(|_| rng.gen_range(0..k)).collect();
        // Learnable signal: label correlates with feature 0.
        let labels: Vec<bool> = (0..n)
            .map(|i| rows[i * d].is_multiple_of(2) ^ rng.gen_bool(0.1))
            .collect();
        CatDataset::new(features, rows, labels).unwrap()
    }

    fn two_tier(t0_threshold: f64) -> (CascadeModel, CatDataset) {
        let data = ds(11, 200);
        let tree = DecisionTree::fit(
            &data,
            TreeParams::new(SplitCriterion::Gini)
                .with_minsplit(2)
                .with_cp(0.0),
        )
        .unwrap();
        let nb = NaiveBayes::fit(&data).unwrap();
        let tree: AnyClassifier = tree.into();
        let scores: Vec<f64> = (0..data.n_rows())
            .map(|i| tree.decision_value(data.row(i)))
            .collect();
        let labels: Vec<bool> = (0..data.n_rows()).map(|i| data.label(i)).collect();
        let cal0 = Calibrator::fit_platt(&scores, &labels).unwrap();
        let cascade = CascadeModel::new(vec![
            CascadeTier {
                model: tree,
                calibrator: cal0,
                threshold: t0_threshold,
            },
            CascadeTier {
                model: nb.into(),
                calibrator: Calibrator::Platt { a: 1.0, b: 0.0 },
                threshold: 1.0,
            },
        ])
        .unwrap();
        (cascade, data)
    }

    #[test]
    fn platt_fit_is_monotone_and_calibrated() {
        let scores: Vec<f64> = (-50..=50).map(|i| f64::from(i) / 10.0).collect();
        let labels: Vec<bool> = scores.iter().map(|&s| s > 0.0).collect();
        let c = Calibrator::fit_platt(&scores, &labels).unwrap();
        let Calibrator::Platt { a, .. } = c else {
            panic!("platt fit returns platt")
        };
        assert!(a > 0.0, "separable data fits a positive slope, got {a}");
        assert!(c.calibrate(3.0) > 0.9);
        assert!(c.calibrate(-3.0) < 0.1);
    }

    #[test]
    fn isotonic_fit_pools_violators() {
        // Noisy but increasing relationship.
        let scores = [-3.0, -2.0, -1.5, -1.0, 0.0, 0.5, 1.0, 2.0, 2.5, 3.0];
        let labels = [
            false, false, true, false, false, true, true, false, true, true,
        ];
        let c = Calibrator::fit_isotonic(&scores, &labels).unwrap();
        c.validate().unwrap();
        // Pooled output is nondecreasing over the whole real line.
        let mut prev = 0.0;
        for i in -40..=40 {
            let p = c.calibrate(f64::from(i) / 10.0);
            assert!(p >= prev, "isotonic output decreased at {i}");
            prev = p;
        }
    }

    #[test]
    fn confidence_stays_inside_half_open_unit() {
        for c in [
            Calibrator::Platt { a: 100.0, b: 0.0 },
            Calibrator::Isotonic {
                xs: vec![0.0],
                ps: vec![1.0],
            },
        ] {
            for s in [-1e9, -1.0, 0.0, 1.0, 1e9] {
                let conf = c.confidence(s);
                assert!((0.5..1.0).contains(&conf), "conf {conf} for s {s}");
            }
        }
    }

    #[test]
    fn batched_tiered_bitmatches_per_row_walk() {
        let (cascade, data) = two_tier(0.9);
        let mut flat = Vec::new();
        for i in 0..data.n_rows() {
            flat.extend_from_slice(data.row(i));
        }
        let d = data.n_features();
        let expect: Vec<(f64, u8, f64)> = (0..data.n_rows())
            .map(|i| cascade.decide_row_scratch(data.row(i), &mut Vec::new()))
            .collect();
        assert!(
            expect.iter().any(|e| e.1 == 0) && expect.iter().any(|e| e.1 == 1),
            "threshold 0.9 should split rows across both tiers"
        );
        for threads in [1, 2, 8] {
            for floor in [1, 16, usize::MAX] {
                let got = cascade.predict_batch_tiered(&flat, d, threads, floor);
                for (i, e) in expect.iter().enumerate() {
                    assert_eq!(got.labels[i], e.0 >= 0.0, "row {i}");
                    assert_eq!(got.tiers[i], e.1, "row {i}");
                    assert_eq!(got.confidence[i].to_bits(), e.2.to_bits(), "row {i}");
                }
            }
        }
        // Ragged segmentation never changes the answers, only the packing.
        let refs: Vec<&[u32]> = (0..data.n_rows()).map(|i| data.row(i)).collect();
        let got = cascade.predict_segments_tiered(&refs, d, 4, 2);
        for (i, e) in expect.iter().enumerate() {
            assert_eq!(got.labels[i], e.0 >= 0.0, "segmented row {i}");
            assert_eq!(got.tiers[i], e.1, "segmented row {i}");
        }
    }

    #[test]
    fn threshold_zero_is_tier0_and_threshold_one_is_top_tier() {
        let (zero, data) = two_tier(0.0);
        let (one, _) = two_tier(1.0);
        let d = data.n_features();
        let mut flat = Vec::new();
        for i in 0..data.n_rows() {
            flat.extend_from_slice(data.row(i));
        }
        let z = zero.predict_batch_tiered(&flat, d, 2, 8);
        let tier0 = zero.tiers[0].model.predict_batch(&flat, d);
        assert_eq!(z.labels, tier0, "threshold 0 ⇒ tier-0 labels");
        assert!(z.tiers.iter().all(|&t| t == 0));
        let o = one.predict_batch_tiered(&flat, d, 2, 8);
        let top = one.tiers[1].model.predict_batch(&flat, d);
        assert_eq!(o.labels, top, "threshold 1 ⇒ top-tier labels");
        assert!(o.tiers.iter().all(|&t| t == 1));
    }

    #[test]
    fn pick_threshold_meets_target_with_max_coverage() {
        // 4 rows at conf .95 all agree; 4 rows at .8 half agree.
        let rows = [
            (0.95, true),
            (0.95, true),
            (0.95, true),
            (0.95, true),
            (0.8, true),
            (0.8, false),
            (0.8, true),
            (0.8, false),
        ];
        assert_eq!(pick_threshold(&rows, 1.0), 0.95);
        // 6/8 = .75 agreement at the .8 cut clears a .7 target.
        assert_eq!(pick_threshold(&rows, 0.7), 0.8);
        // Impossible target: never short-circuit.
        let none = [(0.9, false), (0.8, false)];
        assert_eq!(pick_threshold(&none, 0.5), 1.0);
        assert_eq!(pick_threshold(&[], 0.9), 1.0);
    }

    #[test]
    fn validation_rejects_bad_shapes() {
        assert!(CascadeModel::new(vec![]).is_err());
        let tier = || CascadeTier {
            model: AnyClassifier::Majority(MajorityClass { positive: true }),
            calibrator: Calibrator::Platt { a: 1.0, b: 0.0 },
            threshold: 0.5,
        };
        assert!(CascadeModel::new(vec![tier(); MAX_TIERS + 1]).is_err());
        let mut bad = tier();
        bad.threshold = 1.5;
        assert!(CascadeModel::new(vec![bad]).is_err());
        let mut bad = tier();
        bad.calibrator = Calibrator::Platt { a: -1.0, b: 0.0 };
        assert!(CascadeModel::new(vec![bad]).is_err());
        let mut bad = tier();
        bad.calibrator = Calibrator::Isotonic {
            xs: vec![0.0, 0.0],
            ps: vec![0.2, 0.4],
        };
        assert!(CascadeModel::new(vec![bad]).is_err());
        // Nested cascades are rejected.
        let inner = CascadeModel::new(vec![tier()]).unwrap();
        let mut nested = tier();
        nested.model = AnyClassifier::Cascade(inner);
        assert!(CascadeModel::new(vec![nested]).is_err());
    }

    mod prop {
        use super::super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            /// Both calibrator families stay monotone for arbitrary fits:
            /// a larger margin never calibrates to a smaller probability.
            #[test]
            fn fitted_calibrators_are_monotone(
                pairs in proptest::collection::vec(
                    (-50.0f64..50.0, 0i32..2), 2..80),
                probes in proptest::collection::vec(-60.0f64..60.0, 2..40),
            ) {
                let scores: Vec<f64> = pairs.iter().map(|p| p.0).collect();
                let labels: Vec<bool> = pairs.iter().map(|p| p.1 == 1).collect();
                let mut probes = probes;
                probes.sort_by(|a, b| a.partial_cmp(b).unwrap());
                for cal in [
                    Calibrator::fit_platt(&scores, &labels).unwrap(),
                    Calibrator::fit_isotonic(&scores, &labels).unwrap(),
                ] {
                    cal.validate().unwrap();
                    let mut prev = 0.0f64;
                    for &s in &probes {
                        let p = cal.calibrate(s);
                        prop_assert!(p > 0.0 && p < 1.0, "p {} out of (0,1)", p);
                        prop_assert!(p >= prev, "calibrate({}) = {} < {}", s, p, prev);
                        prev = p;
                    }
                }
            }
        }
    }

    #[test]
    fn decision_values_are_sign_consistent_across_families() {
        let data = ds(23, 120);
        for model in crate::binenc::codec::tests_all_families(&data) {
            for i in 0..data.n_rows() {
                let s = model.decision_value(data.row(i));
                assert_eq!(
                    s >= 0.0,
                    model.predict_row(data.row(i)),
                    "family {} row {i}: decision {s}",
                    model.family()
                );
            }
        }
    }
}
