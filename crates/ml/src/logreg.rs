//! L1-regularized logistic regression over sparse one-hot features.
//!
//! Emulates the paper's `glmnet` usage (§3.2): a descending lambda path
//! (`nlambda` points from the analytic λ_max down to a fraction of it) with
//! warm starts, proximal-gradient (ISTA) inner solves with backtracking, and
//! validation-set selection of the final lambda. The intercept is never
//! penalised, matching glmnet.

use crate::binenc::PodVec;
use crate::dataset::CatDataset;
use crate::error::{MlError, Result};
use crate::model::Classifier;

/// Solver configuration (the paper sets `nlambda = 100`,
/// `thresh = 0.001`, `maxit = 10000`; our defaults are a faster path with
/// the same shape — pass the paper's values for full fidelity).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LogRegParams {
    /// Number of lambda-path points.
    pub nlambda: usize,
    /// `λ_min = λ_max · ratio`.
    pub lambda_min_ratio: f64,
    /// Maximum proximal-gradient iterations per lambda.
    pub max_iter: usize,
    /// Convergence threshold on the objective's relative change.
    pub tol: f64,
}

impl Default for LogRegParams {
    fn default() -> Self {
        Self {
            nlambda: 20,
            lambda_min_ratio: 1e-3,
            max_iter: 200,
            tol: 1e-5,
        }
    }
}

impl LogRegParams {
    /// The paper's glmnet settings (`nlambda = 100`, `maxit = 10000`).
    /// glmnet's `thresh = 0.001` is a coordinate-wise criterion; the
    /// equivalent objective-change tolerance for the FISTA solver is much
    /// tighter, hence `1e-7` here.
    pub fn paper() -> Self {
        Self {
            nlambda: 100,
            lambda_min_ratio: 1e-3,
            max_iter: 10_000,
            tol: 1e-7,
        }
    }
}

/// A fitted L1 logistic-regression model (weights live in one-hot space,
/// behind [`PodVec`] so mmap-loaded format-v3 artifacts score rows straight
/// out of the mapped file).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LogRegL1 {
    pub(crate) offsets: PodVec<u32>,
    pub(crate) weights: PodVec<f64>,
    pub(crate) intercept: f64,
    /// The lambda selected on the validation split.
    pub lambda: f64,
}

/// Sparse design-matrix view of a dataset: per-row active one-hot indices.
struct Design {
    active: Vec<u32>,
    d: usize,
    n: usize,
}

impl Design {
    fn new(ds: &CatDataset) -> Self {
        let offsets = ds.onehot_offsets();
        let d = ds.n_features();
        let n = ds.n_rows();
        let mut active = Vec::with_capacity(n * d);
        for i in 0..n {
            for (j, &code) in ds.row(i).iter().enumerate() {
                active.push(offsets[j] + code);
            }
        }
        Self { active, d, n }
    }

    #[inline]
    fn row(&self, i: usize) -> &[u32] {
        &self.active[i * self.d..(i + 1) * self.d]
    }
}

#[inline]
fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

/// Mean logistic loss and gradient at (w, b). `grad` must be zeroed by the
/// caller; the intercept gradient is returned.
#[allow(clippy::needless_range_loop)] // rows and labels are co-indexed
fn loss_grad(design: &Design, y: &[bool], w: &[f64], b: f64, grad: &mut [f64]) -> (f64, f64) {
    let n = design.n as f64;
    let mut loss = 0.0;
    let mut grad_b = 0.0;
    for i in 0..design.n {
        let mut z = b;
        for &idx in design.row(i) {
            z += w[idx as usize];
        }
        let yi = f64::from(u8::from(y[i]));
        // Stable BCE-with-logits.
        loss += z.max(0.0) - z * yi + (-z.abs()).exp().ln_1p();
        let r = sigmoid(z) - yi;
        for &idx in design.row(i) {
            grad[idx as usize] += r;
        }
        grad_b += r;
    }
    for g in grad.iter_mut() {
        *g /= n;
    }
    (loss / n, grad_b / n)
}

/// Mean logistic loss only.
#[allow(clippy::needless_range_loop)] // rows and labels are co-indexed
fn loss_only(design: &Design, y: &[bool], w: &[f64], b: f64) -> f64 {
    let n = design.n as f64;
    let mut loss = 0.0;
    for i in 0..design.n {
        let mut z = b;
        for &idx in design.row(i) {
            z += w[idx as usize];
        }
        let yi = f64::from(u8::from(y[i]));
        loss += z.max(0.0) - z * yi + (-z.abs()).exp().ln_1p();
    }
    loss / n
}

#[inline]
fn soft_threshold(v: f64, t: f64) -> f64 {
    if v > t {
        v - t
    } else if v < -t {
        v + t
    } else {
        0.0
    }
}

/// One FISTA solve (accelerated proximal gradient with adaptive restart and
/// backtracking line search) at a fixed lambda. Acceleration matters here:
/// one-hot FK designs have thousands of weakly-correlated columns, and plain
/// ISTA needs orders of magnitude more iterations to fit the small-lambda
/// end of the path.
fn solve_lambda(
    design: &Design,
    y: &[bool],
    lambda: f64,
    w: &mut Vec<f64>,
    b: &mut f64,
    params: &LogRegParams,
) {
    let dim = w.len();
    let mut grad = vec![0.0f64; dim];
    let mut step = 1.0f64;
    let mut prev_obj = f64::INFINITY;
    // FISTA extrapolation state: z is the look-ahead point.
    let mut z = w.clone();
    let mut zb = *b;
    let mut t = 1.0f64;
    for _ in 0..params.max_iter {
        grad.iter_mut().for_each(|g| *g = 0.0);
        let (loss_z, grad_b) = loss_grad(design, y, &z, zb, &mut grad);

        // Backtracking on the majorisation at the extrapolated point.
        let mut w_new = Vec::with_capacity(dim);
        let mut b_new = zb;
        let mut accepted = false;
        for _ in 0..30 {
            w_new.clear();
            for i in 0..dim {
                w_new.push(soft_threshold(z[i] - step * grad[i], step * lambda));
            }
            b_new = zb - step * grad_b;
            let new_loss = loss_only(design, y, &w_new, b_new);
            let mut quad = 0.0;
            let mut lin = 0.0;
            for i in 0..dim {
                let dw = w_new[i] - z[i];
                quad += dw * dw;
                lin += grad[i] * dw;
            }
            let db = b_new - zb;
            quad += db * db;
            lin += grad_b * db;
            if new_loss <= loss_z + lin + quad / (2.0 * step) + 1e-12 {
                accepted = true;
                break;
            }
            step *= 0.5;
        }
        if !accepted {
            break; // step underflow: numerically converged
        }

        // Objective at the new iterate (for restart + convergence checks).
        let new_loss = loss_only(design, y, &w_new, b_new);
        let l1: f64 = w_new.iter().map(|v| v.abs()).sum();
        let obj = new_loss + lambda * l1;

        if obj > prev_obj + 1e-12 {
            // Adaptive restart: drop momentum and retry from the last
            // iterate (O'Donoghue & Candès).
            z.clone_from(w);
            zb = *b;
            t = 1.0;
            continue;
        }
        let converged = (prev_obj - obj).abs() <= params.tol * obj.abs().max(1e-12);
        prev_obj = obj;

        // Momentum update: z = w_new + ((t−1)/t_next)(w_new − w_old).
        let t_next = 0.5 * (1.0 + (1.0 + 4.0 * t * t).sqrt());
        let beta = (t - 1.0) / t_next;
        for i in 0..dim {
            z[i] = w_new[i] + beta * (w_new[i] - w[i]);
        }
        zb = b_new + beta * (b_new - *b);
        t = t_next;
        *w = w_new;
        *b = b_new;
        if converged {
            break;
        }
        // Gentle growth so later iterations can re-lengthen the step.
        step = (step * 1.2).min(1.0e3);
    }
}

impl LogRegL1 {
    /// Fits at one fixed lambda (no path, no selection). Useful when the
    /// regularisation strength is known, and for testing the solver against
    /// closed-form expectations.
    pub fn fit_single(train: &CatDataset, lambda: f64, params: LogRegParams) -> Result<Self> {
        if train.n_rows() == 0 {
            return Err(MlError::Shape {
                detail: "cannot fit logistic regression on an empty dataset".into(),
            });
        }
        let design = Design::new(train);
        let y = train.labels();
        let mut w = vec![0.0f64; train.onehot_dim()];
        let ybar = (train.pos_count() as f64 / train.n_rows() as f64).clamp(1e-6, 1.0 - 1e-6);
        let mut b = (ybar / (1.0 - ybar)).ln();
        solve_lambda(&design, y, lambda.max(0.0), &mut w, &mut b, &params);
        Ok(Self {
            offsets: train.onehot_offsets().into(),
            weights: w.into(),
            intercept: b,
            lambda,
        })
    }

    /// Fits a lambda path on `train`, selecting the lambda with the best
    /// validation accuracy (ties → sparser model, i.e. larger lambda).
    pub fn fit_path(train: &CatDataset, val: &CatDataset, params: LogRegParams) -> Result<Self> {
        if train.n_rows() == 0 {
            return Err(MlError::Shape {
                detail: "cannot fit logistic regression on an empty dataset".into(),
            });
        }
        let design = Design::new(train);
        let y = train.labels();
        let dim = train.onehot_dim();
        let offsets = train.onehot_offsets();

        // λ_max: the smallest lambda with all-zero weights — with the
        // intercept fitted, that is max |∇loss(0, b*)|∞; we use the standard
        // glmnet surrogate max |⟨x_j, y − ȳ⟩| / n.
        let ybar = train.pos_count() as f64 / train.n_rows() as f64;
        let mut corr = vec![0.0f64; dim];
        #[allow(clippy::needless_range_loop)] // rows and labels are co-indexed
        for i in 0..design.n {
            let r = f64::from(u8::from(y[i])) - ybar;
            for &idx in design.row(i) {
                corr[idx as usize] += r;
            }
        }
        let lambda_max = corr
            .iter()
            .map(|c| c.abs() / design.n as f64)
            .fold(0.0f64, f64::max)
            .max(1e-9);

        let nl = params.nlambda.max(1);
        let ratio = params.lambda_min_ratio.clamp(1e-6, 1.0);
        let lambdas: Vec<f64> = (0..nl)
            .map(|k| {
                let f = if nl == 1 {
                    0.0
                } else {
                    k as f64 / (nl - 1) as f64
                };
                lambda_max * ratio.powf(f)
            })
            .collect();

        // Warm-started path from large to small lambda.
        let mut w = vec![0.0f64; dim];
        let mut b = (ybar.clamp(1e-6, 1.0 - 1e-6) / (1.0 - ybar.clamp(1e-6, 1.0 - 1e-6))).ln();
        let mut best: Option<(f64, LogRegL1)> = None;
        for &lambda in &lambdas {
            solve_lambda(&design, y, lambda, &mut w, &mut b, &params);
            let model = LogRegL1 {
                offsets: offsets.clone().into(),
                weights: w.clone().into(),
                intercept: b,
                lambda,
            };
            let acc = model.accuracy(val);
            if best.as_ref().is_none_or(|(a, _)| acc > *a) {
                best = Some((acc, model));
            }
        }
        Ok(best.expect("path has at least one lambda").1)
    }

    /// Warm-start refresh: continue the FISTA solve from this model's
    /// weights on fresh data, at the lambda already selected on the
    /// original validation split. This is the online-learning path — a few
    /// hundred labeled rows observed in production refine the artifact in
    /// milliseconds instead of re-running the full lambda path.
    pub fn fit_incremental(&self, train: &CatDataset, params: LogRegParams) -> Result<Self> {
        if train.n_rows() == 0 {
            return Err(MlError::Shape {
                detail: "cannot refresh logistic regression on an empty dataset".into(),
            });
        }
        if train.onehot_dim() != self.weights.len()
            || train.onehot_offsets().as_slice() != self.offsets.as_slice()
        {
            return Err(MlError::Shape {
                detail: format!(
                    "refresh data has one-hot dim {} but the model was trained with {}",
                    train.onehot_dim(),
                    self.weights.len()
                ),
            });
        }
        let design = Design::new(train);
        let mut w = self.weights.as_slice().to_vec();
        let mut b = self.intercept;
        solve_lambda(
            &design,
            train.labels(),
            self.lambda,
            &mut w,
            &mut b,
            &params,
        );
        Ok(Self {
            offsets: self.offsets.as_slice().to_vec().into(),
            weights: w.into(),
            intercept: b,
            lambda: self.lambda,
        })
    }

    /// Decision value (logit). The one-hot gather-sum runs on the
    /// dispatched kernels: AVX2 hosts use a vector gather for wide rows,
    /// everything else (and `HAMLET_FORCE_SCALAR`) takes the scalar
    /// reference path, which reproduces the historical accumulation order
    /// bit-for-bit.
    pub fn decision(&self, row: &[u32]) -> f64 {
        crate::kernels::onehot_dot_f64(
            self.intercept,
            &self.weights,
            &self.offsets[..row.len()],
            row,
        )
    }

    /// Number of non-zero one-hot weights (model sparsity readout).
    pub fn nnz(&self) -> usize {
        self.weights.iter().filter(|w| w.abs() > 1e-12).count()
    }

    /// Predicted probability of the positive class.
    pub fn probability(&self, row: &[u32]) -> f64 {
        sigmoid(self.decision(row))
    }
}

impl Classifier for LogRegL1 {
    fn predict_row(&self, row: &[u32]) -> bool {
        self.decision(row) >= 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{CatDataset, FeatureMeta, Provenance};
    use rand::{Rng, SeedableRng};

    fn meta(d: usize, k: u32) -> Vec<FeatureMeta> {
        (0..d)
            .map(|j| FeatureMeta::new(format!("f{j}"), k, Provenance::Home))
            .collect()
    }

    fn signal(n: usize, seed: u64) -> CatDataset {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let y = rng.gen_bool(0.5);
            let f0 = if rng.gen_bool(0.9) {
                u32::from(y)
            } else {
                u32::from(!y)
            };
            rows.push(f0);
            rows.push(rng.gen_range(0..4));
            labels.push(y);
        }
        CatDataset::new(meta(2, 4), rows, labels).unwrap()
    }

    #[test]
    fn fits_a_signal() {
        let train = signal(400, 1);
        let val = signal(200, 2);
        let test = signal(200, 3);
        let m = LogRegL1::fit_path(&train, &val, LogRegParams::default()).unwrap();
        assert!(m.accuracy(&test) > 0.8, "accuracy {}", m.accuracy(&test));
    }

    #[test]
    fn soft_threshold_math() {
        assert_eq!(soft_threshold(3.0, 1.0), 2.0);
        assert_eq!(soft_threshold(-3.0, 1.0), -2.0);
        assert_eq!(soft_threshold(0.5, 1.0), 0.0);
        assert_eq!(soft_threshold(-0.5, 1.0), 0.0);
    }

    #[test]
    fn lambda_path_controls_sparsity() {
        // At λ_max the weights are (near) zero; the selected model on a
        // strong signal keeps the signal weights non-zero.
        let train = signal(300, 4);
        let val = signal(150, 5);
        let m = LogRegL1::fit_path(&train, &val, LogRegParams::default()).unwrap();
        assert!(m.nnz() > 0);
        assert!(m.nnz() <= train.onehot_dim());
    }

    #[test]
    fn probabilities_are_calibratedish() {
        let train = signal(400, 6);
        let val = signal(200, 7);
        let m = LogRegL1::fit_path(&train, &val, LogRegParams::default()).unwrap();
        // Signal-positive row should have p > 0.5; signal-negative < 0.5.
        assert!(m.probability(&[1, 0]) > 0.5);
        assert!(m.probability(&[0, 0]) < 0.5);
    }

    #[test]
    fn near_unregularised_fit_recovers_empirical_rates() {
        // One binary feature with P(Y=1|x=1) = 0.8, P(Y=1|x=0) = 0.2 (even
        // i has residues {0,2,4,6,8}, odd i has {1,3,5,7,9}): with λ → 0
        // the logistic MLE's fitted probabilities match the empirical
        // conditional rates exactly.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..500 {
            let x = u32::from(i % 2 == 0);
            let y = if x == 1 { i % 10 < 8 } else { i % 10 < 3 };
            rows.push(x);
            labels.push(y);
        }
        let ds = CatDataset::new(meta(1, 2), rows, labels).unwrap();
        let m = LogRegL1::fit_single(
            &ds,
            1e-7,
            LogRegParams {
                max_iter: 2000,
                tol: 1e-12,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            (m.probability(&[1]) - 0.8).abs() < 0.01,
            "{}",
            m.probability(&[1])
        );
        assert!(
            (m.probability(&[0]) - 0.2).abs() < 0.01,
            "{}",
            m.probability(&[0])
        );
    }

    #[test]
    fn incremental_refresh_warm_starts_from_current_weights() {
        let train = signal(300, 8);
        let val = signal(150, 9);
        let base = LogRegL1::fit_path(&train, &val, LogRegParams::default()).unwrap();
        // Refresh on fresh rows from the same distribution: lambda is
        // carried over and accuracy stays in family.
        let fresh = signal(200, 10);
        let refreshed = base
            .fit_incremental(&fresh, LogRegParams::default())
            .unwrap();
        assert_eq!(refreshed.lambda, base.lambda);
        assert!(
            refreshed.accuracy(&fresh) > 0.8,
            "{}",
            refreshed.accuracy(&fresh)
        );
        // A shape-incompatible refresh set is rejected, not silently mis-fit.
        let narrow = CatDataset::new(meta(1, 4), vec![0, 1, 2], vec![true, false, true]).unwrap();
        assert!(base
            .fit_incremental(&narrow, LogRegParams::default())
            .is_err());
    }

    #[test]
    fn single_class_training_is_stable() {
        let ds = CatDataset::new(meta(1, 2), vec![0, 1, 0], vec![true, true, true]).unwrap();
        let m = LogRegL1::fit_path(&ds, &ds, LogRegParams::default()).unwrap();
        assert!(m.predict_row(&[0]));
        assert!(m.decision(&[1]).is_finite());
    }
}
