//! Runtime-dispatched SIMD inference kernels.
//!
//! Every dense inner loop on the serving path — the MLP's hidden→hidden and
//! hidden→output GEMV rows, the SVM's match-count kernel evaluations, the
//! logreg one-hot gather-sum, and the quantized i8/f16 variants — funnels
//! through this module. Dispatch is decided **once per process**: the first
//! call probes the CPU with `is_x86_feature_detected!` and caches a
//! [`Backend`] in a `OnceLock`, so the per-call cost is one predictable
//! branch on an enum.
//!
//! Three tiers:
//!
//! - **AVX2** (`std::arch` intrinsics, 256-bit lanes, multi-accumulator) —
//!   the fast path on any post-2013 x86-64 server.
//! - **SSE2** (128-bit lanes) — baseline x86-64; always present there, kept
//!   as an explicit tier so the AVX2 code has a structurally identical,
//!   independently testable sibling.
//! - **Scalar** — the bit-exact reference. Its accumulation order is the
//!   *definition* of every kernel's result: the f32/f64 SIMD tiers may
//!   re-associate sums (tolerance-tested, ≤1e-5 relative), while the
//!   integer kernels ([`dot_i8`], [`match_count_u32`]) are exact in every
//!   tier and therefore backend-independent bit-for-bit.
//!
//! Setting the environment variable `HAMLET_FORCE_SCALAR` (to anything but
//! `""` or `"0"`) before the first inference pins the process to the scalar
//! tier — CI runs the whole suite both ways, and fleet operators can use it
//! to rule the SIMD path in or out when chasing a numeric discrepancy.

use std::sync::OnceLock;

use crate::binenc::pod::F16;

/// The instruction-set tier selected for this process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// 256-bit AVX2 integer + float lanes.
    Avx2,
    /// 128-bit SSE2 lanes (x86-64 baseline).
    Sse2,
    /// Portable scalar reference — also the forced-override tier.
    Scalar,
}

impl Backend {
    /// Lowercase tag for telemetry (`/v1/stats`, `/metrics`) and logs.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Avx2 => "avx2",
            Backend::Sse2 => "sse2",
            Backend::Scalar => "scalar",
        }
    }
}

static BACKEND: OnceLock<Backend> = OnceLock::new();
static HAS_F16C: OnceLock<bool> = OnceLock::new();

/// The process-wide kernel backend (detected once, then cached).
#[inline]
pub fn backend() -> Backend {
    *BACKEND.get_or_init(|| detect(force_scalar_requested()))
}

/// Whether `HAMLET_FORCE_SCALAR` asks for the scalar tier.
fn force_scalar_requested() -> bool {
    std::env::var_os("HAMLET_FORCE_SCALAR").is_some_and(|v| !v.is_empty() && v != *"0")
}

/// Pure detection logic, split from the env read so tests can drive both
/// arms without mutating process environment.
fn detect(force_scalar: bool) -> Backend {
    if force_scalar {
        return Backend::Scalar;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx2") {
            return Backend::Avx2;
        }
        if is_x86_feature_detected!("sse2") {
            return Backend::Sse2;
        }
    }
    Backend::Scalar
}

/// Whether the AVX2 tier may additionally use F16C half↔single conversion
/// instructions (a separate CPUID bit; universal on AVX2 parts in practice,
/// but never assumed).
#[inline]
fn has_f16c() -> bool {
    *HAS_F16C.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            backend() == Backend::Avx2 && is_x86_feature_detected!("f16c")
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    })
}

// ---- dispatched kernels ----

/// Dense dot product with an explicit initial accumulator:
/// `init + Σ a[i]·b[i]`.
///
/// Threading the bias through `init` lets the scalar tier reproduce the
/// historical `z = b; z += w·a; …` accumulation order exactly, so forcing
/// scalar yields bit-identical logits to the pre-kernel implementation.
#[inline]
pub fn dot_f32(init: f32, a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    match backend() {
        #[cfg(target_arch = "x86_64")]
        // Safety: dispatch reaches these arms only after CPUID detection.
        Backend::Avx2 => unsafe { x86::dot_f32_avx2(init, a, b) },
        #[cfg(target_arch = "x86_64")]
        Backend::Sse2 => unsafe { x86::dot_f32_sse2(init, a, b) },
        _ => scalar::dot_f32(init, a, b),
    }
}

/// Exact integer dot product `Σ a[i]·b[i]` over i8 operands, accumulated in
/// i32. Addition of integers is associative, so every tier returns the same
/// bits — quantized-model predictions never depend on the backend.
#[inline]
pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    match backend() {
        #[cfg(target_arch = "x86_64")]
        // Safety: dispatch reaches these arms only after CPUID detection.
        Backend::Avx2 => unsafe { x86::dot_i8_avx2(a, b) },
        #[cfg(target_arch = "x86_64")]
        Backend::Sse2 => unsafe { x86::dot_i8_sse2(a, b) },
        _ => scalar::dot_i8(a, b),
    }
}

/// Number of positions where two u32 code rows agree — the one-hot kernel
/// trick's inner loop (SVM decision function and its training match
/// matrix). Exact in every tier.
#[inline]
pub fn match_count_u32(a: &[u32], b: &[u32]) -> u32 {
    debug_assert_eq!(a.len(), b.len());
    match backend() {
        #[cfg(target_arch = "x86_64")]
        // Safety: dispatch reaches these arms only after CPUID detection.
        Backend::Avx2 => unsafe { x86::match_count_avx2(a, b) },
        #[cfg(target_arch = "x86_64")]
        Backend::Sse2 => unsafe { x86::match_count_sse2(a, b) },
        _ => scalar::match_count_u32(a, b),
    }
}

/// Elementwise ReLU `out[i] = max(z[i], 0.0)`. `max` against zero is exact,
/// so every tier agrees bit-for-bit.
#[inline]
pub fn relu_f32(z: &[f32], out: &mut [f32]) {
    debug_assert_eq!(z.len(), out.len());
    match backend() {
        #[cfg(target_arch = "x86_64")]
        // Safety: dispatch reaches these arms only after CPUID detection.
        Backend::Avx2 => unsafe { x86::relu_f32_avx2(z, out) },
        #[cfg(target_arch = "x86_64")]
        Backend::Sse2 => unsafe { x86::relu_f32_sse2(z, out) },
        _ => scalar::relu_f32(z, out),
    }
}

/// Dequantize-on-the-fly dot product over f16 weights and f32 activations:
/// `init + Σ f32(a[i])·b[i]`. Uses F16C hardware conversion when the CPU
/// has it; otherwise software-converts per element.
#[inline]
pub fn dot_f16_f32(init: f32, a: &[F16], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    #[cfg(target_arch = "x86_64")]
    if has_f16c() {
        // Safety: guarded by the AVX2 + F16C runtime check above.
        return unsafe { x86::dot_f16_f32_avx2(init, a, b) };
    }
    scalar::dot_f16_f32(init, a, b)
}

/// Widens a whole f16 slice to f32 (`dst[i] = f32(src[i])`), hardware
/// F16C (`vcvtph2ps`) when available. Every binary16 value is exactly
/// representable in f32, so the conversion is lossless and every tier
/// agrees bit-for-bit — batch-dequantized weights are backend-independent.
#[inline]
pub fn f16_to_f32_slice(src: &[F16], dst: &mut [f32]) {
    debug_assert_eq!(src.len(), dst.len());
    #[cfg(target_arch = "x86_64")]
    if has_f16c() {
        // Safety: guarded by the AVX2 + F16C runtime check above.
        return unsafe { x86::f16_to_f32_slice_f16c(src, dst) };
    }
    scalar::f16_to_f32_slice(src, dst);
}

/// Narrows a whole f32 slice to f16, round-to-nearest-even, hardware F16C
/// (`vcvtps2ph`) when available. Hardware and software agree bit-for-bit
/// on every non-NaN input (both are correctly-rounded RNE with saturation
/// to ±∞ and gradual underflow); NaN inputs produce a NaN in every tier
/// but the payload bits may differ (hardware keeps the top mantissa bits,
/// the software path collapses to a canonical quiet NaN).
#[inline]
pub fn f32_to_f16_slice(src: &[f32], dst: &mut [F16]) {
    debug_assert_eq!(src.len(), dst.len());
    #[cfg(target_arch = "x86_64")]
    if has_f16c() {
        // Safety: guarded by the AVX2 + F16C runtime check above.
        return unsafe { x86::f32_to_f16_slice_f16c(src, dst) };
    }
    scalar::f32_to_f16_slice(src, dst);
}

/// One-hot gather-sum `init + Σ weights[offsets[j] + codes[j]]` — the
/// entire logreg decision function. The gather is latency-bound, so SIMD
/// only engages past a width floor; below it the scalar reference runs (and
/// defines the result bit-for-bit — f64 addition over gathered values is
/// order-sensitive like any float sum).
#[inline]
pub fn onehot_dot_f64(init: f64, weights: &[f64], offsets: &[u32], codes: &[u32]) -> f64 {
    debug_assert_eq!(offsets.len(), codes.len());
    #[cfg(target_arch = "x86_64")]
    if backend() == Backend::Avx2 && offsets.len() >= 16 {
        if let Some(z) =
            // Safety: guarded by the AVX2 runtime check above.
            unsafe { x86::onehot_dot_f64_avx2(init, weights, offsets, codes) }
        {
            return z;
        }
        // Indices out of range for the vector gather: fall through to the
        // scalar path, which bounds-checks (and panics) exactly like the
        // historical implementation.
    }
    scalar::onehot_dot_f64(init, weights, offsets, codes)
}

// ---- scalar reference tier ----

/// Bit-exact scalar reference implementations. Public so parity tests and
/// benches can pit them against the dispatched tier directly.
pub mod scalar {
    use super::F16;

    /// See [`super::dot_f32`]. Sequential left-to-right accumulation.
    #[inline]
    pub fn dot_f32(init: f32, a: &[f32], b: &[f32]) -> f32 {
        let mut z = init;
        for (x, y) in a.iter().zip(b) {
            z += x * y;
        }
        z
    }

    /// See [`super::dot_i8`].
    #[inline]
    pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
        let mut z = 0i32;
        for (&x, &y) in a.iter().zip(b) {
            z += i32::from(x) * i32::from(y);
        }
        z
    }

    /// See [`super::match_count_u32`].
    #[inline]
    pub fn match_count_u32(a: &[u32], b: &[u32]) -> u32 {
        a.iter().zip(b).filter(|(x, y)| x == y).count() as u32
    }

    /// See [`super::relu_f32`].
    #[inline]
    pub fn relu_f32(z: &[f32], out: &mut [f32]) {
        for (o, &v) in out.iter_mut().zip(z) {
            *o = v.max(0.0);
        }
    }

    /// See [`super::dot_f16_f32`]. Software per-element conversion.
    #[inline]
    pub fn dot_f16_f32(init: f32, a: &[F16], b: &[f32]) -> f32 {
        let mut z = init;
        for (x, y) in a.iter().zip(b) {
            z += x.to_f32() * y;
        }
        z
    }

    /// See [`super::f16_to_f32_slice`]. Software per-element widening.
    #[inline]
    pub fn f16_to_f32_slice(src: &[F16], dst: &mut [f32]) {
        for (d, s) in dst.iter_mut().zip(src) {
            *d = s.to_f32();
        }
    }

    /// See [`super::f32_to_f16_slice`]. Software per-element narrowing.
    #[inline]
    pub fn f32_to_f16_slice(src: &[f32], dst: &mut [F16]) {
        for (d, &s) in dst.iter_mut().zip(src) {
            *d = F16::from_f32(s);
        }
    }

    /// See [`super::onehot_dot_f64`].
    #[inline]
    pub fn onehot_dot_f64(init: f64, weights: &[f64], offsets: &[u32], codes: &[u32]) -> f64 {
        let mut z = init;
        for (&o, &c) in offsets.iter().zip(codes) {
            z += weights[(o + c) as usize];
        }
        z
    }
}

// ---- f16 software conversion (shared by binenc::pod::F16) ----

/// IEEE 754 binary16 bits → f32. Handles subnormals, infinities and NaN;
/// every f16 value is exactly representable in f32, so this is lossless.
pub fn f16_bits_to_f32(bits: u16) -> f32 {
    let sign = u32::from(bits >> 15);
    let exp = u32::from((bits >> 10) & 0x1F);
    let man = u32::from(bits & 0x3FF);
    let magnitude = if exp == 0 {
        // Zero / subnormal: man · 2⁻²⁴ (2⁻²⁴ = f32 bits 0x3380_0000).
        man as f32 * f32::from_bits(0x3380_0000)
    } else if exp == 31 {
        if man == 0 {
            f32::INFINITY
        } else {
            f32::NAN
        }
    } else {
        // Rebias 15 → 127, widen the mantissa 10 → 23 bits.
        f32::from_bits(((exp + 112) << 23) | (man << 13))
    };
    if sign == 1 {
        -magnitude
    } else {
        magnitude
    }
}

/// f32 → IEEE 754 binary16 bits, round-to-nearest-even. Overflow saturates
/// to ±∞; underflow goes through the subnormal range down to ±0.
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 31) as u16) << 15;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let man = bits & 0x7F_FFFF;
    if exp == 255 {
        // Inf / NaN (quiet bit set so NaN payloads stay NaN).
        return sign | 0x7C00 | u16::from(man != 0) << 9;
    }
    let e = exp - 127;
    if e > 15 {
        return sign | 0x7C00;
    }
    if e >= -14 {
        // Normal half: rebias, truncate the mantissa to 10 bits, round to
        // nearest even on the 13 dropped bits. A rounding carry propagates
        // into the exponent (and on to ∞) by construction of the encoding.
        let h = ((e + 15) as u32) << 10 | man >> 13;
        let rem = man & 0x1FFF;
        let round_up = rem > 0x1000 || (rem == 0x1000 && h & 1 == 1);
        return sign | (h + u32::from(round_up)) as u16;
    }
    if e >= -25 {
        // Subnormal half: shift the 24-bit significand down to units of
        // 2⁻²⁴, round to nearest even. e = −25 covers the halfway point
        // between zero and the smallest subnormal.
        let full = 0x80_0000 | man;
        let shift = (-e - 1) as u32;
        let h = full >> shift;
        let rem = full & ((1u32 << shift) - 1);
        let halfway = 1u32 << (shift - 1);
        let round_up = rem > halfway || (rem == halfway && h & 1 == 1);
        return sign | (h + u32::from(round_up)) as u16;
    }
    sign
}

// ---- x86-64 SIMD tiers ----

/// AVX2 / SSE2 implementations. Public so parity tests can target a tier
/// directly (after their own feature detection) regardless of what the
/// process-wide dispatch selected.
#[cfg(target_arch = "x86_64")]
pub mod x86 {
    use super::F16;
    use std::arch::x86_64::*;

    #[inline]
    unsafe fn hsum256_ps(v: __m256) -> f32 {
        let mut lanes = [0f32; 8];
        _mm256_storeu_ps(lanes.as_mut_ptr(), v);
        lanes.iter().sum()
    }

    #[inline]
    unsafe fn hsum128_ps(v: __m128) -> f32 {
        let mut lanes = [0f32; 4];
        _mm_storeu_ps(lanes.as_mut_ptr(), v);
        lanes.iter().sum()
    }

    #[inline]
    unsafe fn hsum256_epi32(v: __m256i) -> i32 {
        let mut lanes = [0i32; 8];
        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, v);
        lanes.iter().sum()
    }

    #[inline]
    unsafe fn hsum128_epi32(v: __m128i) -> i32 {
        let mut lanes = [0i32; 4];
        _mm_storeu_si128(lanes.as_mut_ptr() as *mut __m128i, v);
        lanes.iter().sum()
    }

    /// AVX2 [`super::dot_f32`]: 4 × 8-lane accumulators (32 elements per
    /// iteration) to break the serial add dependency, horizontal sum at the
    /// end. Re-associates the sum, so results may differ from scalar within
    /// float tolerance.
    ///
    /// # Safety
    /// Caller must ensure the CPU supports AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot_f32_avx2(init: f32, a: &[f32], b: &[f32]) -> f32 {
        let n = a.len().min(b.len());
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut acc2 = _mm256_setzero_ps();
        let mut acc3 = _mm256_setzero_ps();
        let mut i = 0;
        while i + 32 <= n {
            acc0 = _mm256_add_ps(
                acc0,
                _mm256_mul_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i))),
            );
            acc1 = _mm256_add_ps(
                acc1,
                _mm256_mul_ps(
                    _mm256_loadu_ps(pa.add(i + 8)),
                    _mm256_loadu_ps(pb.add(i + 8)),
                ),
            );
            acc2 = _mm256_add_ps(
                acc2,
                _mm256_mul_ps(
                    _mm256_loadu_ps(pa.add(i + 16)),
                    _mm256_loadu_ps(pb.add(i + 16)),
                ),
            );
            acc3 = _mm256_add_ps(
                acc3,
                _mm256_mul_ps(
                    _mm256_loadu_ps(pa.add(i + 24)),
                    _mm256_loadu_ps(pb.add(i + 24)),
                ),
            );
            i += 32;
        }
        while i + 8 <= n {
            acc0 = _mm256_add_ps(
                acc0,
                _mm256_mul_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i))),
            );
            i += 8;
        }
        let mut sum = hsum256_ps(_mm256_add_ps(
            _mm256_add_ps(acc0, acc1),
            _mm256_add_ps(acc2, acc3),
        ));
        while i < n {
            sum += a[i] * b[i];
            i += 1;
        }
        init + sum
    }

    /// SSE2 [`super::dot_f32`]: 2 × 4-lane accumulators.
    ///
    /// # Safety
    /// Caller must ensure the CPU supports SSE2 (x86-64 baseline).
    #[target_feature(enable = "sse2")]
    pub unsafe fn dot_f32_sse2(init: f32, a: &[f32], b: &[f32]) -> f32 {
        let n = a.len().min(b.len());
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut acc0 = _mm_setzero_ps();
        let mut acc1 = _mm_setzero_ps();
        let mut i = 0;
        while i + 8 <= n {
            acc0 = _mm_add_ps(
                acc0,
                _mm_mul_ps(_mm_loadu_ps(pa.add(i)), _mm_loadu_ps(pb.add(i))),
            );
            acc1 = _mm_add_ps(
                acc1,
                _mm_mul_ps(_mm_loadu_ps(pa.add(i + 4)), _mm_loadu_ps(pb.add(i + 4))),
            );
            i += 8;
        }
        let mut sum = hsum128_ps(_mm_add_ps(acc0, acc1));
        while i < n {
            sum += a[i] * b[i];
            i += 1;
        }
        init + sum
    }

    /// AVX2 [`super::dot_i8`]: 32 bytes per iteration, sign-extended to i16
    /// halves, `madd` pairs into i32 lanes. Exact (integer adds commute).
    ///
    /// # Safety
    /// Caller must ensure the CPU supports AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot_i8_avx2(a: &[i8], b: &[i8]) -> i32 {
        let n = a.len().min(b.len());
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut acc = _mm256_setzero_si256();
        let mut i = 0;
        while i + 32 <= n {
            let a_lo = _mm256_cvtepi8_epi16(_mm_loadu_si128(pa.add(i) as *const __m128i));
            let b_lo = _mm256_cvtepi8_epi16(_mm_loadu_si128(pb.add(i) as *const __m128i));
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a_lo, b_lo));
            let a_hi = _mm256_cvtepi8_epi16(_mm_loadu_si128(pa.add(i + 16) as *const __m128i));
            let b_hi = _mm256_cvtepi8_epi16(_mm_loadu_si128(pb.add(i + 16) as *const __m128i));
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a_hi, b_hi));
            i += 32;
        }
        while i + 16 <= n {
            let va = _mm256_cvtepi8_epi16(_mm_loadu_si128(pa.add(i) as *const __m128i));
            let vb = _mm256_cvtepi8_epi16(_mm_loadu_si128(pb.add(i) as *const __m128i));
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(va, vb));
            i += 16;
        }
        let mut sum = hsum256_epi32(acc);
        while i < n {
            sum += i32::from(a[i]) * i32::from(b[i]);
            i += 1;
        }
        sum
    }

    /// SSE2 [`super::dot_i8`]: sign-extension via the unpack-high +
    /// arithmetic-shift trick (no `pmovsxbw` before SSE4.1), then `pmaddwd`.
    ///
    /// # Safety
    /// Caller must ensure the CPU supports SSE2 (x86-64 baseline).
    #[target_feature(enable = "sse2")]
    pub unsafe fn dot_i8_sse2(a: &[i8], b: &[i8]) -> i32 {
        let n = a.len().min(b.len());
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut acc = _mm_setzero_si128();
        let zero = _mm_setzero_si128();
        let mut i = 0;
        while i + 16 <= n {
            let va = _mm_loadu_si128(pa.add(i) as *const __m128i);
            let vb = _mm_loadu_si128(pb.add(i) as *const __m128i);
            // Bytes land in the high half of each i16 lane; >>8 arithmetic
            // sign-extends them back down.
            let a_lo = _mm_srai_epi16(_mm_unpacklo_epi8(zero, va), 8);
            let b_lo = _mm_srai_epi16(_mm_unpacklo_epi8(zero, vb), 8);
            let a_hi = _mm_srai_epi16(_mm_unpackhi_epi8(zero, va), 8);
            let b_hi = _mm_srai_epi16(_mm_unpackhi_epi8(zero, vb), 8);
            acc = _mm_add_epi32(acc, _mm_madd_epi16(a_lo, b_lo));
            acc = _mm_add_epi32(acc, _mm_madd_epi16(a_hi, b_hi));
            i += 16;
        }
        let mut sum = hsum128_epi32(acc);
        while i < n {
            sum += i32::from(a[i]) * i32::from(b[i]);
            i += 1;
        }
        sum
    }

    /// AVX2 [`super::match_count_u32`]: 8-lane compare + movemask popcount.
    ///
    /// # Safety
    /// Caller must ensure the CPU supports AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn match_count_avx2(a: &[u32], b: &[u32]) -> u32 {
        let n = a.len().min(b.len());
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut count = 0u32;
        let mut i = 0;
        while i + 8 <= n {
            let eq = _mm256_cmpeq_epi32(
                _mm256_loadu_si256(pa.add(i) as *const __m256i),
                _mm256_loadu_si256(pb.add(i) as *const __m256i),
            );
            count += (_mm256_movemask_ps(_mm256_castsi256_ps(eq)) as u32).count_ones();
            i += 8;
        }
        while i < n {
            count += u32::from(a[i] == b[i]);
            i += 1;
        }
        count
    }

    /// SSE2 [`super::match_count_u32`]: 4-lane compare + movemask popcount.
    ///
    /// # Safety
    /// Caller must ensure the CPU supports SSE2 (x86-64 baseline).
    #[target_feature(enable = "sse2")]
    pub unsafe fn match_count_sse2(a: &[u32], b: &[u32]) -> u32 {
        let n = a.len().min(b.len());
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut count = 0u32;
        let mut i = 0;
        while i + 4 <= n {
            let eq = _mm_cmpeq_epi32(
                _mm_loadu_si128(pa.add(i) as *const __m128i),
                _mm_loadu_si128(pb.add(i) as *const __m128i),
            );
            count += (_mm_movemask_ps(_mm_castsi128_ps(eq)) as u32).count_ones();
            i += 4;
        }
        while i < n {
            count += u32::from(a[i] == b[i]);
            i += 1;
        }
        count
    }

    /// AVX2 [`super::relu_f32`]. `maxps(z, 0)` matches scalar `max(0.0)`
    /// bit-for-bit on every input (NaN → 0 both ways).
    ///
    /// # Safety
    /// Caller must ensure the CPU supports AVX2; `out.len() >= z.len()`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn relu_f32_avx2(z: &[f32], out: &mut [f32]) {
        let n = z.len().min(out.len());
        let zero = _mm256_setzero_ps();
        let mut i = 0;
        while i + 8 <= n {
            _mm256_storeu_ps(
                out.as_mut_ptr().add(i),
                _mm256_max_ps(_mm256_loadu_ps(z.as_ptr().add(i)), zero),
            );
            i += 8;
        }
        while i < n {
            out[i] = z[i].max(0.0);
            i += 1;
        }
    }

    /// SSE2 [`super::relu_f32`].
    ///
    /// # Safety
    /// Caller must ensure the CPU supports SSE2 (x86-64 baseline).
    #[target_feature(enable = "sse2")]
    pub unsafe fn relu_f32_sse2(z: &[f32], out: &mut [f32]) {
        let n = z.len().min(out.len());
        let zero = _mm_setzero_ps();
        let mut i = 0;
        while i + 4 <= n {
            _mm_storeu_ps(
                out.as_mut_ptr().add(i),
                _mm_max_ps(_mm_loadu_ps(z.as_ptr().add(i)), zero),
            );
            i += 4;
        }
        while i < n {
            out[i] = z[i].max(0.0);
            i += 1;
        }
    }

    /// AVX2 + F16C [`super::dot_f16_f32`]: hardware `vcvtph2ps` widens 8
    /// halves per step, then the usual multiply-accumulate.
    ///
    /// # Safety
    /// Caller must ensure the CPU supports AVX2 **and** F16C.
    #[target_feature(enable = "avx2", enable = "f16c")]
    pub unsafe fn dot_f16_f32_avx2(init: f32, a: &[F16], b: &[f32]) -> f32 {
        let n = a.len().min(b.len());
        let (pa, pb) = (a.as_ptr() as *const u16, b.as_ptr());
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut i = 0;
        while i + 16 <= n {
            let w0 = _mm256_cvtph_ps(_mm_loadu_si128(pa.add(i) as *const __m128i));
            let w1 = _mm256_cvtph_ps(_mm_loadu_si128(pa.add(i + 8) as *const __m128i));
            acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(w0, _mm256_loadu_ps(pb.add(i))));
            acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(w1, _mm256_loadu_ps(pb.add(i + 8))));
            i += 16;
        }
        while i + 8 <= n {
            let w = _mm256_cvtph_ps(_mm_loadu_si128(pa.add(i) as *const __m128i));
            acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(w, _mm256_loadu_ps(pb.add(i))));
            i += 8;
        }
        let mut sum = hsum256_ps(_mm256_add_ps(acc0, acc1));
        while i < n {
            sum += a[i].to_f32() * b[i];
            i += 1;
        }
        init + sum
    }

    /// F16C [`super::f16_to_f32_slice`]: `vcvtph2ps` widens 8 halves per
    /// step. Lossless, so bit-identical to the software path.
    ///
    /// # Safety
    /// Caller must ensure the CPU supports AVX2 **and** F16C.
    #[target_feature(enable = "avx2", enable = "f16c")]
    pub unsafe fn f16_to_f32_slice_f16c(src: &[F16], dst: &mut [f32]) {
        let n = src.len().min(dst.len());
        let ps = src.as_ptr() as *const u16;
        let pd = dst.as_mut_ptr();
        let mut i = 0;
        while i + 8 <= n {
            _mm256_storeu_ps(
                pd.add(i),
                _mm256_cvtph_ps(_mm_loadu_si128(ps.add(i) as *const __m128i)),
            );
            i += 8;
        }
        while i < n {
            dst[i] = src[i].to_f32();
            i += 1;
        }
    }

    /// F16C [`super::f32_to_f16_slice`]: `vcvtps2ph` (round-to-nearest-
    /// even) narrows 8 singles per step. Matches the software path
    /// bit-for-bit on every non-NaN input.
    ///
    /// # Safety
    /// Caller must ensure the CPU supports AVX2 **and** F16C.
    #[target_feature(enable = "avx2", enable = "f16c")]
    pub unsafe fn f32_to_f16_slice_f16c(src: &[f32], dst: &mut [F16]) {
        let n = src.len().min(dst.len());
        let ps = src.as_ptr();
        let pd = dst.as_mut_ptr() as *mut u16;
        let mut i = 0;
        while i + 8 <= n {
            let h = _mm256_cvtps_ph::<_MM_FROUND_TO_NEAREST_INT>(_mm256_loadu_ps(ps.add(i)));
            _mm_storeu_si128(pd.add(i) as *mut __m128i, h);
            i += 8;
        }
        while i < n {
            dst[i] = F16::from_f32(src[i]);
            i += 1;
        }
    }

    /// AVX2 [`super::onehot_dot_f64`]: a SIMD max-reduction proves every
    /// gathered index in range, then `vgatherdpd` pulls 4 doubles per step.
    /// Returns `None` when any index would be out of bounds (or the weight
    /// table is too large for i32 indices) so the caller can fall back to
    /// the bounds-checked scalar path.
    ///
    /// # Safety
    /// Caller must ensure the CPU supports AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn onehot_dot_f64_avx2(
        init: f64,
        weights: &[f64],
        offsets: &[u32],
        codes: &[u32],
    ) -> Option<f64> {
        let n = offsets.len().min(codes.len());
        if weights.len() > i32::MAX as usize {
            return None;
        }
        let (po, pc) = (offsets.as_ptr(), codes.as_ptr());
        // Pass 1: max index, vectorized (u32 add may wrap only if the data
        // is corrupt, in which case the max check still rejects the batch
        // unless it wraps below the bound — matching scalar, which would
        // also have indexed somewhere in-bounds after the same wrap).
        let mut vmax = _mm256_setzero_si256();
        let mut i = 0;
        let mut tail_max = 0u32;
        while i + 8 <= n {
            let idx = _mm256_add_epi32(
                _mm256_loadu_si256(po.add(i) as *const __m256i),
                _mm256_loadu_si256(pc.add(i) as *const __m256i),
            );
            vmax = _mm256_max_epu32(vmax, idx);
            i += 8;
        }
        while i < n {
            tail_max = tail_max.max(offsets[i].wrapping_add(codes[i]));
            i += 1;
        }
        let mut lanes = [0u32; 8];
        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, vmax);
        let max_idx = lanes.iter().copied().fold(tail_max, u32::max);
        if max_idx as usize >= weights.len() {
            return None;
        }
        // Pass 2: gather and sum.
        let base = weights.as_ptr();
        let mut acc = _mm256_setzero_pd();
        let mut i = 0;
        while i + 4 <= n {
            let idx = _mm_add_epi32(
                _mm_loadu_si128(po.add(i) as *const __m128i),
                _mm_loadu_si128(pc.add(i) as *const __m128i),
            );
            acc = _mm256_add_pd(acc, _mm256_i32gather_pd::<8>(base, idx));
            i += 4;
        }
        let mut lanes = [0f64; 4];
        _mm256_storeu_pd(lanes.as_mut_ptr(), acc);
        let mut sum = init + lanes.iter().sum::<f64>();
        while i < n {
            sum += weights[(offsets[i] + codes[i]) as usize];
            i += 1;
        }
        Some(sum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn f32s(n: usize, seed: u64) -> Vec<f32> {
        let mut r = rng(seed);
        (0..n)
            .map(|_| (r.gen::<f64>() * 4.0 - 2.0) as f32)
            .collect()
    }

    fn i8s(n: usize, seed: u64) -> Vec<i8> {
        let mut r = rng(seed);
        (0..n).map(|_| r.gen_range(-127i32..=127) as i8).collect()
    }

    fn rel_close(a: f32, b: f32, tol: f32) -> bool {
        let scale = a.abs().max(b.abs()).max(1.0);
        (a - b).abs() <= tol * scale
    }

    #[test]
    fn forced_scalar_detection() {
        assert_eq!(detect(true), Backend::Scalar);
        // Unforced detection picks *some* tier, and on x86-64 never scalar
        // (SSE2 is baseline).
        let b = detect(false);
        #[cfg(target_arch = "x86_64")]
        assert_ne!(b, Backend::Scalar);
        let _ = b.name();
    }

    #[test]
    fn backend_is_cached_and_named() {
        let b = backend();
        assert_eq!(backend(), b);
        assert!(["avx2", "sse2", "scalar"].contains(&b.name()));
    }

    #[test]
    fn dot_f32_dispatched_matches_scalar_within_tolerance() {
        for n in [0usize, 1, 7, 8, 31, 32, 33, 256, 1000] {
            let a = f32s(n, 1 + n as u64);
            let b = f32s(n, 2 + n as u64);
            let want = scalar::dot_f32(0.5, &a, &b);
            let got = dot_f32(0.5, &a, &b);
            assert!(rel_close(want, got, 1e-5), "n={n}: {want} vs {got}");
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn every_x86_tier_matches_scalar() {
        if !is_x86_feature_detected!("avx2") {
            return; // SSE2-only host: the dispatch test already covers it.
        }
        for n in [0usize, 3, 16, 63, 64, 257] {
            let af = f32s(n, 10 + n as u64);
            let bf = f32s(n, 20 + n as u64);
            let want = scalar::dot_f32(-1.25, &af, &bf);
            // Safety: AVX2 (and baseline SSE2) verified above.
            let avx = unsafe { x86::dot_f32_avx2(-1.25, &af, &bf) };
            let sse = unsafe { x86::dot_f32_sse2(-1.25, &af, &bf) };
            assert!(rel_close(want, avx, 1e-5), "avx2 n={n}");
            assert!(rel_close(want, sse, 1e-5), "sse2 n={n}");

            let ai = i8s(n, 30 + n as u64);
            let bi = i8s(n, 40 + n as u64);
            // Integer kernels are exact in every tier.
            let want_i = scalar::dot_i8(&ai, &bi);
            assert_eq!(unsafe { x86::dot_i8_avx2(&ai, &bi) }, want_i, "n={n}");
            assert_eq!(unsafe { x86::dot_i8_sse2(&ai, &bi) }, want_i, "n={n}");

            let mut r = rng(50 + n as u64);
            let au: Vec<u32> = (0..n).map(|_| r.gen_range(0..4)).collect();
            let bu: Vec<u32> = (0..n).map(|_| r.gen_range(0..4)).collect();
            let want_m = scalar::match_count_u32(&au, &bu);
            assert_eq!(unsafe { x86::match_count_avx2(&au, &bu) }, want_m);
            assert_eq!(unsafe { x86::match_count_sse2(&au, &bu) }, want_m);

            // ReLU is exact in every tier, including NaN handling.
            let mut zs = f32s(n, 60 + n as u64);
            if n > 2 {
                zs[1] = f32::NAN;
                zs[2] = -0.0;
            }
            let mut want_r = vec![0f32; n];
            scalar::relu_f32(&zs, &mut want_r);
            let mut got = vec![7f32; n];
            unsafe { x86::relu_f32_avx2(&zs, &mut got) };
            assert_eq!(got, want_r, "avx2 relu n={n}");
            let mut got = vec![7f32; n];
            unsafe { x86::relu_f32_sse2(&zs, &mut got) };
            assert_eq!(got, want_r, "sse2 relu n={n}");
        }
    }

    #[test]
    fn dot_i8_and_match_count_are_backend_independent() {
        for n in [0usize, 5, 16, 48, 500] {
            let a = i8s(n, 7);
            let b = i8s(n, 8);
            assert_eq!(dot_i8(&a, &b), scalar::dot_i8(&a, &b));
            let mut r = rng(9);
            let au: Vec<u32> = (0..n).map(|_| r.gen_range(0..3)).collect();
            let bu: Vec<u32> = (0..n).map(|_| r.gen_range(0..3)).collect();
            assert_eq!(match_count_u32(&au, &bu), scalar::match_count_u32(&au, &bu));
        }
    }

    #[test]
    fn f16_conversion_fixed_points() {
        // Exactly-representable values round-trip bit-perfectly.
        for v in [
            0.0f32,
            -0.0,
            1.0,
            -1.0,
            0.5,
            2.0,
            65504.0,
            -65504.0,
            0.099975586,
        ] {
            let bits = f32_to_f16_bits(v);
            assert_eq!(f16_bits_to_f32(bits), v, "{v}");
        }
        assert_eq!(f32_to_f16_bits(1.0), 0x3C00);
        assert_eq!(f32_to_f16_bits(-2.0), 0xC000);
        // Saturation and specials.
        assert_eq!(f32_to_f16_bits(1e6), 0x7C00);
        assert_eq!(f16_bits_to_f32(0x7C00), f32::INFINITY);
        assert_eq!(f16_bits_to_f32(0xFC00), f32::NEG_INFINITY);
        assert!(f16_bits_to_f32(f32_to_f16_bits(f32::NAN)).is_nan());
        // Smallest subnormal: 2⁻²⁴.
        assert_eq!(f16_bits_to_f32(0x0001), 2f32.powi(-24));
        assert_eq!(f32_to_f16_bits(2f32.powi(-24)), 0x0001);
        // Halfway to the smallest subnormal ties to even (zero)…
        assert_eq!(f32_to_f16_bits(2f32.powi(-25)), 0x0000);
        // …and anything above the halfway point rounds up.
        assert_eq!(f32_to_f16_bits(1.5 * 2f32.powi(-25)), 0x0001);
        // Round-to-nearest-even at the mantissa boundary: 2049/2048 is
        // halfway between 1.0 and the next half (1 + 2⁻¹⁰) → even (1.0).
        assert_eq!(f32_to_f16_bits(1.0 + 2f32.powi(-11)), 0x3C00);
        assert_eq!(f32_to_f16_bits(1.0 + 3.0 * 2f32.powi(-11)), 0x3C02);
    }

    #[test]
    fn dot_f16_matches_f32_dot_within_tolerance() {
        for n in [0usize, 7, 8, 16, 100, 256] {
            let w = f32s(n, 70 + n as u64);
            let a = f32s(n, 80 + n as u64);
            let wh: Vec<F16> = w.iter().map(|&v| F16::from_f32(v)).collect();
            let dequant: Vec<f32> = wh.iter().map(|h| h.to_f32()).collect();
            let want = scalar::dot_f32(0.25, &dequant, &a);
            let got = dot_f16_f32(0.25, &wh, &a);
            assert!(rel_close(want, got, 1e-5), "n={n}: {want} vs {got}");
            // And f16 quantization itself stays close to the f32 original.
            let full = scalar::dot_f32(0.25, &w, &a);
            assert!(rel_close(full, got, 2e-3), "n={n}: {full} vs {got}");
        }
    }

    /// Finite / infinite values exercising every f32→f16 rounding regime:
    /// normals, RNE ties, subnormal outputs, the overflow boundary, ±∞.
    fn f16_edge_values() -> Vec<f32> {
        vec![
            0.0,
            -0.0,
            1.0,
            -1.0,
            1.0 + 2f32.powi(-11),       // tie → even
            1.0 + 3.0 * 2f32.powi(-11), // above tie → up
            2f32.powi(-24),             // smallest f16 subnormal
            2f32.powi(-25),             // tie with zero → zero
            1.5 * 2f32.powi(-25),       // above tie → smallest subnormal
            2f32.powi(-30),             // underflows to zero
            65504.0,                    // f16 max normal
            65520.0,                    // tie with ∞ → ∞
            1e6,                        // saturates
            -65504.0,
            f32::INFINITY,
            f32::NEG_INFINITY,
        ]
    }

    #[test]
    fn f16_slice_conversions_match_scalar_bitwise() {
        for n in [0usize, 1, 7, 8, 9, 16, 64, 257] {
            let mut src = f32s(n, 90 + n as u64);
            // Cycle the edge values through the head so the SIMD lanes see
            // them, not just the scalar tail.
            for (i, v) in f16_edge_values().into_iter().enumerate() {
                if i < n {
                    src[i] = v;
                }
            }
            let mut want = vec![F16(0); n];
            scalar::f32_to_f16_slice(&src, &mut want);
            let mut got = vec![F16(0); n];
            f32_to_f16_slice(&src, &mut got);
            assert_eq!(got, want, "f32→f16 n={n}");
            // And widening back is lossless in every tier.
            let mut wf = vec![0f32; n];
            scalar::f16_to_f32_slice(&want, &mut wf);
            let mut gf = vec![0f32; n];
            f16_to_f32_slice(&want, &mut gf);
            let wb: Vec<u32> = wf.iter().map(|v| v.to_bits()).collect();
            let gb: Vec<u32> = gf.iter().map(|v| v.to_bits()).collect();
            assert_eq!(gb, wb, "f16→f32 n={n}");
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn f16c_slice_tier_matches_scalar() {
        if !(is_x86_feature_detected!("avx2") && is_x86_feature_detected!("f16c")) {
            return; // No F16C: the dispatch test already covers this host.
        }
        // Direct-tier parity regardless of what process dispatch picked
        // (e.g. under HAMLET_FORCE_SCALAR the dispatched path is scalar).
        let mut src = f16_edge_values();
        src.extend(f32s(100, 91));
        let n = src.len();
        let mut want = vec![F16(0); n];
        scalar::f32_to_f16_slice(&src, &mut want);
        let mut got = vec![F16(0); n];
        // Safety: AVX2 + F16C verified above.
        unsafe { x86::f32_to_f16_slice_f16c(&src, &mut got) };
        assert_eq!(got, want);
        let mut wf = vec![0f32; n];
        scalar::f16_to_f32_slice(&want, &mut wf);
        let mut gf = vec![0f32; n];
        // Safety: AVX2 + F16C verified above.
        unsafe { x86::f16_to_f32_slice_f16c(&want, &mut gf) };
        let wb: Vec<u32> = wf.iter().map(|v| v.to_bits()).collect();
        let gb: Vec<u32> = gf.iter().map(|v| v.to_bits()).collect();
        assert_eq!(gb, wb);
        // NaN: payloads may differ between tiers, but NaN stays NaN.
        let nans = [
            f32::NAN,
            -f32::NAN,
            f32::NAN,
            f32::NAN,
            f32::NAN,
            f32::NAN,
            f32::NAN,
            f32::NAN,
        ];
        let mut hw = [F16(0); 8];
        // Safety: AVX2 + F16C verified above.
        unsafe { x86::f32_to_f16_slice_f16c(&nans, &mut hw) };
        for h in hw {
            assert!(f16_bits_to_f32(h.0).is_nan());
        }
    }

    #[test]
    fn onehot_dot_matches_scalar() {
        let mut r = rng(123);
        for n in [1usize, 4, 15, 16, 17, 64, 200] {
            let card = 5u32;
            let offsets: Vec<u32> = (0..n as u32).map(|j| j * card).collect();
            let codes: Vec<u32> = (0..n).map(|_| r.gen_range(0..card)).collect();
            let weights: Vec<f64> = (0..n * card as usize)
                .map(|_| r.gen::<f64>() * 2.0 - 1.0)
                .collect();
            let want = scalar::onehot_dot_f64(0.125, &weights, &offsets, &codes);
            let got = onehot_dot_f64(0.125, &weights, &offsets, &codes);
            assert!(
                (want - got).abs() <= 1e-9 * want.abs().max(1.0),
                "n={n}: {want} vs {got}"
            );
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn onehot_gather_rejects_out_of_bounds_indices() {
        if !is_x86_feature_detected!("avx2") {
            return;
        }
        let offsets: Vec<u32> = (0..32).map(|j| j * 2).collect();
        let codes = vec![1u32; 32];
        let weights = vec![1.0f64; 8]; // far too small
                                       // Safety: AVX2 verified above.
        assert!(unsafe { x86::onehot_dot_f64_avx2(0.0, &weights, &offsets, &codes) }.is_none());
    }
}
