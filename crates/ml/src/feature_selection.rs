//! Greedy wrapper feature selection on validation accuracy.
//!
//! The paper's Naive Bayes baseline is "NB with backward selection" (§3);
//! forward selection is included for completeness (the paper ran it too and
//! found no new insights). Both wrappers are generic over the fitting
//! routine, so any [`Classifier`] can be wrapped.

use crate::dataset::CatDataset;
use crate::error::{MlError, Result};
use crate::model::Classifier;

/// Outcome of a wrapper selection run.
#[derive(Debug, Clone)]
pub struct SelectionOutcome {
    /// Indices (into the original feature list) that were kept, ascending.
    pub selected: Vec<usize>,
    /// Validation accuracy achieved by the kept subset.
    pub val_accuracy: f64,
    /// Number of candidate fits evaluated (for runtime accounting).
    pub fits_evaluated: usize,
}

fn eval_subset<M, F>(train: &CatDataset, val: &CatDataset, subset: &[usize], fit: &F) -> Result<f64>
where
    M: Classifier,
    F: Fn(&CatDataset) -> Result<M>,
{
    let t = train.select_features(subset)?;
    let v = val.select_features(subset)?;
    let model = fit(&t)?;
    Ok(model.accuracy(&v))
}

/// Greedy backward selection: starting from all features, repeatedly drop
/// the feature whose removal maximises validation accuracy, as long as the
/// best removal does not hurt (ties favour fewer features). Terminates
/// because the set shrinks every accepted step.
pub fn backward_selection<M, F>(
    train: &CatDataset,
    val: &CatDataset,
    fit: F,
) -> Result<SelectionOutcome>
where
    M: Classifier,
    F: Fn(&CatDataset) -> Result<M>,
{
    let d = train.n_features();
    if d == 0 {
        return Err(MlError::Shape {
            detail: "no features to select from".into(),
        });
    }
    let mut current: Vec<usize> = (0..d).collect();
    let mut fits = 0usize;
    let mut best_acc = eval_subset(train, val, &current, &fit)?;
    fits += 1;

    while current.len() > 1 {
        let mut best_drop: Option<(usize, f64)> = None;
        for (pos, _) in current.iter().enumerate() {
            let mut cand = current.clone();
            cand.remove(pos);
            let acc = eval_subset(train, val, &cand, &fit)?;
            fits += 1;
            if best_drop.is_none_or(|(_, a)| acc > a) {
                best_drop = Some((pos, acc));
            }
        }
        match best_drop {
            Some((pos, acc)) if acc >= best_acc => {
                current.remove(pos);
                best_acc = acc;
            }
            _ => break,
        }
    }
    Ok(SelectionOutcome {
        selected: current,
        val_accuracy: best_acc,
        fits_evaluated: fits,
    })
}

/// Greedy forward selection: starting empty, repeatedly add the feature that
/// maximises validation accuracy while it strictly improves.
pub fn forward_selection<M, F>(
    train: &CatDataset,
    val: &CatDataset,
    fit: F,
) -> Result<SelectionOutcome>
where
    M: Classifier,
    F: Fn(&CatDataset) -> Result<M>,
{
    let d = train.n_features();
    if d == 0 {
        return Err(MlError::Shape {
            detail: "no features to select from".into(),
        });
    }
    let mut current: Vec<usize> = Vec::new();
    let mut best_acc = f64::NEG_INFINITY;
    let mut fits = 0usize;

    loop {
        let mut best_add: Option<(usize, f64)> = None;
        for j in 0..d {
            if current.contains(&j) {
                continue;
            }
            let mut cand = current.clone();
            cand.push(j);
            cand.sort_unstable();
            let acc = eval_subset(train, val, &cand, &fit)?;
            fits += 1;
            if best_add.is_none_or(|(_, a)| acc > a) {
                best_add = Some((j, acc));
            }
        }
        match best_add {
            Some((j, acc)) if acc > best_acc => {
                current.push(j);
                current.sort_unstable();
                best_acc = acc;
            }
            _ => break,
        }
        if current.len() == d {
            break;
        }
    }
    if current.is_empty() {
        // All single features were useless; keep the best singleton anyway so
        // downstream models have an input.
        current.push(0);
        best_acc = eval_subset(train, val, &current, &fit)?;
        fits += 1;
    }
    Ok(SelectionOutcome {
        selected: current,
        val_accuracy: best_acc,
        fits_evaluated: fits,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{FeatureMeta, Provenance};
    use crate::naive_bayes::NaiveBayes;

    /// Feature 0 carries the label; features 1,2 are pure noise.
    fn signal_and_noise(n: usize) -> (CatDataset, CatDataset) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let meta: Vec<FeatureMeta> = (0..3)
            .map(|j| FeatureMeta::new(format!("f{j}"), 4, Provenance::Home))
            .collect();
        let make = |rng: &mut rand::rngs::StdRng| {
            let mut rows = Vec::new();
            let mut labels = Vec::new();
            for _ in 0..n {
                let y = rng.gen_bool(0.5);
                // Signal feature: tracks y with 95 % fidelity.
                let f0 = if rng.gen_bool(0.95) {
                    u32::from(y)
                } else {
                    u32::from(!y)
                };
                rows.push(f0);
                rows.push(rng.gen_range(0..4));
                rows.push(rng.gen_range(0..4));
                labels.push(y);
            }
            CatDataset::new(meta.clone(), rows, labels).unwrap()
        };
        (make(&mut rng), make(&mut rng))
    }

    #[test]
    fn backward_keeps_signal() {
        let (train, val) = signal_and_noise(400);
        let out = backward_selection(&train, &val, NaiveBayes::fit).unwrap();
        assert!(out.selected.contains(&0), "kept {:?}", out.selected);
        assert!(out.val_accuracy > 0.85);
        assert!(out.fits_evaluated >= 4);
    }

    #[test]
    fn forward_finds_signal_first() {
        let (train, val) = signal_and_noise(400);
        let out = forward_selection(&train, &val, NaiveBayes::fit).unwrap();
        assert!(out.selected.contains(&0));
        assert!(out.val_accuracy > 0.85);
    }

    #[test]
    fn backward_never_empties_the_set() {
        let (train, val) = signal_and_noise(50);
        let out = backward_selection(&train, &val, NaiveBayes::fit).unwrap();
        assert!(!out.selected.is_empty());
    }
}
