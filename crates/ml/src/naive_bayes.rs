//! Categorical Naive Bayes with Laplace smoothing.
//!
//! One of the paper's linear-capacity baselines (from the SIGMOD'16 work the
//! study revisits). Conditional probability tables are estimated per
//! feature; Laplace add-one smoothing handles codes unseen within a class —
//! and, notably, makes NB one of the models that does *not* crash on FK
//! codes unseen in training (§6.2 discusses trees crashing; NB smooths).

use crate::binenc::PodVec;
use crate::dataset::CatDataset;
use crate::error::{MlError, Result};
use crate::model::Classifier;

/// A fitted categorical Naive Bayes model (log-space). Probability tables
/// live behind [`PodVec`] so mmap-loaded format-v3 artifacts score rows
/// straight out of the mapped file.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct NaiveBayes {
    /// Log prior for (negative, positive).
    pub(crate) log_prior: [f64; 2],
    /// Per feature: flattened `2 × cardinality` log-likelihood table.
    pub(crate) tables: Vec<PodVec<f64>>,
    pub(crate) cardinalities: PodVec<u32>,
}

/// Laplace pseudo-count used for all tables.
const ALPHA: f64 = 1.0;

impl NaiveBayes {
    /// Fits conditional probability tables from counts.
    pub fn fit(ds: &CatDataset) -> Result<Self> {
        let n = ds.n_rows();
        if n == 0 {
            return Err(MlError::Shape {
                detail: "cannot fit NB on an empty dataset".into(),
            });
        }
        let pos = ds.pos_count();
        let neg = n - pos;
        // Laplace on the prior too, so single-class data stays finite.
        let log_prior = [
            ((neg as f64 + ALPHA) / (n as f64 + 2.0 * ALPHA)).ln(),
            ((pos as f64 + ALPHA) / (n as f64 + 2.0 * ALPHA)).ln(),
        ];
        let class_n = [neg as f64, pos as f64];

        let mut tables = Vec::with_capacity(ds.n_features());
        for j in 0..ds.n_features() {
            let k = ds.feature(j).cardinality as usize;
            let mut counts = vec![0.0f64; 2 * k];
            for i in 0..n {
                let c = ds.row(i)[j] as usize;
                let y = usize::from(ds.label(i));
                counts[y * k + c] += 1.0;
            }
            let mut table = vec![0.0f64; 2 * k];
            for y in 0..2 {
                let denom = class_n[y] + ALPHA * k as f64;
                for c in 0..k {
                    table[y * k + c] = ((counts[y * k + c] + ALPHA) / denom).ln();
                }
            }
            tables.push(table.into());
        }
        Ok(Self {
            log_prior,
            tables,
            cardinalities: ds.cardinalities().into(),
        })
    }

    /// Log joint score for one class.
    fn score(&self, row: &[u32], y: usize) -> f64 {
        let mut s = self.log_prior[y];
        for (j, (&code, table)) in row.iter().zip(&self.tables).enumerate() {
            let k = self.cardinalities[j] as usize;
            s += table[y * k + code as usize];
        }
        s
    }

    /// Class log-odds `score(y=1) − score(y=0)`. Sign-consistent with
    /// `predict_row` (positive ⟺ the positive class wins, ties included) —
    /// the NB family's margin for cascade calibration.
    pub fn log_odds(&self, row: &[u32]) -> f64 {
        self.score(row, 1) - self.score(row, 0)
    }

    /// Posterior probability of the positive class.
    pub fn posterior_pos(&self, row: &[u32]) -> f64 {
        let s0 = self.score(row, 0);
        let s1 = self.score(row, 1);
        let m = s0.max(s1);
        let e0 = (s0 - m).exp();
        let e1 = (s1 - m).exp();
        e1 / (e0 + e1)
    }
}

impl Classifier for NaiveBayes {
    fn predict_row(&self, row: &[u32]) -> bool {
        self.score(row, 1) >= self.score(row, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{CatDataset, FeatureMeta, Provenance};

    fn meta(d: usize, k: u32) -> Vec<FeatureMeta> {
        (0..d)
            .map(|j| FeatureMeta::new(format!("f{j}"), k, Provenance::Home))
            .collect()
    }

    #[test]
    fn learns_a_strong_marginal_signal() {
        // Feature 0 = label with high probability.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..100u32 {
            let y = i % 2 == 0;
            rows.push(u32::from(y));
            rows.push(i % 3); // noise feature
            labels.push(y);
        }
        let ds = CatDataset::new(meta(2, 3), rows, labels).unwrap();
        let nb = NaiveBayes::fit(&ds).unwrap();
        assert!(nb.accuracy(&ds) > 0.95);
    }

    #[test]
    fn posterior_is_probability() {
        let ds =
            CatDataset::new(meta(1, 2), vec![0, 0, 1, 1], vec![true, true, false, false]).unwrap();
        let nb = NaiveBayes::fit(&ds).unwrap();
        let p0 = nb.posterior_pos(&[0]);
        let p1 = nb.posterior_pos(&[1]);
        assert!(p0 > 0.5 && p0 < 1.0);
        assert!(p1 < 0.5 && p1 > 0.0);
    }

    #[test]
    fn laplace_handles_unseen_codes() {
        let ds = CatDataset::new(meta(1, 5), vec![0, 1], vec![true, false]).unwrap();
        let nb = NaiveBayes::fit(&ds).unwrap();
        // Codes 2..4 never seen: must not panic, and posterior ≈ prior.
        let p = nb.posterior_pos(&[4]);
        assert!(p > 0.0 && p < 1.0);
        assert!((p - 0.5).abs() < 0.1);
    }

    #[test]
    fn single_class_data_stays_finite() {
        let ds = CatDataset::new(meta(1, 2), vec![0, 1], vec![true, true]).unwrap();
        let nb = NaiveBayes::fit(&ds).unwrap();
        assert!(nb.predict_row(&[0]));
        assert!(nb.posterior_pos(&[1]).is_finite());
    }

    #[test]
    fn independence_assumption_multiplies_evidence() {
        // Two weakly predictive features should combine to a stronger
        // posterior than either alone.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        // P(f=y) = 0.75 per feature, independent.
        let pattern = [
            (0u32, 0u32, true),
            (0, 1, true),
            (1, 0, true),
            (0, 0, true),
            (1, 1, false),
            (1, 0, false),
            (0, 1, false),
            (1, 1, false),
        ];
        for &(a, b, y) in &pattern {
            rows.push(a);
            rows.push(b);
            labels.push(y);
        }
        let ds = CatDataset::new(meta(2, 2), rows, labels).unwrap();
        let nb = NaiveBayes::fit(&ds).unwrap();
        let both = nb.posterior_pos(&[0, 0]);
        let one = nb.posterior_pos(&[0, 1]);
        assert!(both > one);
    }
}
