//! Evaluation metrics for binary classification.

/// Fraction of agreeing predictions. Panics on length mismatch; an empty
/// input scores 0 (callers never evaluate empty splits deliberately).
pub fn accuracy(pred: &[bool], truth: &[bool]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "prediction/label length mismatch");
    if pred.is_empty() {
        return 0.0;
    }
    let hits = pred.iter().zip(truth).filter(|(p, t)| p == t).count();
    hits as f64 / pred.len() as f64
}

/// 0/1 loss (`1 − accuracy`).
pub fn error_rate(pred: &[bool], truth: &[bool]) -> f64 {
    1.0 - accuracy(pred, truth)
}

/// Confusion counts for binary classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Confusion {
    /// True positives.
    pub tp: usize,
    /// True negatives.
    pub tn: usize,
    /// False positives.
    pub fp: usize,
    /// False negatives.
    pub fn_: usize,
}

impl Confusion {
    /// Tallies a prediction/label pairing.
    pub fn from_pairs(pred: &[bool], truth: &[bool]) -> Self {
        assert_eq!(pred.len(), truth.len());
        let mut c = Self::default();
        for (&p, &t) in pred.iter().zip(truth) {
            match (p, t) {
                (true, true) => c.tp += 1,
                (false, false) => c.tn += 1,
                (true, false) => c.fp += 1,
                (false, true) => c.fn_ += 1,
            }
        }
        c
    }

    /// Total examples tallied.
    pub fn total(&self) -> usize {
        self.tp + self.tn + self.fp + self.fn_
    }

    /// Accuracy from the counts.
    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        (self.tp + self.tn) as f64 / self.total() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basic() {
        let p = vec![true, false, true];
        let t = vec![true, true, true];
        assert!((accuracy(&p, &t) - 2.0 / 3.0).abs() < 1e-12);
        assert!((error_rate(&p, &t) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_scores_zero() {
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic]
    fn mismatch_panics() {
        accuracy(&[true], &[]);
    }

    #[test]
    fn confusion_counts() {
        let p = vec![true, false, true, false];
        let t = vec![true, true, false, false];
        let c = Confusion::from_pairs(&p, &t);
        assert_eq!((c.tp, c.fn_, c.fp, c.tn), (1, 1, 1, 1));
        assert!((c.accuracy() - 0.5).abs() < 1e-12);
        assert_eq!(c.total(), 4);
    }
}
