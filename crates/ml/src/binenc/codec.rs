//! Per-family binary payload serializers for [`AnyClassifier`].
//!
//! Each family writes a one-byte variant tag followed by its payload:
//! scalars inline, numeric arrays as aligned pod sections (zero-copy on the
//! mmap read path). The tree payload lives next to its private node types
//! in `crate::tree`; everything else is here. These codecs replace
//! serde-JSON as the only model encoding — format-v3 artifacts embed this
//! stream as their `MODL` section, while v1/v2 JSON artifacts keep using
//! the serde path.

use crate::ann::Mlp;
use crate::any::{AnyClassifier, SubsetModel};
use crate::binenc::{BinReader, BinWriter};
use crate::cascade::{Calibrator, CascadeModel, CascadeTier, MAX_TIERS};
use crate::error::{MlError, Result};
use crate::knn::OneNearestNeighbor;
use crate::logreg::LogRegL1;
use crate::model::MajorityClass;
use crate::naive_bayes::NaiveBayes;
use crate::quant::{
    QTensor, QTensor64, QuantEncoding, QuantLogReg, QuantMlp, QuantModel, QuantPayload, QuantSvm,
};
use crate::svm::{KernelKind, SvmModel};
use crate::tree::DecisionTree;

fn bad(what: impl std::fmt::Display) -> MlError {
    MlError::Invalid(format!("corrupt model payload: {what}"))
}

fn encode_kernel(w: &mut BinWriter, k: KernelKind) {
    match k {
        KernelKind::Linear => w.put_u8(0),
        KernelKind::Quadratic { gamma } => {
            w.put_u8(1);
            w.put_f64(gamma);
        }
        KernelKind::Rbf { gamma } => {
            w.put_u8(2);
            w.put_f64(gamma);
        }
    }
}

fn decode_kernel(r: &mut BinReader) -> Result<KernelKind> {
    Ok(match r.read_u8()? {
        0 => KernelKind::Linear,
        1 => KernelKind::Quadratic {
            gamma: r.read_f64()?,
        },
        2 => KernelKind::Rbf {
            gamma: r.read_f64()?,
        },
        t => return Err(bad(format!("kernel tag {t}"))),
    })
}

fn encode_bools_packed(w: &mut BinWriter, bits: &[bool]) {
    w.put_usize(bits.len());
    let mut byte = 0u8;
    for (i, &b) in bits.iter().enumerate() {
        byte |= u8::from(b) << (i % 8);
        if i % 8 == 7 {
            w.put_u8(byte);
            byte = 0;
        }
    }
    if !bits.len().is_multiple_of(8) {
        w.put_u8(byte);
    }
}

fn decode_bools_packed(r: &mut BinReader) -> Result<Vec<bool>> {
    let len = r.read_usize()?;
    if len > r.remaining().saturating_mul(8) {
        return Err(bad(format!("packed bool list of {len} overruns section")));
    }
    let mut out = Vec::with_capacity(len);
    let mut byte = 0u8;
    for i in 0..len {
        if i % 8 == 0 {
            byte = r.read_u8()?;
        }
        out.push(byte >> (i % 8) & 1 == 1);
    }
    Ok(out)
}

fn encode_mlp(w: &mut BinWriter, m: &Mlp) {
    w.put_usize(m.d_in);
    w.put_usize(m.h1);
    w.put_usize(m.h2);
    w.put_f32(m.b3);
    w.put_pod_slice(&m.offsets);
    w.put_pod_slice(&m.w1);
    w.put_pod_slice(&m.b1);
    w.put_pod_slice(&m.w2);
    w.put_pod_slice(&m.b2);
    w.put_pod_slice(&m.w3);
}

fn decode_mlp(r: &mut BinReader) -> Result<Mlp> {
    let d_in = r.read_usize()?;
    let h1 = r.read_usize()?;
    let h2 = r.read_usize()?;
    let b3 = r.read_f32()?;
    let offsets = r.read_pod_vec()?;
    let w1 = r.read_pod_vec()?;
    let b1 = r.read_pod_vec()?;
    let w2 = r.read_pod_vec()?;
    let b2 = r.read_pod_vec()?;
    let w3 = r.read_pod_vec()?;
    let m = Mlp {
        offsets,
        d_in,
        h1,
        h2,
        w1,
        b1,
        w2,
        b2,
        w3,
        b3,
    };
    // Dimensions come straight from the file: checked arithmetic so a
    // corrupt header is a clean error, not an overflow panic.
    let area = |a: usize, b: usize| a.checked_mul(b);
    if Some(m.w1.len()) != area(m.h1, m.d_in)
        || m.b1.len() != m.h1
        || Some(m.w2.len()) != area(m.h2, m.h1)
        || m.b2.len() != m.h2
        || m.w3.len() != m.h2
    {
        return Err(bad("MLP layer shapes disagree"));
    }
    Ok(m)
}

fn encode_svm(w: &mut BinWriter, m: &SvmModel) {
    encode_kernel(w, m.kernel);
    w.put_usize(m.n_features);
    w.put_f64(m.bias);
    w.put_pod_slice(&m.sv_coef);
    w.put_pod_slice(&m.sv_rows);
}

fn decode_svm(r: &mut BinReader) -> Result<SvmModel> {
    let kernel = decode_kernel(r)?;
    let n_features = r.read_usize()?;
    let bias = r.read_f64()?;
    let sv_coef = r.read_pod_vec()?;
    let sv_rows = r.read_pod_vec()?;
    let m = SvmModel {
        kernel,
        n_features,
        sv_rows,
        sv_coef,
        bias,
    };
    if m.n_features == 0 || Some(m.sv_rows.len()) != m.sv_coef.len().checked_mul(m.n_features) {
        return Err(bad("SVM support-vector shapes disagree"));
    }
    Ok(m)
}

fn encode_knn(w: &mut BinWriter, m: &OneNearestNeighbor) {
    w.put_usize(m.d);
    encode_bools_packed(w, &m.labels);
    w.put_pod_slice(&m.rows);
}

fn decode_knn(r: &mut BinReader) -> Result<OneNearestNeighbor> {
    let d = r.read_usize()?;
    let labels = decode_bools_packed(r)?;
    let rows = r.read_pod_vec()?;
    let m = OneNearestNeighbor { d, rows, labels };
    if m.d == 0 || Some(m.rows.len()) != m.labels.len().checked_mul(m.d) {
        return Err(bad("1-NN row/label shapes disagree"));
    }
    Ok(m)
}

fn encode_nb(w: &mut BinWriter, m: &NaiveBayes) {
    w.put_f64(m.log_prior[0]);
    w.put_f64(m.log_prior[1]);
    w.put_pod_slice(&m.cardinalities);
    w.put_usize(m.tables.len());
    for table in &m.tables {
        w.put_pod_slice(table);
    }
}

fn decode_nb(r: &mut BinReader) -> Result<NaiveBayes> {
    let log_prior = [r.read_f64()?, r.read_f64()?];
    let cardinalities = r.read_pod_vec::<u32>()?;
    let n_tables = r.read_usize()?;
    if n_tables != cardinalities.len() {
        return Err(bad("NB table count does not match cardinalities"));
    }
    let mut tables = Vec::with_capacity(n_tables);
    for j in 0..n_tables {
        let table = r.read_pod_vec::<f64>()?;
        if table.len() != 2 * cardinalities[j] as usize {
            return Err(bad(format!("NB table {j} has wrong shape")));
        }
        tables.push(table);
    }
    Ok(NaiveBayes {
        log_prior,
        tables,
        cardinalities,
    })
}

fn encode_logreg(w: &mut BinWriter, m: &LogRegL1) {
    w.put_f64(m.intercept);
    w.put_f64(m.lambda);
    w.put_pod_slice(&m.offsets);
    w.put_pod_slice(&m.weights);
}

fn decode_logreg(r: &mut BinReader) -> Result<LogRegL1> {
    let intercept = r.read_f64()?;
    let lambda = r.read_f64()?;
    let offsets = r.read_pod_vec::<u32>()?;
    let weights = r.read_pod_vec::<f64>()?;
    // `offsets` carries a trailing sentinel equal to the one-hot dimension;
    // the weight vector must span exactly that, or `decision` would index
    // out of bounds.
    if offsets
        .last()
        .is_none_or(|&dim| weights.len() != dim as usize)
    {
        return Err(bad("logreg weights do not span the one-hot offsets"));
    }
    Ok(LogRegL1 {
        offsets,
        weights,
        intercept,
        lambda,
    })
}

fn encode_qtensor(w: &mut BinWriter, t: &QTensor) {
    match t {
        QTensor::I8 { data, scale } => {
            w.put_f32(*scale);
            w.put_pod_slice(data);
        }
        QTensor::F16 { data } => w.put_pod_slice(data),
    }
}

fn decode_qtensor(r: &mut BinReader, enc: QuantEncoding) -> Result<QTensor> {
    Ok(match enc {
        QuantEncoding::I8 => QTensor::I8 {
            scale: r.read_f32()?,
            data: r.read_pod_vec()?,
        },
        QuantEncoding::F16 => QTensor::F16 {
            data: r.read_pod_vec()?,
        },
    })
}

fn encode_qtensor64(w: &mut BinWriter, t: &QTensor64) {
    match t {
        QTensor64::I8 { data, scale } => {
            w.put_f64(*scale);
            w.put_pod_slice(data);
        }
        QTensor64::F16 { data } => w.put_pod_slice(data),
    }
}

fn decode_qtensor64(r: &mut BinReader, enc: QuantEncoding) -> Result<QTensor64> {
    Ok(match enc {
        QuantEncoding::I8 => QTensor64::I8 {
            scale: r.read_f64()?,
            data: r.read_pod_vec()?,
        },
        QuantEncoding::F16 => QTensor64::F16 {
            data: r.read_pod_vec()?,
        },
    })
}

fn encode_quant(w: &mut BinWriter, q: &QuantModel) {
    w.put_u8(match q.encoding {
        QuantEncoding::I8 => 0,
        QuantEncoding::F16 => 1,
    });
    match &q.payload {
        QuantPayload::Mlp(m) => {
            w.put_u8(0);
            w.put_usize(m.d_in);
            w.put_usize(m.h1);
            w.put_usize(m.h2);
            w.put_f32(m.b3);
            w.put_pod_slice(&m.offsets);
            encode_qtensor(w, &m.w1);
            w.put_pod_slice(&m.b1);
            encode_qtensor(w, &m.w2);
            w.put_pod_slice(&m.b2);
            encode_qtensor(w, &m.w3);
        }
        QuantPayload::Svm(m) => {
            w.put_u8(1);
            encode_kernel(w, m.kernel);
            w.put_usize(m.n_features);
            w.put_f64(m.bias);
            encode_qtensor64(w, &m.sv_coef);
            w.put_pod_slice(&m.sv_rows);
        }
        QuantPayload::LogReg(m) => {
            w.put_u8(2);
            w.put_f64(m.intercept);
            w.put_pod_slice(&m.offsets);
            encode_qtensor64(w, &m.weights);
        }
    }
}

fn decode_quant(r: &mut BinReader) -> Result<QuantModel> {
    let encoding = match r.read_u8()? {
        0 => QuantEncoding::I8,
        1 => QuantEncoding::F16,
        t => return Err(bad(format!("quantized encoding tag {t}"))),
    };
    let payload = match r.read_u8()? {
        0 => {
            let d_in = r.read_usize()?;
            let h1 = r.read_usize()?;
            let h2 = r.read_usize()?;
            let b3 = r.read_f32()?;
            let offsets = r.read_pod_vec()?;
            let w1 = decode_qtensor(r, encoding)?;
            let b1 = r.read_pod_vec()?;
            let w2 = decode_qtensor(r, encoding)?;
            let b2 = r.read_pod_vec()?;
            let w3 = decode_qtensor(r, encoding)?;
            let m = QuantMlp {
                offsets,
                d_in,
                h1,
                h2,
                w1,
                b1,
                w2,
                b2,
                w3,
                b3,
            };
            let area = |a: usize, b: usize| a.checked_mul(b);
            if Some(m.w1.len()) != area(m.h1, m.d_in)
                || m.b1.len() != m.h1
                || Some(m.w2.len()) != area(m.h2, m.h1)
                || m.b2.len() != m.h2
                || m.w3.len() != m.h2
            {
                return Err(bad("quantized MLP layer shapes disagree"));
            }
            QuantPayload::Mlp(m)
        }
        1 => {
            let kernel = decode_kernel(r)?;
            let n_features = r.read_usize()?;
            let bias = r.read_f64()?;
            let sv_coef = decode_qtensor64(r, encoding)?;
            let sv_rows = r.read_pod_vec::<u32>()?;
            let m = QuantSvm {
                kernel,
                n_features,
                sv_rows,
                sv_coef,
                bias,
            };
            if m.n_features == 0
                || Some(m.sv_rows.len()) != m.sv_coef.len().checked_mul(m.n_features)
            {
                return Err(bad("quantized SVM support-vector shapes disagree"));
            }
            QuantPayload::Svm(m)
        }
        2 => {
            let intercept = r.read_f64()?;
            let offsets = r.read_pod_vec::<u32>()?;
            let weights = decode_qtensor64(r, encoding)?;
            if offsets
                .last()
                .is_none_or(|&dim| weights.len() != dim as usize)
            {
                return Err(bad(
                    "quantized logreg weights do not span the one-hot offsets",
                ));
            }
            QuantPayload::LogReg(QuantLogReg {
                offsets,
                weights,
                intercept,
            })
        }
        t => return Err(bad(format!("quantized payload tag {t}"))),
    };
    Ok(QuantModel { encoding, payload })
}

fn encode_calibrator(w: &mut BinWriter, c: &Calibrator) {
    match c {
        Calibrator::Platt { a, b } => {
            w.put_u8(0);
            w.put_f64(*a);
            w.put_f64(*b);
        }
        Calibrator::Isotonic { xs, ps } => {
            w.put_u8(1);
            w.put_usize(xs.len());
            for &x in xs {
                w.put_f64(x);
            }
            for &p in ps {
                w.put_f64(p);
            }
        }
    }
}

fn decode_calibrator(r: &mut BinReader) -> Result<Calibrator> {
    let c = match r.read_u8()? {
        0 => Calibrator::Platt {
            a: r.read_f64()?,
            b: r.read_f64()?,
        },
        1 => {
            let n = r.read_usize()?;
            if n > r.remaining() / 16 {
                return Err(bad(format!("isotonic calibrator of {n} overruns section")));
            }
            let xs = (0..n).map(|_| r.read_f64()).collect::<Result<_>>()?;
            let ps = (0..n).map(|_| r.read_f64()).collect::<Result<_>>()?;
            Calibrator::Isotonic { xs, ps }
        }
        t => return Err(bad(format!("calibrator tag {t}"))),
    };
    c.validate()?;
    Ok(c)
}

fn encode_cascade(w: &mut BinWriter, c: &CascadeModel) {
    w.put_usize(c.tiers.len());
    for tier in &c.tiers {
        encode_calibrator(w, &tier.calibrator);
        w.put_f64(tier.threshold);
        tier.model.encode_bin(w);
    }
}

fn decode_cascade(r: &mut BinReader) -> Result<CascadeModel> {
    let n = r.read_usize()?;
    if n == 0 || n > MAX_TIERS {
        return Err(bad(format!("cascade tier count {n}")));
    }
    let mut tiers = Vec::with_capacity(n);
    for _ in 0..n {
        let calibrator = decode_calibrator(r)?;
        let threshold = r.read_f64()?;
        let model = AnyClassifier::decode_bin(r)?;
        tiers.push(CascadeTier {
            model,
            calibrator,
            threshold,
        });
    }
    // `new` re-runs full validation (threshold ranges, no nesting).
    CascadeModel::new(tiers)
}

impl AnyClassifier {
    /// Whether any of this model's weight arrays currently borrow a mapped
    /// artifact file (true only after an mmap load; a heap load or a
    /// freshly trained model is fully resident).
    pub fn payload_mapped(&self) -> bool {
        match self {
            AnyClassifier::Majority(_) => false,
            // Tree nodes are structural and always copied.
            AnyClassifier::Tree(_) => false,
            AnyClassifier::Knn(m) => m.rows.is_mapped(),
            AnyClassifier::Svm(m) => m.sv_rows.is_mapped() || m.sv_coef.is_mapped(),
            AnyClassifier::Mlp(m) => m.w1.is_mapped() || m.w2.is_mapped(),
            AnyClassifier::NaiveBayes(m) => {
                m.cardinalities.is_mapped() || m.tables.iter().any(|t| t.is_mapped())
            }
            AnyClassifier::LogReg(m) => m.offsets.is_mapped() || m.weights.is_mapped(),
            AnyClassifier::Subset(s) => s.inner.payload_mapped(),
            AnyClassifier::Quantized(q) => q.is_mapped(),
            AnyClassifier::Cascade(c) => c.tiers.iter().any(|t| t.model.payload_mapped()),
        }
    }

    /// Serializes the model as the format-v3 binary payload.
    pub fn encode_bin(&self, w: &mut BinWriter) {
        match self {
            AnyClassifier::Majority(m) => {
                w.put_u8(0);
                w.put_bool(m.positive);
            }
            AnyClassifier::Tree(m) => {
                w.put_u8(1);
                m.encode_bin(w);
            }
            AnyClassifier::Knn(m) => {
                w.put_u8(2);
                encode_knn(w, m);
            }
            AnyClassifier::Svm(m) => {
                w.put_u8(3);
                encode_svm(w, m);
            }
            AnyClassifier::Mlp(m) => {
                w.put_u8(4);
                encode_mlp(w, m);
            }
            AnyClassifier::NaiveBayes(m) => {
                w.put_u8(5);
                encode_nb(w, m);
            }
            AnyClassifier::LogReg(m) => {
                w.put_u8(6);
                encode_logreg(w, m);
            }
            AnyClassifier::Subset(s) => {
                w.put_u8(7);
                w.put_usize(s.keep.len());
                for &j in &s.keep {
                    w.put_usize(j);
                }
                s.inner.encode_bin(w);
            }
            AnyClassifier::Quantized(q) => {
                w.put_u8(8);
                encode_quant(w, q);
            }
            AnyClassifier::Cascade(c) => {
                w.put_u8(9);
                encode_cascade(w, c);
            }
        }
    }

    /// Deserializes a model written by [`AnyClassifier::encode_bin`]. Over
    /// a mapped source, weight arrays borrow the mapping zero-copy.
    pub fn decode_bin(r: &mut BinReader) -> Result<AnyClassifier> {
        Ok(match r.read_u8()? {
            0 => AnyClassifier::Majority(MajorityClass {
                positive: r.read_bool()?,
            }),
            1 => AnyClassifier::Tree(DecisionTree::decode_bin(r)?),
            2 => AnyClassifier::Knn(decode_knn(r)?),
            3 => AnyClassifier::Svm(decode_svm(r)?),
            4 => AnyClassifier::Mlp(decode_mlp(r)?),
            5 => AnyClassifier::NaiveBayes(decode_nb(r)?),
            6 => AnyClassifier::LogReg(decode_logreg(r)?),
            7 => {
                let n = r.read_usize()?;
                if n > r.remaining() / 8 {
                    return Err(bad(format!("subset keep list of {n} overruns section")));
                }
                let keep = (0..n).map(|_| r.read_usize()).collect::<Result<_>>()?;
                AnyClassifier::Subset(SubsetModel {
                    keep,
                    inner: Box::new(AnyClassifier::decode_bin(r)?),
                })
            }
            8 => AnyClassifier::Quantized(decode_quant(r)?),
            9 => AnyClassifier::Cascade(decode_cascade(r)?),
            t => return Err(bad(format!("unknown model family tag {t}"))),
        })
    }
}

/// Every model family (including quantized variants and a cascade) fit on
/// one dataset — shared by the codec roundtrip/truncation tests here and
/// the sign-consistency sweep in `crate::cascade`.
#[cfg(test)]
pub(crate) fn tests_all_families(data: &crate::dataset::CatDataset) -> Vec<AnyClassifier> {
    use crate::ann::AnnParams;
    use crate::logreg::LogRegParams;
    use crate::svm::SvmParams;
    use crate::tree::{SplitCriterion, TreeParams};
    let sub = data.select_features(&[1]).unwrap();
    let mut models: Vec<AnyClassifier> = vec![
        MajorityClass::fit(data).into(),
        DecisionTree::fit(
            data,
            TreeParams::new(SplitCriterion::Gini)
                .with_minsplit(2)
                .with_cp(0.0),
        )
        .unwrap()
        .into(),
        OneNearestNeighbor::fit(data).unwrap().into(),
        SvmModel::fit(data, SvmParams::new(KernelKind::Rbf { gamma: 0.5 }, 5.0))
            .unwrap()
            .into(),
        Mlp::fit(
            data,
            AnnParams {
                epochs: 2,
                ..AnnParams::small(1e-4, 0.01)
            },
        )
        .unwrap()
        .into(),
        NaiveBayes::fit(data).unwrap().into(),
        LogRegL1::fit_single(
            data,
            1e-3,
            LogRegParams {
                max_iter: 25,
                ..Default::default()
            },
        )
        .unwrap()
        .into(),
        SubsetModel {
            keep: vec![1],
            inner: Box::new(NaiveBayes::fit(&sub).unwrap().into()),
        }
        .into(),
    ];
    // Quantized variants of every family that supports them, in both
    // encodings — the roundtrip/truncation tests then cover family
    // tag 8 with each encoding × payload combination.
    let quantized: Vec<AnyClassifier> = models
        .iter()
        .flat_map(|m| {
            [QuantEncoding::I8, QuantEncoding::F16]
                .into_iter()
                .filter_map(|enc| m.quantize(enc).ok())
        })
        .collect();
    assert_eq!(quantized.len(), 6, "mlp/svm/logreg × i8/f16");
    models.extend(quantized);
    // A two-tier cascade (tree → MLP) covering family tag 9 with both
    // calibrator codecs.
    let cascade = CascadeModel::new(vec![
        CascadeTier {
            model: models[1].clone(),
            calibrator: Calibrator::Isotonic {
                xs: vec![-1.0, 0.0, 2.0],
                ps: vec![0.2, 0.5, 0.9],
            },
            threshold: 0.8,
        },
        CascadeTier {
            model: models[4].clone(),
            calibrator: Calibrator::Platt { a: 1.5, b: -0.25 },
            threshold: 1.0,
        },
    ])
    .unwrap();
    models.push(cascade.into());
    models
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{CatDataset, FeatureMeta, Provenance};
    use crate::model::Classifier;

    fn ds(seed: u64) -> CatDataset {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let d = 3usize;
        let k = 4u32;
        let n = 40usize;
        let features: Vec<FeatureMeta> = (0..d)
            .map(|j| FeatureMeta::new(format!("f{j}"), k, Provenance::Home))
            .collect();
        let rows: Vec<u32> = (0..n * d).map(|_| rng.gen_range(0..k)).collect();
        let labels: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
        CatDataset::new(features, rows, labels).unwrap()
    }

    use super::tests_all_families as all_families;

    #[test]
    fn every_family_roundtrips_bit_identically() {
        let data = ds(17);
        for model in all_families(&data) {
            let mut w = BinWriter::new();
            model.encode_bin(&mut w);
            let mut r = BinReader::over_heap(w.finish());
            let back = AnyClassifier::decode_bin(&mut r).unwrap();
            r.expect_end().unwrap();
            assert_eq!(back, model, "family {}", model.family());
            for i in 0..data.n_rows() {
                assert_eq!(
                    back.predict_row(data.row(i)),
                    model.predict_row(data.row(i)),
                    "family {} row {i}",
                    model.family()
                );
            }
        }
    }

    #[test]
    fn truncated_payloads_error_for_every_family() {
        let data = ds(29);
        for model in all_families(&data) {
            let mut w = BinWriter::new();
            model.encode_bin(&mut w);
            let bytes = w.finish();
            // Cutting anywhere must error, never panic. Probe a spread of
            // truncation points including the empty stream.
            for cut in [0, 1, bytes.len() / 3, bytes.len() / 2, bytes.len() - 1] {
                let mut r = BinReader::over_heap(bytes[..cut].to_vec());
                let res = AnyClassifier::decode_bin(&mut r).and_then(|_| r.expect_end());
                assert!(res.is_err(), "family {} cut {cut}", model.family());
            }
        }
    }

    #[test]
    fn bad_tags_are_clean_errors() {
        let mut r = BinReader::over_heap(vec![99]);
        let err = AnyClassifier::decode_bin(&mut r).unwrap_err();
        assert!(err.to_string().contains("family tag"), "{err}");
    }

    #[test]
    fn packed_bools_roundtrip() {
        for n in [0usize, 1, 7, 8, 9, 64, 100] {
            let bits: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
            let mut w = BinWriter::new();
            encode_bools_packed(&mut w, &bits);
            let mut r = BinReader::over_heap(w.finish());
            assert_eq!(decode_bools_packed(&mut r).unwrap(), bits);
            r.expect_end().unwrap();
        }
    }
}
