//! Per-tensor weight quantization: symmetric i8 (scale) and f16.
//!
//! Both encodings are *storage* transforms — training stays in f32/f64,
//! and a quantized artifact is produced offline from a full-precision one
//! (`hamlet-serve artifact convert --quantize {i8,f16}`). The error
//! contract per tensor:
//!
//! - **i8**: symmetric, `scale = max|v| / 127`, `q = round(v / scale)`
//!   clamped to ±127. Round-to-nearest guarantees
//!   `|dequant(q) − v| ≤ scale / 2` for every in-range element; there is
//!   no zero-point, so exact zeros stay exactly zero.
//! - **f16**: IEEE binary16 round-to-nearest-even. Exact for every value
//!   whose significand fits in 11 bits and whose exponent lies in
//!   [−24, 15] — which covers the bulk of trained, L2-regularized network
//!   weights — and relative error ≤ 2⁻¹¹ otherwise.
//!
//! Proptests at the bottom pin both bounds.

use crate::binenc::pod::F16;
use crate::kernels;

/// A symmetric i8 quantization of an f32 tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedI8 {
    /// Quantized elements, `len ==` source tensor len.
    pub data: Vec<i8>,
    /// Dequantization factor: `value ≈ data[i] as f32 * scale`.
    pub scale: f32,
}

/// Quantizes an f32 tensor to symmetric i8 with a per-tensor scale.
///
/// The all-zero (or empty) tensor gets `scale = 1.0` so dequantization is
/// always well-defined. Non-finite inputs are clamped through `round`'s
/// saturation into ±127.
pub fn quantize_i8(values: &[f32]) -> QuantizedI8 {
    let max_abs = values.iter().fold(0f32, |m, v| m.max(v.abs()));
    let scale = if max_abs > 0.0 && max_abs.is_finite() {
        max_abs / 127.0
    } else {
        1.0
    };
    let data = values
        .iter()
        .map(|&v| (v / scale).round().clamp(-127.0, 127.0) as i8)
        .collect();
    QuantizedI8 { data, scale }
}

/// Quantizes an f64 tensor (SVM dual coefficients, logreg weights) the same
/// way, keeping the scale in f64.
pub fn quantize_i8_f64(values: &[f64]) -> (Vec<i8>, f64) {
    let max_abs = values.iter().fold(0f64, |m, v| m.max(v.abs()));
    let scale = if max_abs > 0.0 && max_abs.is_finite() {
        max_abs / 127.0
    } else {
        1.0
    };
    let data = values
        .iter()
        .map(|&v| (v / scale).round().clamp(-127.0, 127.0) as i8)
        .collect();
    (data, scale)
}

/// Dequantizes one i8 element.
#[inline]
pub fn dequant_i8(q: i8, scale: f32) -> f32 {
    f32::from(q) * scale
}

/// Converts an f32 tensor to f16 (round-to-nearest-even per element,
/// F16C-accelerated when the CPU has it — bit-identical to the software
/// path for every non-NaN weight).
pub fn quantize_f16(values: &[f32]) -> Vec<F16> {
    let mut out = vec![F16(0); values.len()];
    kernels::f32_to_f16_slice(values, &mut out);
    out
}

/// Converts an f64 tensor to f16 via f32 (two correctly-rounded steps; the
/// double rounding is immaterial at f16's 11-bit precision for the weight
/// magnitudes we store).
pub fn quantize_f16_f64(values: &[f64]) -> Vec<F16> {
    values.iter().map(|&v| F16::from_f32(v as f32)).collect()
}

/// Widens an f16 tensor back to f32 (lossless, F16C-accelerated when the
/// CPU has it — every tier is bit-identical).
pub fn dequantize_f16(values: &[F16]) -> Vec<f32> {
    let mut out = vec![0f32; values.len()];
    kernels::f16_to_f32_slice(values, &mut out);
    out
}

/// Quantizes a runtime f32 activation vector to i8 in place of `out`,
/// returning the per-row scale. This is the dynamic half of i8×i8
/// inference: weights carry a static per-tensor scale, activations get a
/// fresh scale per row, and the i32 dot product is rescaled by the product
/// of the two.
pub fn quantize_activations_i8(values: &[f32], out: &mut Vec<i8>) -> f32 {
    out.clear();
    let max_abs = values.iter().fold(0f32, |m, v| m.max(v.abs()));
    let scale = if max_abs > 0.0 && max_abs.is_finite() {
        max_abs / 127.0
    } else {
        1.0
    };
    out.extend(
        values
            .iter()
            .map(|&v| (v / scale).round().clamp(-127.0, 127.0) as i8),
    );
    scale
}

/// Whether an f32 survives the f16 round-trip exactly.
pub fn f16_is_exact(v: f32) -> bool {
    let bits = kernels::f32_to_f16_bits(v);
    kernels::f16_bits_to_f32(bits) == v || v.is_nan()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn i8_quantization_basics() {
        let q = quantize_i8(&[0.0, 1.0, -1.0, 0.5, 0.251]);
        assert_eq!(q.scale, 1.0 / 127.0);
        assert_eq!(q.data[0], 0);
        assert_eq!(q.data[1], 127);
        assert_eq!(q.data[2], -127);
        assert_eq!(q.data[3], 64); // 63.5 rounds half away from zero
                                   // Every element obeys the scale/2 bound.
        for (&orig, &qv) in [0.0f32, 1.0, -1.0, 0.5, 0.251].iter().zip(&q.data) {
            assert!((dequant_i8(qv, q.scale) - orig).abs() <= q.scale / 2.0 + f32::EPSILON);
        }
        // Degenerate tensors keep a well-defined scale.
        assert_eq!(quantize_i8(&[]).scale, 1.0);
        assert_eq!(quantize_i8(&[0.0, 0.0]).scale, 1.0);
        assert_eq!(quantize_i8(&[0.0, 0.0]).data, vec![0, 0]);
    }

    #[test]
    fn activation_quantization_reuses_the_buffer() {
        let mut buf = Vec::new();
        let s1 = quantize_activations_i8(&[2.0, -4.0, 1.0], &mut buf);
        assert_eq!(buf, vec![64, -127, 32]);
        assert!((s1 - 4.0 / 127.0).abs() < 1e-9);
        let s2 = quantize_activations_i8(&[0.0, 0.0], &mut buf);
        assert_eq!(buf, vec![0, 0]);
        assert_eq!(s2, 1.0);
    }

    #[test]
    fn f16_tensor_roundtrip() {
        let vals = [0.0f32, 1.0, -0.5, 0.25, 65504.0, -2.0];
        let h = quantize_f16(&vals);
        assert_eq!(dequantize_f16(&h), vals.to_vec());
        for &v in &vals {
            assert!(f16_is_exact(v), "{v}");
        }
        assert!(!f16_is_exact(0.1)); // 0.1 needs more than 11 mantissa bits
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Satellite bound: i8 round-trip error ≤ per-tensor scale/2.
        #[test]
        fn i8_roundtrip_error_is_bounded_by_half_scale(
            raw in proptest::collection::vec(-1000.0f64..1000.0, 1..64),
        ) {
            let vals: Vec<f32> = raw.iter().map(|&v| v as f32).collect();
            let q = quantize_i8(&vals);
            prop_assert!(q.scale > 0.0);
            for (&orig, &qv) in vals.iter().zip(&q.data) {
                let err = (dequant_i8(qv, q.scale) - orig).abs();
                // A hair of slack for the f32 divide/multiply rounding.
                prop_assert!(
                    err <= q.scale / 2.0 * (1.0 + 1e-5),
                    "err {} vs scale/2 {}", err, q.scale / 2.0
                );
            }
        }

        /// Satellite bound: f16 is exact for 11-bit-significand values
        /// m · 2^(e−10) across the full binary16 exponent range (subnormals
        /// and 65504 included).
        #[test]
        fn f16_is_exact_for_11bit_mantissa_values(
            m in 0u32..2048,
            e in -14i32..=15,
            neg in 0i32..2,
        ) {
            let sign = if neg == 1 { -1.0f32 } else { 1.0 };
            let v = (m as f32) * ((e - 10) as f32).exp2() * sign;
            let bits = kernels::f32_to_f16_bits(v);
            prop_assert_eq!(
                kernels::f16_bits_to_f32(bits), v,
                "m={} e={} v={}", m, e, v
            );
        }

        /// f16 relative error bound for arbitrary in-range values: ≤ 2⁻¹¹.
        #[test]
        fn f16_relative_error_is_bounded(raw in -60000.0f64..60000.0) {
            let v = raw as f32;
            let back = kernels::f16_bits_to_f32(kernels::f32_to_f16_bits(v));
            if v == 0.0 {
                prop_assert_eq!(back, 0.0);
            } else if v.abs() >= 6.2e-5 {
                // Normal range: relative bound.
                prop_assert!(((back - v) / v).abs() <= 2f32.powi(-11));
            } else {
                // Subnormal range: absolute bound of half an ulp (2⁻²⁵).
                prop_assert!((back - v).abs() <= 2f32.powi(-25));
            }
        }
    }
}
