//! Compact binary encoding for model payloads (artifact format v3).
//!
//! JSON inflates dense f32/f64 weight arrays several-fold (a serialized f32
//! widens to its shortest-roundtrip f64 text, ~18 bytes against 4 on disk)
//! and makes warm-load parse-bounded. This module is the replacement: a
//! little-endian byte stream with *aligned raw pod sections* for numeric
//! payloads, written by [`BinWriter`] and read back by [`BinReader`].
//!
//! The reader is storage-polymorphic ([`BytesSource`]): over heap bytes it
//! copies arrays out; over a memory-mapped file it hands back
//! [`PodVec`]s that **borrow the mapping zero-copy** — model weights are
//! then paged in lazily by the kernel on first prediction, and the load
//! step itself touches only headers.
//!
//! ## Stream grammar
//!
//! Scalars are unaligned little-endian (`u8`/`u16`/`u32`/`u64`/`f32`/
//! `f64`); strings are `u32` length + UTF-8 bytes; small integer lists are
//! `u32` length + packed `u32`s (always copied). Pod sections are framed as
//! `tag: u8, len: u64, pad to 8-byte alignment, len × T raw bytes` — the
//! pad is recomputed by the reader from its own position, and the
//! *absolute* file offset stays 8-aligned because every v3 container
//! section starts 8-aligned.

pub mod codec;
pub mod pod;
pub mod quantize;

pub use pod::{MapAdvice, MmapFile, Pod, PodVec, F16};

use std::sync::Arc;

use crate::error::{MlError, Result};

/// Alignment guaranteed for pod section data, both relative to the stream
/// start and (because containers place sections on 8-byte boundaries)
/// absolute in the file.
pub const POD_ALIGN: usize = 8;

fn corrupt(what: impl std::fmt::Display) -> MlError {
    MlError::Invalid(format!("corrupt binary payload: {what}"))
}

/// Append-only little-endian stream writer.
#[derive(Debug, Default)]
pub struct BinWriter {
    buf: Vec<u8>,
}

impl BinWriter {
    /// An empty stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the stream.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a bool as one byte (0/1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Writes a `u16`, little-endian.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Writes an `f32`, little-endian.
    pub fn put_f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f64`, little-endian.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Writes a small `u32` list inline (`u32` count + packed values).
    /// Always copied on read; use [`BinWriter::put_pod_slice`] for arrays
    /// worth borrowing from the map.
    pub fn put_u32s_inline(&mut self, vals: &[u32]) {
        self.put_u32(vals.len() as u32);
        for &v in vals {
            self.put_u32(v);
        }
    }

    /// Pads with zero bytes until the stream length is a multiple of
    /// [`POD_ALIGN`].
    pub fn align(&mut self) {
        while !self.buf.len().is_multiple_of(POD_ALIGN) {
            self.buf.push(0);
        }
    }

    /// Writes an aligned raw pod section: type tag, element count, padding
    /// to [`POD_ALIGN`], then the elements as raw little-endian bytes.
    pub fn put_pod_slice<T: Pod>(&mut self, vals: &[T]) {
        self.put_u8(T::TAG);
        self.put_u64(vals.len() as u64);
        self.align();
        if pod::NATIVE_IS_LE {
            // Safety: T is Pod (no padding, any bit pattern valid), so its
            // memory representation on an LE target *is* the wire format.
            let bytes = unsafe {
                std::slice::from_raw_parts(vals.as_ptr() as *const u8, std::mem::size_of_val(vals))
            };
            self.buf.extend_from_slice(bytes);
        } else {
            for &v in vals {
                let le = v.to_le();
                // Safety: as above, one element at a time.
                let bytes =
                    unsafe { std::slice::from_raw_parts(&le as *const T as *const u8, T::WIDTH) };
                self.buf.extend_from_slice(bytes);
            }
        }
    }
}

/// Where a reader's bytes live: an owned heap buffer or a shared read-only
/// file mapping. Cloning shares the underlying storage.
#[derive(Debug, Clone)]
pub enum BytesSource {
    /// Heap-owned file contents (the parse-and-copy load path).
    Heap(Arc<Vec<u8>>),
    /// A mapped file (the zero-copy load path).
    Mapped(Arc<MmapFile>),
}

impl BytesSource {
    /// The full underlying byte range.
    pub fn bytes(&self) -> &[u8] {
        match self {
            BytesSource::Heap(v) => v,
            BytesSource::Mapped(m) => m.bytes(),
        }
    }
}

/// Little-endian stream reader over a window of a [`BytesSource`].
#[derive(Debug)]
pub struct BinReader {
    src: BytesSource,
    /// Absolute window bounds into `src`.
    start: usize,
    end: usize,
    /// Absolute cursor, `start <= pos <= end`.
    pos: usize,
}

impl BinReader {
    /// Reader over `len` bytes starting at absolute offset `start`.
    ///
    /// For pod sections to be borrowable zero-copy, `start` must be
    /// [`POD_ALIGN`]-aligned (v3 containers guarantee this); a misaligned
    /// window still reads correctly but copies.
    pub fn over(src: BytesSource, start: usize, len: usize) -> Result<BinReader> {
        let end = start
            .checked_add(len)
            .filter(|&e| e <= src.bytes().len())
            .ok_or_else(|| corrupt("section out of file bounds"))?;
        Ok(BinReader {
            src,
            start,
            end,
            pos: start,
        })
    }

    /// Reader over an entire heap buffer.
    pub fn over_heap(bytes: Vec<u8>) -> BinReader {
        let len = bytes.len();
        BinReader::over(BytesSource::Heap(Arc::new(bytes)), 0, len)
            .expect("whole-buffer window is always in bounds")
    }

    /// Bytes left in the window.
    pub fn remaining(&self) -> usize {
        self.end - self.pos
    }

    /// Errors unless the window was consumed exactly.
    pub fn expect_end(&self) -> Result<()> {
        if self.pos == self.end {
            Ok(())
        } else {
            Err(corrupt(format!("{} trailing byte(s)", self.remaining())))
        }
    }

    fn take(&mut self, n: usize) -> Result<usize> {
        if self.remaining() < n {
            return Err(corrupt(format!(
                "needed {n} byte(s), only {} left",
                self.remaining()
            )));
        }
        let at = self.pos;
        self.pos += n;
        Ok(at)
    }

    fn take_array<const N: usize>(&mut self) -> Result<[u8; N]> {
        let at = self.take(N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(&self.src.bytes()[at..at + N]);
        Ok(out)
    }

    /// Reads one byte.
    pub fn read_u8(&mut self) -> Result<u8> {
        Ok(self.take_array::<1>()?[0])
    }

    /// Reads a bool (rejecting anything but 0/1).
    pub fn read_bool(&mut self) -> Result<bool> {
        match self.read_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(corrupt(format!("bool byte {other}"))),
        }
    }

    /// Reads a little-endian `u16`.
    pub fn read_u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take_array()?))
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take_array()?))
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take_array()?))
    }

    /// Reads a `u64` written by [`BinWriter::put_usize`].
    pub fn read_usize(&mut self) -> Result<usize> {
        usize::try_from(self.read_u64()?).map_err(|_| corrupt("usize overflow"))
    }

    /// Reads a little-endian `f32`.
    pub fn read_f32(&mut self) -> Result<f32> {
        Ok(f32::from_le_bytes(self.take_array()?))
    }

    /// Reads a little-endian `f64`.
    pub fn read_f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(self.take_array()?))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn read_str(&mut self) -> Result<String> {
        let len = self.read_u32()? as usize;
        let at = self.take(len)?;
        std::str::from_utf8(&self.src.bytes()[at..at + len])
            .map(str::to_string)
            .map_err(|_| corrupt("non-UTF-8 string"))
    }

    /// Reads an inline `u32` list written by [`BinWriter::put_u32s_inline`].
    pub fn read_u32s_inline(&mut self) -> Result<Vec<u32>> {
        let len = self.read_u32()? as usize;
        if len > self.remaining() / 4 {
            return Err(corrupt(format!(
                "inline u32 list of {len} overruns section"
            )));
        }
        (0..len).map(|_| self.read_u32()).collect()
    }

    /// Skips to the next [`POD_ALIGN`] boundary (relative to the window
    /// start, mirroring [`BinWriter::align`]).
    fn align(&mut self) -> Result<()> {
        let rel = self.pos - self.start;
        let pad = (POD_ALIGN - rel % POD_ALIGN) % POD_ALIGN;
        self.take(pad)?;
        Ok(())
    }

    /// Reads a pod section written by [`BinWriter::put_pod_slice`].
    ///
    /// Over a mapped source on a little-endian target this **borrows** the
    /// mapping (no copy, no page touch until first use); over heap bytes it
    /// copies into an owned vector.
    pub fn read_pod_vec<T: Pod>(&mut self) -> Result<PodVec<T>> {
        let tag = self.read_u8()?;
        if tag != T::TAG {
            return Err(corrupt(format!(
                "pod section tag {tag} does not match element type tag {}",
                T::TAG
            )));
        }
        let len = usize::try_from(self.read_u64()?).map_err(|_| corrupt("pod length overflow"))?;
        self.align()?;
        let byte_len = len
            .checked_mul(T::WIDTH)
            .ok_or_else(|| corrupt("pod length overflow"))?;
        let at = self.take(byte_len)?;
        if let BytesSource::Mapped(map) = &self.src {
            if let Some(v) = PodVec::from_mapped(Arc::clone(map), at, len) {
                return Ok(v);
            }
            // Fall through (misaligned window or big-endian target): copy.
        }
        let mut out: Vec<T> = Vec::with_capacity(len);
        // Safety: the source range is `byte_len` bytes long (validated by
        // `take`), the destination has `len` capacity, and byte-wise copy
        // into a Pod type is valid for any bit pattern.
        unsafe {
            std::ptr::copy_nonoverlapping(
                self.src.bytes().as_ptr().add(at),
                out.as_mut_ptr() as *mut u8,
                byte_len,
            );
            out.set_len(len);
        }
        if !pod::NATIVE_IS_LE {
            for v in &mut out {
                *v = T::from_le(*v);
            }
        }
        Ok(out.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_and_string_roundtrip() {
        let mut w = BinWriter::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_u16(65500);
        w.put_u32(123456);
        w.put_u64(u64::MAX - 3);
        w.put_f32(-0.25);
        w.put_f64(std::f64::consts::PI);
        w.put_str("héllo");
        w.put_u32s_inline(&[3, 1, 4, 1, 5]);
        let mut r = BinReader::over_heap(w.finish());
        assert_eq!(r.read_u8().unwrap(), 7);
        assert!(r.read_bool().unwrap());
        assert_eq!(r.read_u16().unwrap(), 65500);
        assert_eq!(r.read_u32().unwrap(), 123456);
        assert_eq!(r.read_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.read_f32().unwrap(), -0.25);
        assert_eq!(r.read_f64().unwrap(), std::f64::consts::PI);
        assert_eq!(r.read_str().unwrap(), "héllo");
        assert_eq!(r.read_u32s_inline().unwrap(), vec![3, 1, 4, 1, 5]);
        r.expect_end().unwrap();
    }

    #[test]
    fn pod_sections_roundtrip_and_align() {
        let mut w = BinWriter::new();
        w.put_u8(1); // deliberately misalign
        let floats: Vec<f32> = (0..37).map(|i| i as f32 * 0.5).collect();
        let doubles: Vec<f64> = (0..5).map(|i| -(i as f64)).collect();
        w.put_pod_slice(&floats);
        w.put_u8(9);
        w.put_pod_slice(&doubles);
        w.put_pod_slice::<u32>(&[]);
        let mut r = BinReader::over_heap(w.finish());
        assert_eq!(r.read_u8().unwrap(), 1);
        assert_eq!(r.read_pod_vec::<f32>().unwrap().as_slice(), &floats[..]);
        assert_eq!(r.read_u8().unwrap(), 9);
        assert_eq!(r.read_pod_vec::<f64>().unwrap().as_slice(), &doubles[..]);
        assert!(r.read_pod_vec::<u32>().unwrap().is_empty());
        r.expect_end().unwrap();
    }

    #[test]
    fn wrong_tag_truncation_and_trailing_fail_cleanly() {
        let mut w = BinWriter::new();
        w.put_pod_slice::<f32>(&[1.0, 2.0]);
        let bytes = w.finish();
        // Wrong element type.
        let mut r = BinReader::over_heap(bytes.clone());
        assert!(r.read_pod_vec::<f64>().is_err());
        // Truncated payload.
        let mut r = BinReader::over_heap(bytes[..bytes.len() - 3].to_vec());
        assert!(r.read_pod_vec::<f32>().is_err());
        // Trailing garbage detected by expect_end.
        let mut extended = bytes.clone();
        extended.push(0xFF);
        let mut r = BinReader::over_heap(extended);
        r.read_pod_vec::<f32>().unwrap();
        assert!(r.expect_end().is_err());
        // Window larger than the file is rejected up front.
        assert!(BinReader::over(BytesSource::Heap(Arc::new(bytes)), 8, 4096).is_err());
    }

    #[test]
    fn mapped_reader_borrows_zero_copy() {
        let mut w = BinWriter::new();
        let vals: Vec<f64> = (0..100).map(|i| i as f64 * 1.5).collect();
        w.put_str("header");
        w.put_pod_slice(&vals);
        let dir = std::env::temp_dir().join(format!("hamlet-binenc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stream.bin");
        std::fs::write(&path, w.finish()).unwrap();

        let map = MmapFile::open(&path).unwrap();
        let len = map.len();
        let mut r = BinReader::over(BytesSource::Mapped(map), 0, len).unwrap();
        assert_eq!(r.read_str().unwrap(), "header");
        let v = r.read_pod_vec::<f64>().unwrap();
        assert_eq!(v.as_slice(), &vals[..]);
        assert!(v.is_mapped(), "mapped source must borrow, not copy");
        r.expect_end().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
