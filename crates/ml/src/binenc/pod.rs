//! Plain-old-data storage that can be owned on the heap or borrowed from a
//! memory-mapped artifact file.
//!
//! The format-v3 artifact container stores numeric model payloads (ANN
//! weights, SVM support vectors, …) as aligned raw little-endian sections.
//! [`PodVec`] is the in-memory side of that contract: model structs hold
//! their weight arrays behind it, and the mmap load path hands out `PodVec`s
//! that *borrow* the mapped file instead of copying — so warm-loading a
//! large model is page-fault-bounded, not parse-bounded, and N versions of
//! a model mapped from disk share physical pages with the page cache.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::path::Path;
use std::sync::Arc;

/// Marker for fixed-width numeric types that may be reinterpreted from raw
/// little-endian bytes.
///
/// # Safety
///
/// Implementors must be `Copy`, have no padding, no invalid bit patterns,
/// and an alignment that divides [`Pod::WIDTH`]. All implementations live in
/// this module; the trait is sealed by convention (do not implement it
/// outside `binenc`).
pub unsafe trait Pod: Copy + PartialEq + fmt::Debug + 'static {
    /// Size of one element in bytes.
    const WIDTH: usize;
    /// One-byte type tag written ahead of every pod section, so a reader
    /// decoding with the wrong element type fails loudly instead of
    /// reinterpreting garbage.
    const TAG: u8;
    /// Byte-swaps to/from little-endian (identity on LE targets).
    fn to_le(self) -> Self;
    /// Inverse of [`Pod::to_le`] (same operation; both directions swap).
    fn from_le(v: Self) -> Self;
}

macro_rules! impl_pod_int {
    ($($t:ty => $tag:expr),* $(,)?) => {$(
        unsafe impl Pod for $t {
            const WIDTH: usize = std::mem::size_of::<$t>();
            const TAG: u8 = $tag;
            #[inline]
            fn to_le(self) -> Self {
                self.to_le()
            }
            #[inline]
            fn from_le(v: Self) -> Self {
                <$t>::from_le(v)
            }
        }
    )*};
}
impl_pod_int!(u16 => 1, u32 => 2, u64 => 3);

unsafe impl Pod for i8 {
    const WIDTH: usize = 1;
    const TAG: u8 = 6;
    #[inline]
    fn to_le(self) -> Self {
        self
    }
    #[inline]
    fn from_le(v: Self) -> Self {
        v
    }
}

/// IEEE 754 binary16 ("half") stored as its raw bit pattern.
///
/// A storage type, not an arithmetic one: quantized weight sections hold
/// `PodVec<F16>` and the inference kernels widen to f32 on the fly
/// (hardware F16C when available, software otherwise). `PartialEq`
/// compares bit patterns, which is exactly right for a storage type —
/// round-tripping through the v3 container must preserve bits, NaN
/// payloads included.
#[derive(Debug, Clone, Copy, PartialEq)]
#[repr(transparent)]
pub struct F16(pub u16);

impl F16 {
    /// Quantizes an f32 (round-to-nearest-even, overflow → ±∞).
    #[inline]
    pub fn from_f32(x: f32) -> Self {
        F16(crate::kernels::f32_to_f16_bits(x))
    }

    /// Widens back to f32 (lossless: every half value is representable).
    #[inline]
    pub fn to_f32(self) -> f32 {
        crate::kernels::f16_bits_to_f32(self.0)
    }
}

unsafe impl Pod for F16 {
    const WIDTH: usize = 2;
    const TAG: u8 = 7;
    #[inline]
    fn to_le(self) -> Self {
        F16(self.0.to_le())
    }
    #[inline]
    fn from_le(v: Self) -> Self {
        F16(u16::from_le(v.0))
    }
}

// JSON compatibility (v2 artifacts, quant sections in JSON form): an F16
// serializes as its u16 bit pattern, not its numeric value, so the text
// and binary encodings carry identical information.
impl serde::Serialize for F16 {
    fn serialize(&self) -> serde::Value {
        serde::Serialize::serialize(&self.0)
    }
}

impl serde::Deserialize for F16 {
    fn deserialize(v: &serde::Value) -> std::result::Result<Self, serde::Error> {
        u16::deserialize(v).map(F16)
    }
}

unsafe impl Pod for f32 {
    const WIDTH: usize = 4;
    const TAG: u8 = 4;
    #[inline]
    fn to_le(self) -> Self {
        f32::from_bits(self.to_bits().to_le())
    }
    #[inline]
    fn from_le(v: Self) -> Self {
        f32::from_bits(u32::from_le(v.to_bits()))
    }
}

unsafe impl Pod for f64 {
    const WIDTH: usize = 8;
    const TAG: u8 = 5;
    #[inline]
    fn to_le(self) -> Self {
        f64::from_bits(self.to_bits().to_le())
    }
    #[inline]
    fn from_le(v: Self) -> Self {
        f64::from_bits(u64::from_le(v.to_bits()))
    }
}

/// Whether mapped bytes can be reinterpreted in place (the on-disk format is
/// little-endian; big-endian targets must copy-and-swap).
pub(crate) const NATIVE_IS_LE: bool = cfg!(target_endian = "little");

// ---- read-only memory mapping (no external crates; offline build) ----

#[cfg(unix)]
mod sys {
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 0x1;
    pub const MAP_PRIVATE: c_int = 0x2;
    pub const MADV_WILLNEED: c_int = 3;
    pub const MADV_DONTNEED: c_int = 4;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            length: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, length: usize) -> c_int;
        pub fn madvise(addr: *mut c_void, length: usize, advice: c_int) -> c_int;
    }
}

/// Paging advice a mapped artifact can hand the kernel (see
/// [`MmapFile::advise`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapAdvice {
    /// Pages will be needed soon: prefetch asynchronously. Issued when a
    /// model version is promoted to serve traffic.
    WillNeed,
    /// Pages are not expected to be needed: the kernel may drop them (a
    /// read-only file-backed mapping simply refaults from disk if touched
    /// again). Issued when a version is demoted back to a lazy slot.
    DontNeed,
}

/// A whole file mapped read-only into the address space.
///
/// Shared via `Arc` between every [`PodVec`] borrowed out of it, so the
/// mapping lives exactly as long as the last slice that references it.
pub struct MmapFile {
    ptr: *const u8,
    len: usize,
}

// Safety: the mapping is read-only (PROT_READ, MAP_PRIVATE) and never
// mutated after construction; concurrent reads from any thread are fine.
unsafe impl Send for MmapFile {}
unsafe impl Sync for MmapFile {}

impl MmapFile {
    /// Maps `path` read-only. Fails on empty files (zero-length mappings are
    /// invalid) and on non-unix targets.
    pub fn open(path: &Path) -> std::io::Result<Arc<MmapFile>> {
        #[cfg(unix)]
        {
            use std::os::unix::io::AsRawFd;
            let file = std::fs::File::open(path)?;
            let len = file.metadata()?.len();
            if len == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "cannot map an empty file",
                ));
            }
            let len = usize::try_from(len).map_err(|_| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "file too large to map")
            })?;
            let ptr = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    sys::PROT_READ,
                    sys::MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(std::io::Error::last_os_error());
            }
            // The fd may be closed once the mapping exists; the mapping
            // keeps the pages alive.
            Ok(Arc::new(MmapFile {
                ptr: ptr as *const u8,
                len,
            }))
        }
        #[cfg(not(unix))]
        {
            let _ = path;
            Err(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "mmap loading is only supported on unix targets",
            ))
        }
    }

    /// The mapped bytes.
    pub fn bytes(&self) -> &[u8] {
        // Safety: ptr/len describe a live PROT_READ mapping owned by self.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// Length of the mapping in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mapping is empty (never true: open rejects empty files).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Hands the kernel paging advice for the whole mapping (`madvise`).
    /// Purely a hint: failure (or a non-unix target) is reported as `false`
    /// and never affects correctness — the pages refault from the backing
    /// file on demand either way.
    pub fn advise(&self, advice: MapAdvice) -> bool {
        #[cfg(unix)]
        {
            let flag = match advice {
                MapAdvice::WillNeed => sys::MADV_WILLNEED,
                MapAdvice::DontNeed => sys::MADV_DONTNEED,
            };
            // Safety: ptr/len describe a live mapping owned by self; both
            // advice values are valid for read-only file-backed mappings.
            unsafe { sys::madvise(self.ptr as *mut std::os::raw::c_void, self.len, flag) == 0 }
        }
        #[cfg(not(unix))]
        {
            let _ = advice;
            false
        }
    }
}

impl Drop for MmapFile {
    fn drop(&mut self) {
        #[cfg(unix)]
        // Safety: ptr/len came from a successful mmap and are unmapped once.
        unsafe {
            sys::munmap(self.ptr as *mut std::os::raw::c_void, self.len);
        }
    }
}

impl fmt::Debug for MmapFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MmapFile").field("len", &self.len).finish()
    }
}

enum Storage<T: Pod> {
    Owned(Vec<T>),
    /// `offset`/`len` are in *elements of T* relative to the mapping base;
    /// construction validated bounds and alignment.
    Mapped {
        map: Arc<MmapFile>,
        byte_offset: usize,
        len: usize,
    },
}

/// A numeric array that is either heap-owned or a zero-copy view into a
/// memory-mapped artifact.
///
/// Behaves like `Vec<T>` for every read path (`Deref<Target = [T]>`);
/// mutable access (`DerefMut`) transparently converts a mapped view into an
/// owned copy first, so training code is oblivious to the storage mode.
/// Cloning a mapped vector clones an `Arc`, not the data.
pub struct PodVec<T: Pod> {
    storage: Storage<T>,
}

impl<T: Pod> PodVec<T> {
    /// An owned, empty vector.
    pub fn new() -> Self {
        Vec::new().into()
    }

    /// Zero-copy view of `len` elements at `byte_offset` into the mapping.
    ///
    /// Returns `None` (caller falls back to copying) when the range is out
    /// of bounds, the offset is misaligned for `T`, or the target is
    /// big-endian (mapped bytes are little-endian and cannot be
    /// reinterpreted in place).
    pub fn from_mapped(map: Arc<MmapFile>, byte_offset: usize, len: usize) -> Option<Self> {
        let byte_len = len.checked_mul(T::WIDTH)?;
        let end = byte_offset.checked_add(byte_len)?;
        if !NATIVE_IS_LE || end > map.len() {
            return None;
        }
        let addr = map.bytes().as_ptr() as usize + byte_offset;
        if !addr.is_multiple_of(std::mem::align_of::<T>()) {
            return None;
        }
        Some(PodVec {
            storage: Storage::Mapped {
                map,
                byte_offset,
                len,
            },
        })
    }

    /// Read-only view of the elements.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        match &self.storage {
            Storage::Owned(v) => v,
            Storage::Mapped {
                map,
                byte_offset,
                len,
            } => {
                // Safety: bounds and alignment were validated in
                // `from_mapped`; the mapping is immutable and kept alive by
                // the Arc; T is Pod so any bit pattern is valid.
                unsafe {
                    std::slice::from_raw_parts(
                        map.bytes().as_ptr().add(*byte_offset) as *const T,
                        *len,
                    )
                }
            }
        }
    }

    /// Whether this vector borrows a mapped file (true only on the v3 mmap
    /// load path).
    pub fn is_mapped(&self) -> bool {
        matches!(self.storage, Storage::Mapped { .. })
    }

    /// Mutable access, converting a mapped view into an owned copy first.
    pub fn to_mut(&mut self) -> &mut Vec<T> {
        if let Storage::Mapped { .. } = self.storage {
            self.storage = Storage::Owned(self.as_slice().to_vec());
        }
        match &mut self.storage {
            Storage::Owned(v) => v,
            Storage::Mapped { .. } => unreachable!("just converted to owned"),
        }
    }
}

impl<T: Pod> From<Vec<T>> for PodVec<T> {
    fn from(v: Vec<T>) -> Self {
        PodVec {
            storage: Storage::Owned(v),
        }
    }
}

impl<T: Pod> FromIterator<T> for PodVec<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        Vec::from_iter(iter).into()
    }
}

impl<'a, T: Pod> IntoIterator for &'a PodVec<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl<T: Pod> Deref for PodVec<T> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Pod> DerefMut for PodVec<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut [T] {
        self.to_mut()
    }
}

impl<T: Pod> Clone for PodVec<T> {
    fn clone(&self) -> Self {
        match &self.storage {
            Storage::Owned(v) => v.clone().into(),
            Storage::Mapped {
                map,
                byte_offset,
                len,
            } => PodVec {
                storage: Storage::Mapped {
                    map: Arc::clone(map),
                    byte_offset: *byte_offset,
                    len: *len,
                },
            },
        }
    }
}

impl<T: Pod> Default for PodVec<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Pod> PartialEq for PodVec<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Pod> fmt::Debug for PodVec<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_slice(), f)
    }
}

// JSON (format v1/v2) compatibility: a PodVec serializes exactly like the
// `Vec<T>` it replaced, so v2 artifacts written by this build are
// byte-compatible with older readers and vice versa.
impl<T: Pod + serde::Serialize> serde::Serialize for PodVec<T> {
    fn serialize(&self) -> serde::Value {
        serde::Serialize::serialize(self.as_slice())
    }
}

impl<T: Pod + serde::Deserialize> serde::Deserialize for PodVec<T> {
    fn deserialize(v: &serde::Value) -> std::result::Result<Self, serde::Error> {
        Vec::<T>::deserialize(v).map(PodVec::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn owned_roundtrip_and_mutation() {
        let mut v: PodVec<f32> = vec![1.0f32, 2.0, 3.0].into();
        assert_eq!(v.len(), 3);
        assert!(!v.is_mapped());
        v[1] = 9.0;
        assert_eq!(v.as_slice(), &[1.0, 9.0, 3.0]);
        let w = v.clone();
        assert_eq!(w, v);
    }

    #[test]
    fn mapped_view_borrows_and_detaches_on_write() {
        let dir = std::env::temp_dir().join(format!("hamlet-pod-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mapped.bin");
        let vals: Vec<u32> = (0..64).collect();
        let mut f = std::fs::File::create(&path).unwrap();
        for v in &vals {
            f.write_all(&v.to_le_bytes()).unwrap();
        }
        f.flush().unwrap();
        drop(f);

        let map = MmapFile::open(&path).unwrap();
        let mut pv = PodVec::<u32>::from_mapped(Arc::clone(&map), 0, 64).unwrap();
        assert!(pv.is_mapped());
        assert_eq!(pv.as_slice(), &vals[..]);
        // Cloning a mapped vec is an Arc clone, still mapped.
        let clone = pv.clone();
        assert!(clone.is_mapped());
        // Writing detaches into an owned copy without touching the clone.
        pv[0] = 999;
        assert!(!pv.is_mapped());
        assert_eq!(pv[0], 999);
        assert_eq!(clone[0], 0);

        // Out-of-bounds and misaligned views are rejected.
        assert!(PodVec::<u32>::from_mapped(Arc::clone(&map), 0, 65).is_none());
        assert!(PodVec::<u32>::from_mapped(Arc::clone(&map), 2, 4).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn madvise_hints_never_corrupt_the_mapping() {
        let dir = std::env::temp_dir().join(format!("hamlet-pod-adv-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("advised.bin");
        let vals: Vec<u32> = (0..1024).collect();
        let mut f = std::fs::File::create(&path).unwrap();
        for v in &vals {
            f.write_all(&v.to_le_bytes()).unwrap();
        }
        drop(f);
        let map = MmapFile::open(&path).unwrap();
        let pv = PodVec::<u32>::from_mapped(Arc::clone(&map), 0, 1024).unwrap();
        assert!(map.advise(MapAdvice::WillNeed), "madvise WILLNEED");
        assert_eq!(pv.as_slice(), &vals[..]);
        // DONTNEED may drop the pages; reads refault from the file and see
        // the same bytes.
        assert!(map.advise(MapAdvice::DontNeed), "madvise DONTNEED");
        assert_eq!(pv.as_slice(), &vals[..]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mmap_rejects_empty_and_missing_files() {
        let dir = std::env::temp_dir().join(format!("hamlet-pod-e-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let empty = dir.join("empty.bin");
        std::fs::write(&empty, b"").unwrap();
        assert!(MmapFile::open(&empty).is_err());
        assert!(MmapFile::open(&dir.join("missing.bin")).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serde_matches_vec() {
        use serde::{Deserialize, Serialize};
        let v: PodVec<f64> = vec![0.5f64, -1.25].into();
        let json = serde_json::to_string(&v).unwrap();
        assert_eq!(json, serde_json::to_string(&vec![0.5f64, -1.25]).unwrap());
        let back = PodVec::<f64>::deserialize(&v.serialize()).unwrap();
        assert_eq!(back, v);
    }
}
