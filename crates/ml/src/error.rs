//! Error type for the ML crate.

use std::fmt;

/// Errors raised by dataset construction and model fitting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MlError {
    /// Row/label/feature shape disagreement.
    Shape {
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// A feature code exceeds its declared cardinality.
    BadCode {
        /// Feature index.
        feature: usize,
        /// Offending code.
        code: u32,
        /// Declared cardinality.
        cardinality: u32,
    },
    /// A model was asked to do something unsupported (e.g. predict with an
    /// out-of-domain feature vector length).
    Invalid(String),
    /// Propagated relational-substrate error.
    Relation(String),
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Shape { detail } => write!(f, "shape error: {detail}"),
            Self::BadCode {
                feature,
                code,
                cardinality,
            } => write!(
                f,
                "code {code} out of range for feature {feature} (cardinality {cardinality})"
            ),
            Self::Invalid(msg) => write!(f, "invalid operation: {msg}"),
            Self::Relation(msg) => write!(f, "relation error: {msg}"),
        }
    }
}

impl std::error::Error for MlError {}

impl From<hamlet_relation::error::RelationError> for MlError {
    fn from(e: hamlet_relation::error::RelationError) -> Self {
        Self::Relation(e.to_string())
    }
}

/// Result alias for the ML crate.
pub type Result<T> = std::result::Result<T, MlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let e = MlError::BadCode {
            feature: 2,
            code: 9,
            cardinality: 4,
        };
        assert!(e.to_string().contains('9'));
        let e = MlError::Shape {
            detail: "labels".into(),
        };
        assert!(e.to_string().contains("labels"));
    }
}
