//! Validation-set grid search, parallelised with std scoped threads.
//!
//! Every model in the paper is tuned by exhaustive grid search on the 25 %
//! validation split (§3.2). The search is embarrassingly parallel across
//! grid cells; determinism is preserved by resolving ties toward the lowest
//! grid index regardless of thread scheduling.

use crate::dataset::CatDataset;
use crate::error::{MlError, Result};
use crate::model::Classifier;

/// Result of a grid search.
#[derive(Debug)]
pub struct GridSearchOutcome<P, M> {
    /// The winning model, refit-free (the model trained during the search).
    pub model: M,
    /// The winning cell's parameters.
    pub params: P,
    /// Validation accuracy of the winner.
    pub val_accuracy: f64,
    /// `(grid index, validation accuracy)` for every evaluated cell.
    pub evals: Vec<(usize, f64)>,
}

/// Exhaustively evaluates `grid`, fitting on `train` and scoring on `val`.
/// `fit` must be pure w.r.t. its inputs (it runs concurrently).
pub fn grid_search<P, M, F>(
    grid: &[P],
    train: &CatDataset,
    val: &CatDataset,
    fit: F,
) -> Result<GridSearchOutcome<P, M>>
where
    P: Clone + Sync,
    M: Classifier + Send,
    F: Fn(&P, &CatDataset) -> Result<M> + Sync,
{
    if grid.is_empty() {
        return Err(MlError::Invalid("empty hyper-parameter grid".into()));
    }
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(grid.len());

    type CellResult<M> = (usize, f64, M);
    let chunk = grid.len().div_ceil(threads);
    let results: Vec<Result<Vec<CellResult<M>>>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for (t, cells) in grid.chunks(chunk).enumerate() {
            let fit = &fit;
            handles.push(scope.spawn(move || {
                let mut out = Vec::with_capacity(cells.len());
                for (k, p) in cells.iter().enumerate() {
                    let model = fit(p, train)?;
                    let acc = model.accuracy(val);
                    out.push((t * chunk + k, acc, model));
                }
                Ok(out)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("grid worker panicked"))
            .collect()
    });

    let mut evals = Vec::with_capacity(grid.len());
    let mut best: Option<CellResult<M>> = None;
    for r in results {
        for (idx, acc, model) in r? {
            evals.push((idx, acc));
            let better = match &best {
                None => true,
                Some((bi, ba, _)) => acc > *ba || (acc == *ba && idx < *bi),
            };
            if better {
                best = Some((idx, acc, model));
            }
        }
    }
    evals.sort_unstable_by_key(|&(idx, _)| idx);
    let (idx, val_accuracy, model) = best.expect("non-empty grid produced no results");
    Ok(GridSearchOutcome {
        model,
        params: grid[idx].clone(),
        val_accuracy,
        evals,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{FeatureMeta, Provenance};
    use crate::tree::{DecisionTree, SplitCriterion, TreeParams};

    /// Asymmetric XOR (zero-gain balanced XOR would stall a greedy CART).
    fn xor() -> CatDataset {
        let meta: Vec<FeatureMeta> = (0..2)
            .map(|j| FeatureMeta::new(format!("f{j}"), 2, Provenance::Home))
            .collect();
        let cells: [(u32, u32, usize); 4] = [(0, 0, 6), (0, 1, 4), (1, 0, 5), (1, 1, 5)];
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for &(a, b, copies) in &cells {
            for _ in 0..copies {
                rows.extend_from_slice(&[a, b]);
                labels.push((a ^ b) == 1);
            }
        }
        CatDataset::new(meta, rows, labels).unwrap()
    }

    #[test]
    fn finds_the_cell_that_can_learn() {
        let ds = xor();
        // minsplit=100 cannot split 16 rows; minsplit=2 fits XOR perfectly.
        let grid = vec![
            TreeParams::new(SplitCriterion::Gini).with_minsplit(100),
            TreeParams::new(SplitCriterion::Gini)
                .with_minsplit(2)
                .with_cp(0.0),
        ];
        let out = grid_search(&grid, &ds, &ds, |p, train| DecisionTree::fit(train, *p)).unwrap();
        assert_eq!(out.params.minsplit, 2);
        assert!((out.val_accuracy - 1.0).abs() < 1e-12);
        assert_eq!(out.evals.len(), 2);
        assert!((out.model.accuracy(&ds) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ties_break_to_lowest_index() {
        let ds = xor();
        let grid = vec![
            TreeParams::new(SplitCriterion::Gini)
                .with_minsplit(2)
                .with_cp(0.0),
            TreeParams::new(SplitCriterion::InfoGain)
                .with_minsplit(2)
                .with_cp(0.0),
        ];
        let out = grid_search(&grid, &ds, &ds, |p, train| DecisionTree::fit(train, *p)).unwrap();
        assert_eq!(out.params.criterion, SplitCriterion::Gini);
    }

    #[test]
    fn empty_grid_is_an_error() {
        let ds = xor();
        let grid: Vec<TreeParams> = vec![];
        assert!(grid_search(&grid, &ds, &ds, |p, t| DecisionTree::fit(t, *p)).is_err());
    }

    #[test]
    fn evals_cover_every_cell_in_order() {
        let ds = xor();
        let grid: Vec<TreeParams> = TreeParams::paper_grid(SplitCriterion::Gini);
        let out = grid_search(&grid, &ds, &ds, |p, t| DecisionTree::fit(t, *p)).unwrap();
        assert_eq!(out.evals.len(), 20);
        for (k, &(idx, _)) in out.evals.iter().enumerate() {
            assert_eq!(k, idx);
        }
    }
}
