//! CART decision trees for categorical data with large domains.
//!
//! Mirrors the paper's `rpart` usage (§3.2): binary splits, `minsplit` and
//! `cp` hyper-parameters with rpart semantics, and three split criteria
//! (gini, information gain, gain ratio). Foreign keys with huge domains are
//! first-class: split search is O(m log m) in the number of observed levels,
//! and nodes store only the observed codes, routing unseen codes to the
//! majority child at prediction time (popular R implementations crash
//! instead — §6.2; see `hamlet-core`'s smoothing for better policies).

pub mod split;

use crate::binenc::{BinReader, BinWriter};
use crate::dataset::CatDataset;
use crate::error::{MlError, Result};
use crate::model::Classifier;
use split::{find_best_split, impurity, SplitScratch};
pub use split::{CategoricalSplit, SplitCriterion};

/// Hyper-parameters with `rpart` semantics.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TreeParams {
    /// Split criterion (paper: gini, information gain, gain ratio).
    pub criterion: SplitCriterion,
    /// Minimum rows in a node for a split to be attempted (`minsplit`).
    pub minsplit: usize,
    /// Complexity parameter: a split must improve the (root-scaled) fit by
    /// at least this factor (`cp`).
    pub cp: f64,
    /// Defensive depth cap (rpart's default is 30).
    pub max_depth: usize,
    /// Minimum rows in a child (`minbucket`); `None` = `max(minsplit/3, 1)`,
    /// rpart's default derivation.
    pub min_bucket: Option<usize>,
    /// Categorical partition style (subset vs one-vs-rest; see
    /// [`CategoricalSplit`]).
    pub categorical: CategoricalSplit,
}

impl TreeParams {
    /// rpart-like defaults with a chosen criterion.
    pub fn new(criterion: SplitCriterion) -> Self {
        Self {
            criterion,
            minsplit: 20,
            cp: 0.01,
            max_depth: 30,
            min_bucket: None,
            categorical: CategoricalSplit::SubsetPartition,
        }
    }

    /// Builder-style override of `minsplit`.
    pub fn with_minsplit(mut self, minsplit: usize) -> Self {
        self.minsplit = minsplit;
        self
    }

    /// Builder-style override of `cp`.
    pub fn with_cp(mut self, cp: f64) -> Self {
        self.cp = cp;
        self
    }

    /// Builder-style override of `max_depth`.
    pub fn with_max_depth(mut self, d: usize) -> Self {
        self.max_depth = d;
        self
    }

    /// Builder-style override of the categorical partition style.
    pub fn with_categorical(mut self, categorical: CategoricalSplit) -> Self {
        self.categorical = categorical;
        self
    }

    fn effective_min_bucket(&self) -> usize {
        self.min_bucket.unwrap_or((self.minsplit / 3).max(1))
    }

    /// The paper's §3.2 tuning grid: `minsplit ∈ {1,10,100,1000}`,
    /// `cp ∈ {1e-4, 1e-3, 0.01, 0.1, 0}`.
    pub fn paper_grid(criterion: SplitCriterion) -> Vec<TreeParams> {
        Self::paper_grid_with(criterion, CategoricalSplit::SubsetPartition)
    }

    /// The §3.2 grid with an explicit categorical partition style.
    pub fn paper_grid_with(
        criterion: SplitCriterion,
        categorical: CategoricalSplit,
    ) -> Vec<TreeParams> {
        let mut grid = Vec::with_capacity(20);
        for &minsplit in &[1usize, 10, 100, 1000] {
            for &cp in &[1e-4, 1e-3, 0.01, 0.1, 0.0] {
                grid.push(TreeParams {
                    criterion,
                    minsplit,
                    cp,
                    max_depth: 30,
                    min_bucket: None,
                    categorical,
                });
            }
        }
        grid
    }
}

#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
struct NodeSplit {
    feature: u32,
    /// Observed codes routed left (sorted).
    left_codes: Vec<u32>,
    /// Observed codes routed right (sorted).
    right_codes: Vec<u32>,
    left: u32,
    right: u32,
    /// Unseen codes at prediction time go to the larger (majority) child.
    majority_left: bool,
}

#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
struct Node {
    prediction: bool,
    n: u32,
    pos: u32,
    depth: u16,
    split: Option<NodeSplit>,
}

/// A fitted CART decision tree.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DecisionTree {
    params: TreeParams,
    nodes: Vec<Node>,
    n_features: usize,
}

impl DecisionTree {
    /// Fits a tree on a dataset.
    pub fn fit(ds: &CatDataset, params: TreeParams) -> Result<Self> {
        if ds.n_rows() == 0 {
            return Err(MlError::Shape {
                detail: "cannot fit a tree on an empty dataset".into(),
            });
        }
        let max_card = ds
            .features()
            .iter()
            .map(|f| f.cardinality as usize)
            .max()
            .unwrap_or(1);
        let mut scratch = SplitScratch::new(max_card);
        let min_bucket = params.effective_min_bucket();

        let n_total = ds.n_rows();
        let pos_total = ds.pos_count();
        let root_impurity = impurity(params.criterion, pos_total, n_total);

        let mut tree = DecisionTree {
            params,
            nodes: Vec::new(),
            n_features: ds.n_features(),
        };
        let all_rows: Vec<usize> = (0..n_total).collect();
        tree.nodes.push(Self::leaf(ds, &all_rows, 0));
        // Work stack of (node id, rows).
        let mut stack: Vec<(u32, Vec<usize>)> = vec![(0, all_rows)];

        while let Some((node_id, rows)) = stack.pop() {
            let depth = tree.nodes[node_id as usize].depth as usize;
            let n = rows.len();
            let pos = tree.nodes[node_id as usize].pos as usize;
            if n < params.minsplit.max(2)
                || depth >= params.max_depth
                || pos == 0
                || pos == n
                || root_impurity <= f64::EPSILON
            {
                continue; // stays a leaf
            }

            // Best split across all features by criterion score.
            let mut best: Option<split::CandidateSplit> = None;
            for j in 0..ds.n_features() {
                if let Some(c) = find_best_split(
                    ds,
                    &rows,
                    j,
                    params.criterion,
                    params.categorical,
                    min_bucket,
                    &mut scratch,
                ) {
                    if best.as_ref().is_none_or(|b| c.score > b.score) {
                        best = Some(c);
                    }
                }
            }
            let Some(best) = best else { continue };

            // rpart cp gate: scaled fit improvement must reach cp.
            let rel_improvement = best.raw_gain * (n as f64) / (root_impurity * n_total as f64);
            if rel_improvement < params.cp {
                continue;
            }

            // Partition rows. Membership test via binary search on the
            // (typically short) sorted left-code list.
            let mut left_rows = Vec::with_capacity(best.n_left);
            let mut right_rows = Vec::with_capacity(best.n_right);
            for &i in &rows {
                let code = ds.row(i)[best.feature];
                if best.left_codes.binary_search(&code).is_ok() {
                    left_rows.push(i);
                } else {
                    right_rows.push(i);
                }
            }
            debug_assert_eq!(left_rows.len(), best.n_left);
            debug_assert_eq!(right_rows.len(), best.n_right);

            let child_depth = (depth + 1) as u16;
            let left_id = tree.nodes.len() as u32;
            tree.nodes.push(Self::leaf(ds, &left_rows, child_depth));
            let right_id = tree.nodes.len() as u32;
            tree.nodes.push(Self::leaf(ds, &right_rows, child_depth));

            tree.nodes[node_id as usize].split = Some(NodeSplit {
                feature: best.feature as u32,
                majority_left: best.n_left >= best.n_right,
                left_codes: best.left_codes,
                right_codes: best.right_codes,
                left: left_id,
                right: right_id,
            });
            stack.push((left_id, left_rows));
            stack.push((right_id, right_rows));
        }
        Ok(tree)
    }

    fn leaf(ds: &CatDataset, rows: &[usize], depth: u16) -> Node {
        let n = rows.len();
        let pos = rows.iter().filter(|&&i| ds.label(i)).count();
        Node {
            prediction: 2 * pos >= n,
            n: n as u32,
            pos: pos as u32,
            depth,
            split: None,
        }
    }

    /// Total node count.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Leaf count.
    pub fn n_leaves(&self) -> usize {
        self.nodes.iter().filter(|n| n.split.is_none()).count()
    }

    /// Maximum node depth.
    pub fn depth(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| n.depth as usize)
            .max()
            .unwrap_or(0)
    }

    /// Fitting parameters.
    pub fn params(&self) -> &TreeParams {
        &self.params
    }

    /// The leaf a row routes to, following the same unseen-code policy as
    /// prediction (majority child).
    fn leaf_for(&self, row: &[u32]) -> &Node {
        debug_assert_eq!(row.len(), self.n_features);
        let mut id = 0u32;
        loop {
            let node = &self.nodes[id as usize];
            match &node.split {
                None => return node,
                Some(s) => {
                    let code = row[s.feature as usize];
                    id = if s.left_codes.binary_search(&code).is_ok() {
                        s.left
                    } else if s.right_codes.binary_search(&code).is_ok() {
                        s.right
                    } else if s.majority_left {
                        s.left
                    } else {
                        s.right
                    };
                }
            }
        }
    }

    /// Laplace-smoothed log-odds of the leaf this row routes to:
    /// `ln((pos+1)/(neg+1))` over the leaf's training rows. Sign-consistent
    /// with `predict_row` (`2*pos >= n` ⟺ log-odds ≥ 0, ties included), so
    /// it serves as the tree family's margin for cascade calibration.
    pub fn leaf_log_odds(&self, row: &[u32]) -> f64 {
        let node = self.leaf_for(row);
        let pos = f64::from(node.pos);
        let neg = f64::from(node.n - node.pos);
        ((pos + 1.0) / (neg + 1.0)).ln()
    }

    /// Binary payload for format-v3 artifacts (see `crate::binenc`). Nodes
    /// are written in index order; the per-node code lists are inline
    /// (copied on read — they are short by construction, split search is
    /// O(observed levels)).
    pub(crate) fn encode_bin(&self, w: &mut BinWriter) {
        w.put_u8(match self.params.criterion {
            SplitCriterion::Gini => 0,
            SplitCriterion::InfoGain => 1,
            SplitCriterion::GainRatio => 2,
        });
        w.put_usize(self.params.minsplit);
        w.put_f64(self.params.cp);
        w.put_usize(self.params.max_depth);
        match self.params.min_bucket {
            None => w.put_u8(0),
            Some(m) => {
                w.put_u8(1);
                w.put_usize(m);
            }
        }
        w.put_u8(match self.params.categorical {
            CategoricalSplit::SubsetPartition => 0,
            CategoricalSplit::OneVsRest => 1,
        });
        w.put_usize(self.n_features);
        w.put_usize(self.nodes.len());
        for node in &self.nodes {
            w.put_bool(node.prediction);
            w.put_u32(node.n);
            w.put_u32(node.pos);
            w.put_u16(node.depth);
            match &node.split {
                None => w.put_u8(0),
                Some(s) => {
                    w.put_u8(1);
                    w.put_u32(s.feature);
                    w.put_u32(s.left);
                    w.put_u32(s.right);
                    w.put_bool(s.majority_left);
                    w.put_u32s_inline(&s.left_codes);
                    w.put_u32s_inline(&s.right_codes);
                }
            }
        }
    }

    /// Inverse of [`DecisionTree::encode_bin`].
    pub(crate) fn decode_bin(r: &mut BinReader) -> Result<Self> {
        let bad = |what: &str| MlError::Invalid(format!("corrupt tree payload: {what}"));
        let criterion = match r.read_u8()? {
            0 => SplitCriterion::Gini,
            1 => SplitCriterion::InfoGain,
            2 => SplitCriterion::GainRatio,
            t => return Err(bad(&format!("criterion tag {t}"))),
        };
        let minsplit = r.read_usize()?;
        let cp = r.read_f64()?;
        let max_depth = r.read_usize()?;
        let min_bucket = match r.read_u8()? {
            0 => None,
            1 => Some(r.read_usize()?),
            t => return Err(bad(&format!("min_bucket tag {t}"))),
        };
        let categorical = match r.read_u8()? {
            0 => CategoricalSplit::SubsetPartition,
            1 => CategoricalSplit::OneVsRest,
            t => return Err(bad(&format!("categorical tag {t}"))),
        };
        let n_features = r.read_usize()?;
        let n_nodes = r.read_usize()?;
        let mut nodes = Vec::with_capacity(n_nodes.min(r.remaining()));
        for _ in 0..n_nodes {
            let prediction = r.read_bool()?;
            let n = r.read_u32()?;
            let pos = r.read_u32()?;
            let depth = r.read_u16()?;
            let split = match r.read_u8()? {
                0 => None,
                1 => {
                    let feature = r.read_u32()?;
                    let left = r.read_u32()?;
                    let right = r.read_u32()?;
                    let majority_left = r.read_bool()?;
                    let left_codes = r.read_u32s_inline()?;
                    let right_codes = r.read_u32s_inline()?;
                    Some(NodeSplit {
                        feature,
                        left_codes,
                        right_codes,
                        left,
                        right,
                        majority_left,
                    })
                }
                t => return Err(bad(&format!("split tag {t}"))),
            };
            nodes.push(Node {
                prediction,
                n,
                pos,
                depth,
                split,
            });
        }
        // Child and feature indices must stay inside the node array and
        // row width respectively, or prediction would panic on a corrupted
        // file instead of failing the load.
        let count = nodes.len() as u32;
        for node in &nodes {
            if let Some(s) = &node.split {
                if s.left >= count || s.right >= count {
                    return Err(bad("child index out of range"));
                }
                if s.feature as usize >= n_features {
                    return Err(bad("split feature index out of range"));
                }
            }
        }
        Ok(DecisionTree {
            params: TreeParams {
                criterion,
                minsplit,
                cp,
                max_depth,
                min_bucket,
                categorical,
            },
            nodes,
            n_features,
        })
    }

    /// How many internal nodes split on each feature — the paper's §5.1
    /// observation ("FK was used heavily for partitioning") is this readout.
    pub fn feature_usage(&self) -> Vec<usize> {
        let mut usage = vec![0usize; self.n_features];
        for node in &self.nodes {
            if let Some(s) = &node.split {
                usage[s.feature as usize] += 1;
            }
        }
        usage
    }

    /// Pretty-prints the tree (one line per node) with feature names; the
    /// interpretability pain of large FK domains (§6.1) is easy to *see*
    /// here: uncompressed FK splits list enormous code sets.
    pub fn render(&self, feature_names: &[String]) -> String {
        let mut out = String::new();
        self.render_node(0, 0, feature_names, &mut out);
        out
    }

    fn render_node(&self, id: u32, indent: usize, names: &[String], out: &mut String) {
        let node = &self.nodes[id as usize];
        let pad = "  ".repeat(indent);
        match &node.split {
            None => {
                out.push_str(&format!(
                    "{pad}leaf n={} pos={} -> {}\n",
                    node.n, node.pos, node.prediction
                ));
            }
            Some(s) => {
                let name = names
                    .get(s.feature as usize)
                    .map(String::as_str)
                    .unwrap_or("?");
                let shown: Vec<String> = s
                    .left_codes
                    .iter()
                    .take(8)
                    .map(ToString::to_string)
                    .collect();
                let ell = if s.left_codes.len() > 8 { ",…" } else { "" };
                out.push_str(&format!(
                    "{pad}split {name} in {{{}{}}} (n={})\n",
                    shown.join(","),
                    ell,
                    node.n
                ));
                self.render_node(s.left, indent + 1, names, out);
                self.render_node(s.right, indent + 1, names, out);
            }
        }
    }
}

impl Classifier for DecisionTree {
    fn predict_row(&self, row: &[u32]) -> bool {
        self.leaf_for(row).prediction
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{CatDataset, FeatureMeta, Provenance};

    fn meta(names: &[(&str, u32)]) -> Vec<FeatureMeta> {
        names
            .iter()
            .map(|&(n, k)| FeatureMeta::new(n, k, Provenance::Home))
            .collect()
    }

    /// y = a XOR b with *asymmetric* cell counts. A perfectly balanced XOR
    /// has zero marginal gain on either feature, so a greedy CART (like
    /// rpart) will not split at all; skewing the counts gives the root a
    /// positive-gain split while still requiring depth 2 for a perfect fit.
    fn xor_dataset() -> CatDataset {
        let cells: [(u32, u32, usize); 4] = [(0, 0, 6), (0, 1, 4), (1, 0, 5), (1, 1, 5)];
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for &(a, b, copies) in &cells {
            for _ in 0..copies {
                rows.extend_from_slice(&[a, b]);
                labels.push((a ^ b) == 1);
            }
        }
        CatDataset::new(meta(&[("a", 2), ("b", 2)]), rows, labels).unwrap()
    }

    fn full_params(c: SplitCriterion) -> TreeParams {
        TreeParams::new(c).with_minsplit(2).with_cp(0.0)
    }

    #[test]
    fn learns_xor_with_all_criteria() {
        let ds = xor_dataset();
        for crit in [
            SplitCriterion::Gini,
            SplitCriterion::InfoGain,
            SplitCriterion::GainRatio,
        ] {
            let t = DecisionTree::fit(&ds, full_params(crit)).unwrap();
            assert!((t.accuracy(&ds) - 1.0).abs() < 1e-12, "{crit:?}");
            assert!(t.depth() >= 2);
        }
    }

    #[test]
    fn pure_dataset_is_a_single_leaf() {
        let ds = CatDataset::new(meta(&[("a", 2)]), vec![0, 1, 0], vec![true, true, true]).unwrap();
        let t = DecisionTree::fit(&ds, full_params(SplitCriterion::Gini)).unwrap();
        assert_eq!(t.n_nodes(), 1);
        assert_eq!(t.n_leaves(), 1);
        assert!(t.predict_row(&[1]));
    }

    #[test]
    fn huge_cp_prevents_splitting() {
        let ds = xor_dataset();
        let t = DecisionTree::fit(
            &ds,
            TreeParams::new(SplitCriterion::Gini)
                .with_minsplit(2)
                .with_cp(10.0),
        )
        .unwrap();
        assert_eq!(t.n_nodes(), 1);
    }

    #[test]
    fn minsplit_limits_growth() {
        let ds = xor_dataset(); // 16 rows
        let t = DecisionTree::fit(
            &ds,
            TreeParams::new(SplitCriterion::Gini)
                .with_minsplit(100)
                .with_cp(0.0),
        )
        .unwrap();
        assert_eq!(t.n_nodes(), 1);
    }

    #[test]
    fn max_depth_guard() {
        let ds = xor_dataset();
        let t =
            DecisionTree::fit(&ds, full_params(SplitCriterion::Gini).with_max_depth(1)).unwrap();
        assert!(t.depth() <= 1);
    }

    #[test]
    fn fk_memorization_fits_fd_data_perfectly() {
        // y determined by xr; fk functionally determines xr (2 fks per xr
        // value). Training on [fk] alone must reach 100 % train accuracy —
        // the paper's "memorizing FK does not hurt" phenomenon (§5.1).
        let n_fk = 10u32;
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for rep in 0..6 {
            for fk in 0..n_fk {
                let xr = fk / 2;
                let y = xr % 2 == 0;
                rows.push(fk);
                labels.push(y);
                let _ = rep;
            }
        }
        let ds = CatDataset::new(meta(&[("fk", n_fk)]), rows, labels).unwrap();
        let t = DecisionTree::fit(&ds, full_params(SplitCriterion::Gini)).unwrap();
        assert!((t.accuracy(&ds) - 1.0).abs() < 1e-12);
        assert!(t.feature_usage()[0] >= 1);
    }

    #[test]
    fn unseen_code_routes_to_majority_child() {
        // Train where code 2 never appears; prediction must not panic and
        // must return the majority child's label.
        let ds = CatDataset::new(
            meta(&[("f", 3)]),
            vec![0, 0, 0, 1, 1],
            vec![true, true, true, false, false],
        )
        .unwrap();
        let t = DecisionTree::fit(&ds, full_params(SplitCriterion::Gini)).unwrap();
        // Majority side is code 0 (3 rows, true).
        assert!(t.predict_row(&[2]));
    }

    #[test]
    fn render_names_features() {
        let ds = xor_dataset();
        let t = DecisionTree::fit(&ds, full_params(SplitCriterion::Gini)).unwrap();
        let txt = t.render(&["a".into(), "b".into()]);
        assert!(txt.contains("split"));
        assert!(txt.contains("leaf"));
    }

    #[test]
    fn paper_grid_has_20_cells() {
        assert_eq!(TreeParams::paper_grid(SplitCriterion::Gini).len(), 20);
    }

    #[test]
    fn one_vs_rest_learns_single_level_rules() {
        // y = (f == 2): a one-vs-rest split nails it in one node.
        let ds = CatDataset::new(
            meta(&[("f", 4)]),
            vec![0, 1, 2, 3, 2, 0, 2, 1],
            vec![false, false, true, false, true, false, true, false],
        )
        .unwrap();
        let t = DecisionTree::fit(
            &ds,
            full_params(SplitCriterion::Gini).with_categorical(CategoricalSplit::OneVsRest),
        )
        .unwrap();
        assert!((t.accuracy(&ds) - 1.0).abs() < 1e-12);
        assert_eq!(t.depth(), 1, "one equality split suffices");
    }

    #[test]
    fn one_vs_rest_resists_noisy_huge_domain_fk() {
        // xr (binary, strong signal) vs fk (64 levels, pure noise, ~2 rows
        // per level). Subset partitions overfit the FK at the root; the
        // one-vs-rest style must prefer the real signal.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let n = 128usize;
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let xr = rng.gen_range(0..2u32);
            let fk = rng.gen_range(0..64u32);
            rows.push(xr);
            rows.push(fk);
            labels.push(if rng.gen_bool(0.9) { xr == 1 } else { xr == 0 });
        }
        let ds = CatDataset::new(meta(&[("xr", 2), ("fk", 64)]), rows, labels).unwrap();
        let t = DecisionTree::fit(
            &ds,
            TreeParams::new(SplitCriterion::Gini)
                .with_minsplit(10)
                .with_cp(0.01)
                .with_categorical(CategoricalSplit::OneVsRest),
        )
        .unwrap();
        let usage = t.feature_usage();
        assert!(usage[0] >= 1, "tree must split on the signal feature");
        // The root split specifically must be the signal feature: verify by
        // rendering (root line mentions xr).
        let txt = t.render(&["xr".into(), "fk".into()]);
        let first = txt.lines().next().unwrap();
        assert!(first.contains("xr"), "root split was {first}");
    }

    #[test]
    fn empty_dataset_rejected() {
        let f = meta(&[("a", 2)]);
        let err = CatDataset::new(f, vec![], vec![]);
        assert!(err.is_err());
    }
}
