//! Split search for categorical CART trees.
//!
//! For binary classification, the optimal *binary* partition of a categorical
//! feature's levels under gini or entropy is found by sorting levels by their
//! positive-class rate and scanning the `m − 1` prefix cuts (Breiman et al.,
//! CART, Theorem 4.5) — O(m log m) instead of O(2^m). This is what lets the
//! tree digest foreign keys with thousands of levels, which is exactly the
//! regime the paper studies. Gain ratio reuses the same candidate ordering
//! (its split-information denominator depends only on partition sizes) and is
//! how we emulate the `CORElearn`-style criterion.

use crate::dataset::CatDataset;

/// The three split criteria used in the paper's Tables 2/5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum SplitCriterion {
    /// CART gini impurity (rpart's default).
    Gini,
    /// Information gain (entropy decrease).
    InfoGain,
    /// Information gain normalised by split information (C4.5 / CORElearn).
    GainRatio,
}

/// How categorical levels are partitioned at a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum CategoricalSplit {
    /// Breiman's optimal binary subset partition (sort levels by positive
    /// rate, scan prefix cuts). Maximises *training* gain — which makes
    /// huge-domain FKs irresistible to the greedy search even when their
    /// per-level support is ~2 rows.
    SubsetPartition,
    /// One level vs the rest (`x = v` / `x ≠ v`) — what a tree over
    /// one-hot-encoded inputs does (the Hamlet pipeline's encoding). An FK
    /// level covering 2 rows now has proportionally small gain, so foreign
    /// features compete realistically.
    OneVsRest,
}

/// Gini impurity of a binary node: `2p(1−p)`.
#[inline]
pub fn gini(pos: usize, n: usize) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let p = pos as f64 / n as f64;
    2.0 * p * (1.0 - p)
}

/// Binary entropy in bits.
#[inline]
pub fn binary_entropy(pos: usize, n: usize) -> f64 {
    if n == 0 || pos == 0 || pos == n {
        return 0.0;
    }
    let p = pos as f64 / n as f64;
    let q = 1.0 - p;
    -(p * p.log2() + q * q.log2())
}

/// Node impurity under a criterion (gain ratio shares entropy).
#[inline]
pub fn impurity(criterion: SplitCriterion, pos: usize, n: usize) -> f64 {
    match criterion {
        SplitCriterion::Gini => gini(pos, n),
        SplitCriterion::InfoGain | SplitCriterion::GainRatio => binary_entropy(pos, n),
    }
}

/// Split information: entropy of the (left, right) size partition.
#[inline]
pub fn split_info(n_left: usize, n_right: usize) -> f64 {
    binary_entropy(n_left, n_left + n_right)
}

/// Reusable per-code counting buffers, sized once for the largest feature
/// domain so node-level split search never allocates.
#[derive(Debug)]
pub struct SplitScratch {
    /// `counts[code] = (n, n_positive)`; only `touched` entries are valid.
    counts: Vec<(u32, u32)>,
    /// Codes with at least one row in the current node.
    touched: Vec<u32>,
}

impl SplitScratch {
    /// Allocates buffers for features with cardinality up to `max_cardinality`.
    pub fn new(max_cardinality: usize) -> Self {
        Self {
            counts: vec![(0, 0); max_cardinality],
            touched: Vec::with_capacity(max_cardinality.min(1 << 16)),
        }
    }

    fn reset(&mut self) {
        for &c in &self.touched {
            self.counts[c as usize] = (0, 0);
        }
        self.touched.clear();
    }
}

/// The best binary partition found for one feature at one node.
#[derive(Debug, Clone)]
pub struct CandidateSplit {
    /// Feature index.
    pub feature: usize,
    /// Codes (sorted ascending) routed to the left child.
    pub left_codes: Vec<u32>,
    /// Codes (sorted ascending) routed to the right child.
    pub right_codes: Vec<u32>,
    /// Criterion score used for comparisons (gain, or gain/split-info).
    pub score: f64,
    /// Raw impurity decrease (used for rpart-style cp gating).
    pub raw_gain: f64,
    /// Rows in the left child.
    pub n_left: usize,
    /// Rows in the right child.
    pub n_right: usize,
}

/// Finds the best binary split of feature `j` for the rows in `rows`.
/// Returns `None` when no split has positive gain or `min_bucket` cannot be
/// honoured.
pub fn find_best_split(
    ds: &CatDataset,
    rows: &[usize],
    j: usize,
    criterion: SplitCriterion,
    categorical: CategoricalSplit,
    min_bucket: usize,
    scratch: &mut SplitScratch,
) -> Option<CandidateSplit> {
    scratch.reset();
    let mut pos_total = 0usize;
    for &i in rows {
        let code = ds.row(i)[j];
        let cell = &mut scratch.counts[code as usize];
        if cell.0 == 0 {
            scratch.touched.push(code);
        }
        cell.0 += 1;
        let y = ds.label(i);
        cell.1 += u32::from(y);
        pos_total += usize::from(y);
    }
    let m = scratch.touched.len();
    if m < 2 {
        return None;
    }
    let n = rows.len();

    if categorical == CategoricalSplit::OneVsRest {
        return one_vs_rest_split(j, criterion, min_bucket, pos_total, n, scratch);
    }

    // Sort levels by positive rate (ties by code for determinism).
    scratch.touched.sort_unstable_by(|&a, &b| {
        let (na, pa) = scratch.counts[a as usize];
        let (nb, pb) = scratch.counts[b as usize];
        // pa/na < pb/nb  ⇔  pa·nb < pb·na  (all counts ≤ n ≤ u32::MAX)
        let lhs = (pa as u64) * (nb as u64);
        let rhs = (pb as u64) * (na as u64);
        lhs.cmp(&rhs).then(a.cmp(&b))
    });

    let parent = impurity(criterion, pos_total, n);
    let mut best: Option<(f64, f64, usize, usize)> = None; // (score, raw, cut, n_left)
    let mut nl = 0usize;
    let mut pl = 0usize;
    for t in 0..m - 1 {
        let (nc, pc) = scratch.counts[scratch.touched[t] as usize];
        nl += nc as usize;
        pl += pc as usize;
        let nr = n - nl;
        if nl < min_bucket || nr < min_bucket {
            continue;
        }
        let pr = pos_total - pl;
        let child = (nl as f64 / n as f64) * impurity(criterion, pl, nl)
            + (nr as f64 / n as f64) * impurity(criterion, pr, nr);
        let raw = parent - child;
        let score = match criterion {
            SplitCriterion::Gini | SplitCriterion::InfoGain => raw,
            SplitCriterion::GainRatio => {
                let si = split_info(nl, nr);
                if si > f64::EPSILON {
                    raw / si
                } else {
                    0.0
                }
            }
        };
        if best.is_none_or(|(s, ..)| score > s) {
            best = Some((score, raw, t + 1, nl));
        }
    }

    let (score, raw_gain, cut, n_left) = best?;
    if raw_gain <= 1e-12 {
        return None;
    }
    let mut left_codes: Vec<u32> = scratch.touched[..cut].to_vec();
    let mut right_codes: Vec<u32> = scratch.touched[cut..].to_vec();
    left_codes.sort_unstable();
    right_codes.sort_unstable();
    Some(CandidateSplit {
        feature: j,
        left_codes,
        right_codes,
        score,
        raw_gain,
        n_left,
        n_right: n - n_left,
    })
}

/// One-vs-rest candidate generation: for each observed level `v`, score the
/// `{v} | rest` partition and keep the best.
fn one_vs_rest_split(
    j: usize,
    criterion: SplitCriterion,
    min_bucket: usize,
    pos_total: usize,
    n: usize,
    scratch: &mut SplitScratch,
) -> Option<CandidateSplit> {
    let parent = impurity(criterion, pos_total, n);
    let mut best: Option<(f64, f64, u32, usize)> = None; // (score, raw, level, n_left)
    for &code in &scratch.touched {
        let (nc, pc) = scratch.counts[code as usize];
        let nl = nc as usize;
        let pl = pc as usize;
        let nr = n - nl;
        if nl < min_bucket || nr < min_bucket {
            continue;
        }
        let pr = pos_total - pl;
        let child = (nl as f64 / n as f64) * impurity(criterion, pl, nl)
            + (nr as f64 / n as f64) * impurity(criterion, pr, nr);
        let raw = parent - child;
        let score = match criterion {
            SplitCriterion::Gini | SplitCriterion::InfoGain => raw,
            SplitCriterion::GainRatio => {
                let si = split_info(nl, nr);
                if si > f64::EPSILON {
                    raw / si
                } else {
                    0.0
                }
            }
        };
        let better = match best {
            None => true,
            Some((s, _, c, _)) => score > s || (score == s && code < c),
        };
        if better {
            best = Some((score, raw, code, nl));
        }
    }
    let (score, raw_gain, level, n_left) = best?;
    if raw_gain <= 1e-12 {
        return None;
    }
    let mut right_codes: Vec<u32> = scratch
        .touched
        .iter()
        .copied()
        .filter(|&c| c != level)
        .collect();
    right_codes.sort_unstable();
    Some(CandidateSplit {
        feature: j,
        left_codes: vec![level],
        right_codes,
        score,
        raw_gain,
        n_left,
        n_right: n - n_left,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{CatDataset, FeatureMeta, Provenance};

    fn ds(codes: Vec<u32>, k: u32, labels: Vec<bool>) -> CatDataset {
        CatDataset::new(
            vec![FeatureMeta::new("f", k, Provenance::Home)],
            codes,
            labels,
        )
        .unwrap()
    }

    #[test]
    fn impurity_functions() {
        assert_eq!(gini(0, 10), 0.0);
        assert_eq!(gini(10, 10), 0.0);
        assert!((gini(5, 10) - 0.5).abs() < 1e-12);
        assert_eq!(binary_entropy(0, 10), 0.0);
        assert!((binary_entropy(5, 10) - 1.0).abs() < 1e-12);
        assert!((split_info(5, 5) - 1.0).abs() < 1e-12);
        assert_eq!(gini(0, 0), 0.0);
    }

    #[test]
    fn perfect_separator_found() {
        // code 0,1 → negative; code 2,3 → positive.
        let d = ds(
            vec![0, 1, 2, 3, 0, 2],
            4,
            vec![false, false, true, true, false, true],
        );
        let rows: Vec<usize> = (0..6).collect();
        for crit in [
            SplitCriterion::Gini,
            SplitCriterion::InfoGain,
            SplitCriterion::GainRatio,
        ] {
            let mut scratch = SplitScratch::new(4);
            let s = find_best_split(
                &d,
                &rows,
                0,
                crit,
                CategoricalSplit::SubsetPartition,
                1,
                &mut scratch,
            )
            .unwrap();
            // Left = pure negatives, right = pure positives (or vice versa).
            assert_eq!(s.left_codes, vec![0, 1]);
            assert_eq!(s.right_codes, vec![2, 3]);
            assert!(s.raw_gain > 0.0);
        }
    }

    #[test]
    fn pure_node_has_no_split() {
        let d = ds(vec![0, 1, 2], 3, vec![true, true, true]);
        let mut scratch = SplitScratch::new(3);
        let s = find_best_split(
            &d,
            &[0, 1, 2],
            0,
            SplitCriterion::Gini,
            CategoricalSplit::SubsetPartition,
            1,
            &mut scratch,
        );
        assert!(s.is_none());
    }

    #[test]
    fn single_level_has_no_split() {
        let d = ds(vec![1, 1, 1], 3, vec![true, false, true]);
        let mut scratch = SplitScratch::new(3);
        assert!(find_best_split(
            &d,
            &[0, 1, 2],
            0,
            SplitCriterion::Gini,
            CategoricalSplit::SubsetPartition,
            1,
            &mut scratch
        )
        .is_none());
    }

    #[test]
    fn min_bucket_respected() {
        let d = ds(
            vec![0, 1, 1, 1, 1, 1],
            2,
            vec![true, false, false, false, false, false],
        );
        let rows: Vec<usize> = (0..6).collect();
        let mut scratch = SplitScratch::new(2);
        // min_bucket=2 forbids the only useful cut (1 vs 5).
        assert!(find_best_split(
            &d,
            &rows,
            0,
            SplitCriterion::Gini,
            CategoricalSplit::SubsetPartition,
            2,
            &mut scratch
        )
        .is_none());
        assert!(find_best_split(
            &d,
            &rows,
            0,
            SplitCriterion::Gini,
            CategoricalSplit::SubsetPartition,
            1,
            &mut scratch
        )
        .is_some());
    }

    #[test]
    fn gain_ratio_penalises_unbalanced_cuts() {
        // Feature with a 1-vs-many cut and a balanced cut of equal raw gain
        // would prefer the balanced cut under gain ratio; here we just check
        // the score normalisation is applied (score != raw gain).
        let d = ds(
            vec![0, 0, 0, 1, 2, 2],
            3,
            vec![true, true, true, false, false, false],
        );
        let rows: Vec<usize> = (0..6).collect();
        let mut scratch = SplitScratch::new(3);
        let s = find_best_split(
            &d,
            &rows,
            0,
            SplitCriterion::GainRatio,
            CategoricalSplit::SubsetPartition,
            1,
            &mut scratch,
        )
        .unwrap();
        assert!((s.score - s.raw_gain / split_info(s.n_left, s.n_right)).abs() < 1e-12);
    }

    #[test]
    fn deterministic_given_ties() {
        let d = ds(vec![0, 1, 2, 3], 4, vec![true, false, true, false]);
        let rows: Vec<usize> = (0..4).collect();
        let mut s1 = SplitScratch::new(4);
        let mut s2 = SplitScratch::new(4);
        let a = find_best_split(
            &d,
            &rows,
            0,
            SplitCriterion::Gini,
            CategoricalSplit::SubsetPartition,
            1,
            &mut s1,
        )
        .unwrap();
        let b = find_best_split(
            &d,
            &rows,
            0,
            SplitCriterion::Gini,
            CategoricalSplit::SubsetPartition,
            1,
            &mut s2,
        )
        .unwrap();
        assert_eq!(a.left_codes, b.left_codes);
    }
}
