//! Kernel SVMs trained with Sequential Minimal Optimization (SMO).
//!
//! Covers the paper's three SVMs (§3.2): linear (tuning `C`), quadratic
//! polynomial and RBF (tuning `C` and `γ`). The dual problem is solved with
//! a Platt-style SMO: second-choice heuristic on a full error cache,
//! working over a precomputed match-count matrix so a whole hyper-parameter
//! grid reuses one O(n²·d) pass.

pub mod kernel;

use rand::Rng;
use rand::SeedableRng;

pub use kernel::{match_count, KernelKind, MatchMatrix};

use crate::binenc::PodVec;
use crate::dataset::CatDataset;
use crate::error::{MlError, Result};
use crate::model::Classifier;

/// SVM hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SvmParams {
    /// Kernel family and bandwidth.
    pub kernel: KernelKind,
    /// Misclassification cost `C`.
    pub c: f64,
    /// KKT violation tolerance.
    pub tol: f64,
    /// Number of consecutive full passes without updates before stopping.
    pub max_passes: usize,
    /// Hard cap on α-pair updates (guards pathological inputs).
    pub max_updates: usize,
    /// RNG seed for the second-choice fallback.
    pub seed: u64,
}

impl SvmParams {
    /// Sensible defaults for a kernel.
    pub fn new(kernel: KernelKind, c: f64) -> Self {
        Self {
            kernel,
            c,
            tol: 1e-3,
            max_passes: 3,
            max_updates: 200_000,
            seed: 0x5eed,
        }
    }

    /// The paper's RBF/quadratic grid: `C ∈ {0.1, 1, 10, 100, 1000}`,
    /// `γ ∈ {1e-4, 1e-3, 0.01, 0.1, 1, 10}`.
    pub fn paper_grid_rbf() -> Vec<SvmParams> {
        let mut grid = Vec::with_capacity(30);
        for &c in &[0.1, 1.0, 10.0, 100.0, 1000.0] {
            for &gamma in &[1e-4, 1e-3, 0.01, 0.1, 1.0, 10.0] {
                grid.push(SvmParams::new(KernelKind::Rbf { gamma }, c));
            }
        }
        grid
    }

    /// The paper's quadratic-kernel grid (same axes as RBF).
    pub fn paper_grid_quadratic() -> Vec<SvmParams> {
        let mut grid = Vec::with_capacity(30);
        for &c in &[0.1, 1.0, 10.0, 100.0, 1000.0] {
            for &gamma in &[1e-4, 1e-3, 0.01, 0.1, 1.0, 10.0] {
                grid.push(SvmParams::new(KernelKind::Quadratic { gamma }, c));
            }
        }
        grid
    }

    /// The paper's linear-SVM grid: `C ∈ {0.1, 1, 10, 100, 1000}`.
    pub fn paper_grid_linear() -> Vec<SvmParams> {
        [0.1, 1.0, 10.0, 100.0, 1000.0]
            .iter()
            .map(|&c| SvmParams::new(KernelKind::Linear, c))
            .collect()
    }
}

/// A trained SVM: support vectors with coefficients `αᵢ yᵢ` plus bias.
///
/// The support-vector matrix and coefficients live behind [`PodVec`] so a
/// format-v3 artifact loaded via mmap evaluates kernels straight out of the
/// mapped file.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SvmModel {
    pub(crate) kernel: KernelKind,
    pub(crate) n_features: usize,
    /// Support-vector rows, flattened `n_sv × d`.
    pub(crate) sv_rows: PodVec<u32>,
    /// `αᵢ yᵢ` per support vector.
    pub(crate) sv_coef: PodVec<f64>,
    pub(crate) bias: f64,
}

impl SvmModel {
    /// Fits with a freshly computed match matrix (convenience; grids should
    /// compute [`MatchMatrix`] once and call [`SvmModel::fit_precomputed`]).
    pub fn fit(ds: &CatDataset, params: SvmParams) -> Result<Self> {
        let mm = MatchMatrix::compute(ds);
        Self::fit_precomputed(ds, &mm, params)
    }

    /// Fits using a shared match-count matrix.
    pub fn fit_precomputed(ds: &CatDataset, mm: &MatchMatrix, params: SvmParams) -> Result<Self> {
        let n = ds.n_rows();
        if n == 0 {
            return Err(MlError::Shape {
                detail: "cannot fit an SVM on an empty dataset".into(),
            });
        }
        if mm.n() != n {
            return Err(MlError::Shape {
                detail: "match matrix size does not match dataset".into(),
            });
        }
        let d = ds.n_features();
        let y: Vec<f64> = ds
            .labels()
            .iter()
            .map(|&b| if b { 1.0 } else { -1.0 })
            .collect();

        // Degenerate single-class training data: constant classifier.
        let pos = ds.pos_count();
        if pos == 0 || pos == n {
            return Ok(Self {
                kernel: params.kernel,
                n_features: d,
                sv_rows: PodVec::new(),
                sv_coef: PodVec::new(),
                bias: if pos == n { 1.0 } else { -1.0 },
            });
        }

        let mut alpha = vec![0.0f64; n];
        let mut bias = 0.0f64;
        // Error cache: E[i] = f(x_i) − y_i; with all α = 0, f = 0.
        let mut err: Vec<f64> = y.iter().map(|&v| -v).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(params.seed);

        let kern = |i: usize, j: usize| mm.kernel(params.kernel, i, j);
        let c = params.c;
        let tol = params.tol;
        let mut passes = 0usize;
        let mut updates = 0usize;

        while passes < params.max_passes && updates < params.max_updates {
            let mut changed = 0usize;
            for i in 0..n {
                let e_i = err[i];
                let r = e_i * y[i];
                if !((r < -tol && alpha[i] < c) || (r > tol && alpha[i] > 0.0)) {
                    continue;
                }
                // Second-choice heuristic: maximise |E_i − E_j|, falling back
                // to a random partner.
                let mut j = {
                    let mut best_j = usize::MAX;
                    let mut best_gap = -1.0;
                    for (cand, &e) in err.iter().enumerate() {
                        if cand == i {
                            continue;
                        }
                        let gap = (e_i - e).abs();
                        if gap > best_gap {
                            best_gap = gap;
                            best_j = cand;
                        }
                    }
                    best_j
                };
                if j == usize::MAX {
                    continue;
                }
                if (err[j] - e_i).abs() < 1e-12 {
                    // Degenerate gap: random partner keeps the solver moving.
                    j = rng.gen_range(0..n - 1);
                    if j >= i {
                        j += 1;
                    }
                }

                let (lo, hi) = if (y[i] - y[j]).abs() > f64::EPSILON {
                    (
                        (alpha[j] - alpha[i]).max(0.0),
                        (c + alpha[j] - alpha[i]).min(c),
                    )
                } else {
                    (
                        (alpha[i] + alpha[j] - c).max(0.0),
                        (alpha[i] + alpha[j]).min(c),
                    )
                };
                if hi - lo < 1e-12 {
                    continue;
                }
                let eta = 2.0 * kern(i, j) - kern(i, i) - kern(j, j);
                if eta >= -1e-12 {
                    continue; // non-positive curvature: skip (rare for PD kernels)
                }
                let e_j = err[j];
                let mut a_j = alpha[j] - y[j] * (e_i - e_j) / eta;
                a_j = a_j.clamp(lo, hi);
                let d_j = a_j - alpha[j];
                if d_j.abs() < 1e-7 {
                    continue;
                }
                let d_i = -y[i] * y[j] * d_j;
                let a_i = alpha[i] + d_i;

                // Bias update (Platt's b1/b2 rule).
                let b1 = bias - e_i - y[i] * d_i * kern(i, i) - y[j] * d_j * kern(i, j);
                let b2 = bias - e_j - y[i] * d_i * kern(i, j) - y[j] * d_j * kern(j, j);
                let new_b = if a_i > 0.0 && a_i < c {
                    b1
                } else if a_j > 0.0 && a_j < c {
                    b2
                } else {
                    0.5 * (b1 + b2)
                };
                let d_b = new_b - bias;

                alpha[i] = a_i;
                alpha[j] = a_j;
                bias = new_b;
                // Incremental error-cache maintenance: O(n).
                for (k, e) in err.iter_mut().enumerate() {
                    *e += y[i] * d_i * kern(i, k) + y[j] * d_j * kern(j, k) + d_b;
                }
                changed += 1;
                updates += 1;
            }
            if changed == 0 {
                passes += 1;
            } else {
                passes = 0;
            }
        }

        // Extract support vectors.
        let mut sv_rows = Vec::new();
        let mut sv_coef = Vec::new();
        for i in 0..n {
            if alpha[i] > 1e-9 {
                sv_rows.extend_from_slice(ds.row(i));
                sv_coef.push(alpha[i] * y[i]);
            }
        }
        Ok(Self {
            kernel: params.kernel,
            n_features: d,
            sv_rows: sv_rows.into(),
            sv_coef: sv_coef.into(),
            bias,
        })
    }

    /// Decision value `f(x) = Σ αᵢ yᵢ k(xᵢ, x) + b`.
    pub fn decision(&self, row: &[u32]) -> f64 {
        let d = self.n_features;
        let mut f = self.bias;
        for (coef, sv) in self.sv_coef.iter().zip(self.sv_rows.chunks_exact(d)) {
            let m = match_count(sv, row);
            f += coef * self.kernel.from_matches(m, d);
        }
        f
    }

    /// Number of support vectors retained.
    pub fn n_support(&self) -> usize {
        self.sv_coef.len()
    }

    /// Dual coefficients `αᵢ yᵢ` per support vector (KKT checks need them:
    /// `|αᵢ yᵢ| ≤ C` and `Σ αᵢ yᵢ = 0`).
    pub fn sv_coefficients(&self) -> &[f64] {
        &self.sv_coef
    }

    /// Bias term `b`.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// Kernel this model was trained with.
    pub fn kernel(&self) -> KernelKind {
        self.kernel
    }
}

impl Classifier for SvmModel {
    fn predict_row(&self, row: &[u32]) -> bool {
        self.decision(row) >= 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{CatDataset, FeatureMeta, Provenance};

    fn meta(d: usize, k: u32) -> Vec<FeatureMeta> {
        (0..d)
            .map(|j| FeatureMeta::new(format!("f{j}"), k, Provenance::Home))
            .collect()
    }

    fn separable() -> CatDataset {
        // Feature 0 determines the class; feature 1 is noise.
        let rows = vec![
            0, 0, //
            0, 1, //
            0, 2, //
            1, 0, //
            1, 1, //
            1, 2,
        ];
        let labels = vec![true, true, true, false, false, false];
        CatDataset::new(meta(2, 3), rows, labels).unwrap()
    }

    fn xor() -> CatDataset {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for a in 0..2u32 {
            for b in 0..2u32 {
                for _ in 0..3 {
                    rows.extend_from_slice(&[a, b]);
                    labels.push((a ^ b) == 1);
                }
            }
        }
        CatDataset::new(meta(2, 2), rows, labels).unwrap()
    }

    #[test]
    fn linear_svm_separates_separable_data() {
        let ds = separable();
        let m = SvmModel::fit(&ds, SvmParams::new(KernelKind::Linear, 10.0)).unwrap();
        assert!((m.accuracy(&ds) - 1.0).abs() < 1e-12);
        assert!(m.n_support() >= 2);
    }

    #[test]
    fn rbf_svm_solves_xor() {
        let ds = xor();
        let m = SvmModel::fit(&ds, SvmParams::new(KernelKind::Rbf { gamma: 1.0 }, 100.0)).unwrap();
        assert!((m.accuracy(&ds) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quadratic_svm_solves_xor() {
        let ds = xor();
        let m = SvmModel::fit(
            &ds,
            SvmParams::new(KernelKind::Quadratic { gamma: 1.0 }, 100.0),
        )
        .unwrap();
        assert!((m.accuracy(&ds) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_class_degenerates_to_constant() {
        let ds = CatDataset::new(meta(1, 2), vec![0, 1, 0], vec![true, true, true]).unwrap();
        let m = SvmModel::fit(&ds, SvmParams::new(KernelKind::Linear, 1.0)).unwrap();
        assert_eq!(m.n_support(), 0);
        assert!(m.predict_row(&[0]));
        assert!(m.predict_row(&[1]));
    }

    #[test]
    fn dual_feasibility_holds() {
        // Σ αᵢ yᵢ = 0 and 0 ≤ αᵢ ≤ C. We can recover Σ αᵢ yᵢ from sv_coef.
        let ds = separable();
        let c = 5.0;
        let m = SvmModel::fit(&ds, SvmParams::new(KernelKind::Rbf { gamma: 0.5 }, c)).unwrap();
        let sum: f64 = m.sv_coef.iter().sum();
        assert!(sum.abs() < 1e-6, "sum α·y = {sum}");
        for &coef in &m.sv_coef {
            assert!(coef.abs() <= c + 1e-9);
        }
    }

    #[test]
    fn precomputed_matches_fresh_fit() {
        let ds = separable();
        let params = SvmParams::new(KernelKind::Rbf { gamma: 0.3 }, 10.0);
        let mm = MatchMatrix::compute(&ds);
        let a = SvmModel::fit(&ds, params).unwrap();
        let b = SvmModel::fit_precomputed(&ds, &mm, params).unwrap();
        for i in 0..ds.n_rows() {
            assert!((a.decision(ds.row(i)) - b.decision(ds.row(i))).abs() < 1e-9);
        }
    }

    #[test]
    fn mismatched_matrix_rejected() {
        let ds = separable();
        let mm = MatchMatrix::compute(&ds.subset(&[0, 1]));
        let err = SvmModel::fit_precomputed(&ds, &mm, SvmParams::new(KernelKind::Linear, 1.0));
        assert!(err.is_err());
    }

    #[test]
    fn paper_grids_have_expected_sizes() {
        assert_eq!(SvmParams::paper_grid_rbf().len(), 30);
        assert_eq!(SvmParams::paper_grid_quadratic().len(), 30);
        assert_eq!(SvmParams::paper_grid_linear().len(), 5);
    }
}
