//! Kernels over one-hot-encoded categorical rows, computed via match counts.
//!
//! With all-categorical features one-hot encoded, both the dot product and
//! the Euclidean distance between two examples are functions of a single
//! integer: the number of features on which they agree. For rows `a`, `b`
//! with `d` features and `m = |{j : a_j = b_j}|`:
//!
//! - dot product  `⟨φ(a), φ(b)⟩ = m`
//! - squared distance `‖φ(a) − φ(b)‖² = 2(d − m)`
//!
//! so every kernel evaluation is an O(d) integer loop plus a scalar map —
//! no explicit one-hot vectors are ever materialised. This identity is also
//! the engine of the paper's §5.1 analysis of *why* RBF-SVMs tolerate
//! NoJoin: matching on FK forces a match on the (implicit) `X_R`.

use crate::dataset::CatDataset;

/// Kernel families used in the paper (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum KernelKind {
    /// `k(x, z) = ⟨x, z⟩` — the linear SVM.
    Linear,
    /// `k(x, z) = (−γ ⟨x, z⟩)²` — the paper's quadratic polynomial kernel.
    Quadratic {
        /// Bandwidth-like scale γ.
        gamma: f64,
    },
    /// `k(x, z) = exp(−γ ‖x − z‖²)` — the Gaussian RBF kernel.
    Rbf {
        /// Bandwidth γ.
        gamma: f64,
    },
}

impl KernelKind {
    /// Kernel value from a match count `m` between rows with `d` features.
    #[inline]
    pub fn from_matches(&self, m: u32, d: usize) -> f64 {
        match *self {
            KernelKind::Linear => m as f64,
            KernelKind::Quadratic { gamma } => {
                let v = gamma * m as f64;
                v * v
            }
            KernelKind::Rbf { gamma } => {
                let sq_dist = 2.0 * (d as f64 - m as f64);
                (-gamma * sq_dist).exp()
            }
        }
    }
}

/// Number of positions where two rows agree. Routed through the
/// runtime-dispatched SIMD kernels (exact in every backend — this is an
/// integer comparison count, so SVM decisions and the training match
/// matrix never depend on the instruction set).
#[inline]
pub fn match_count(a: &[u32], b: &[u32]) -> u32 {
    debug_assert_eq!(a.len(), b.len());
    crate::kernels::match_count_u32(a, b)
}

/// Precomputed pairwise match counts for a training set. Shared across a
/// whole (C, γ) grid: the expensive O(n²·d) pass happens once, and each
/// kernel value is then a scalar map over a `u16`.
#[derive(Debug, Clone)]
pub struct MatchMatrix {
    n: usize,
    d: usize,
    data: Vec<u16>,
}

impl MatchMatrix {
    /// Computes all pairwise match counts. Requires `d < 65536` (match
    /// counts are stored as `u16`).
    pub fn compute(ds: &CatDataset) -> Self {
        let n = ds.n_rows();
        let d = ds.n_features();
        assert!(
            d < u16::MAX as usize,
            "too many features for u16 match counts"
        );
        let mut data = vec![0u16; n * n];
        for i in 0..n {
            let ri = ds.row(i);
            data[i * n + i] = d as u16;
            for j in (i + 1)..n {
                let m = match_count(ri, ds.row(j)) as u16;
                data[i * n + j] = m;
                data[j * n + i] = m;
            }
        }
        Self { n, d, data }
    }

    /// Match count between training rows `i` and `j`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> u32 {
        self.data[i * self.n + j] as u32
    }

    /// Kernel value between training rows `i` and `j`.
    #[inline]
    pub fn kernel(&self, kind: KernelKind, i: usize, j: usize) -> f64 {
        kind.from_matches(self.get(i, j), self.d)
    }

    /// Number of rows.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of features the counts were computed over.
    pub fn d(&self) -> usize {
        self.d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{CatDataset, FeatureMeta, Provenance};

    fn ds() -> CatDataset {
        let features = (0..3)
            .map(|j| FeatureMeta::new(format!("f{j}"), 4, Provenance::Home))
            .collect();
        CatDataset::new(
            features,
            vec![
                0, 1, 2, //
                0, 1, 3, //
                3, 3, 3,
            ],
            vec![true, false, true],
        )
        .unwrap()
    }

    #[test]
    fn match_count_basics() {
        assert_eq!(match_count(&[0, 1, 2], &[0, 1, 3]), 2);
        assert_eq!(match_count(&[0, 1, 2], &[0, 1, 2]), 3);
        assert_eq!(match_count(&[1, 1], &[0, 0]), 0);
    }

    #[test]
    fn kernel_formulas() {
        let d = 4;
        assert_eq!(KernelKind::Linear.from_matches(3, d), 3.0);
        let q = KernelKind::Quadratic { gamma: 0.5 }.from_matches(3, d);
        assert!((q - (0.5f64 * 3.0).powi(2)).abs() < 1e-12);
        let r = KernelKind::Rbf { gamma: 0.25 }.from_matches(3, d);
        assert!((r - (-0.25f64 * 2.0 * 1.0).exp()).abs() < 1e-12);
        // Full match ⇒ RBF = 1 regardless of gamma.
        let r1 = KernelKind::Rbf { gamma: 9.0 }.from_matches(4, d);
        assert!((r1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rbf_decreases_with_mismatches() {
        let k = KernelKind::Rbf { gamma: 0.3 };
        let d = 10;
        let mut prev = f64::INFINITY;
        for m in (0..=10).rev() {
            let v = k.from_matches(m, d);
            assert!(v < prev + 1e-15);
            prev = v;
        }
    }

    #[test]
    fn match_matrix_symmetric_with_full_diagonal() {
        let ds = ds();
        let mm = MatchMatrix::compute(&ds);
        assert_eq!(mm.n(), 3);
        assert_eq!(mm.d(), 3);
        for i in 0..3 {
            assert_eq!(mm.get(i, i), 3);
            for j in 0..3 {
                assert_eq!(mm.get(i, j), mm.get(j, i));
            }
        }
        assert_eq!(mm.get(0, 1), 2);
        assert_eq!(mm.get(0, 2), 0);
        assert_eq!(mm.get(1, 2), 1);
    }

    #[test]
    fn match_matrix_agrees_with_kernel_on_rows() {
        let ds = ds();
        let mm = MatchMatrix::compute(&ds);
        let k = KernelKind::Rbf { gamma: 0.7 };
        for i in 0..3 {
            for j in 0..3 {
                let direct = k.from_matches(match_count(ds.row(i), ds.row(j)), 3);
                assert!((mm.kernel(k, i, j) - direct).abs() < 1e-12);
            }
        }
    }
}
