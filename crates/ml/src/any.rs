//! [`AnyClassifier`]: every trained model family behind one serializable,
//! enum-dispatched type.
//!
//! Trained models historically left the model zoo as `Box<dyn Classifier>`,
//! which cannot be persisted or named. `AnyClassifier` closes that gap for
//! the serving path: it is `serde`-serializable (so artifacts can be saved
//! and reloaded bit-exactly), `Clone`, and predicts through a plain `match`
//! — no vtable indirection and no allocation on the base-model hot path.

use crate::ann::Mlp;
use crate::dataset::CatDataset;
use crate::knn::OneNearestNeighbor;
use crate::logreg::LogRegL1;
use crate::model::{Classifier, MajorityClass};
use crate::naive_bayes::NaiveBayes;
use crate::svm::SvmModel;
use crate::tree::DecisionTree;

/// A model wrapped with the feature subset it was trained on, so it can
/// consume full-width rows (the NB-BFS path after backward selection).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SubsetModel {
    /// Indices (into the full row) of the features the inner model sees.
    pub keep: Vec<usize>,
    /// The model trained on the selected features.
    pub inner: Box<AnyClassifier>,
}

/// Every trained classifier in the repo, as one concrete type.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum AnyClassifier {
    /// Constant majority-class baseline.
    Majority(MajorityClass),
    /// CART decision tree.
    Tree(DecisionTree),
    /// 1-nearest neighbour.
    Knn(OneNearestNeighbor),
    /// Kernel SVM (linear / quadratic / RBF).
    Svm(SvmModel),
    /// Multi-layer perceptron.
    Mlp(Mlp),
    /// Categorical Naive Bayes.
    NaiveBayes(NaiveBayes),
    /// L1 logistic regression.
    LogReg(LogRegL1),
    /// Any of the above behind a feature-subset projection.
    Subset(SubsetModel),
}

impl AnyClassifier {
    /// Short family tag for registry listings and logs.
    pub fn family(&self) -> &'static str {
        match self {
            AnyClassifier::Majority(_) => "majority",
            AnyClassifier::Tree(_) => "tree",
            AnyClassifier::Knn(_) => "knn",
            AnyClassifier::Svm(_) => "svm",
            AnyClassifier::Mlp(_) => "mlp",
            AnyClassifier::NaiveBayes(_) => "naive-bayes",
            AnyClassifier::LogReg(_) => "logreg",
            AnyClassifier::Subset(s) => s.inner.family(),
        }
    }

    /// Batched prediction over row-major codes (`rows.len() == n * d`),
    /// reusing one scratch buffer across the batch so even subset-projected
    /// models allocate O(1) times per request.
    pub fn predict_batch(&self, rows: &[u32], d: usize) -> Vec<bool> {
        assert!(
            d > 0 && rows.len().is_multiple_of(d),
            "rows must be n × d codes"
        );
        let mut out = Vec::with_capacity(rows.len() / d);
        let mut scratch = Vec::new();
        for row in rows.chunks_exact(d) {
            out.push(self.predict_row_scratch(row, &mut scratch));
        }
        out
    }

    /// `predict_row` with an external scratch buffer for subset projection.
    #[inline]
    pub fn predict_row_scratch(&self, row: &[u32], scratch: &mut Vec<u32>) -> bool {
        match self {
            AnyClassifier::Majority(m) => m.predict_row(row),
            AnyClassifier::Tree(m) => m.predict_row(row),
            AnyClassifier::Knn(m) => m.predict_row(row),
            AnyClassifier::Svm(m) => m.predict_row(row),
            AnyClassifier::Mlp(m) => m.predict_row(row),
            AnyClassifier::NaiveBayes(m) => m.predict_row(row),
            AnyClassifier::LogReg(m) => m.predict_row(row),
            AnyClassifier::Subset(s) => {
                scratch.clear();
                scratch.extend(s.keep.iter().map(|&j| row[j]));
                // The inner model may itself be a subset (not produced today,
                // but the representation allows it); a fresh scratch keeps
                // borrows simple on that cold path.
                let mut inner_scratch = Vec::new();
                s.inner.predict_row_scratch(scratch, &mut inner_scratch)
            }
        }
    }
}

impl Classifier for AnyClassifier {
    #[inline]
    fn predict_row(&self, row: &[u32]) -> bool {
        // Vec::new() is allocation-free until the Subset arm pushes — the
        // only arm that needed a buffer anyway.
        self.predict_row_scratch(row, &mut Vec::new())
    }

    fn predict(&self, ds: &CatDataset) -> Vec<bool> {
        // Batched path: one scratch allocation for the whole dataset.
        let mut out = Vec::with_capacity(ds.n_rows());
        let mut scratch = Vec::new();
        for i in 0..ds.n_rows() {
            out.push(self.predict_row_scratch(ds.row(i), &mut scratch));
        }
        out
    }
}

macro_rules! impl_from {
    ($($variant:ident <- $ty:ty),* $(,)?) => {$(
        impl From<$ty> for AnyClassifier {
            fn from(m: $ty) -> Self {
                AnyClassifier::$variant(m)
            }
        }
    )*};
}
impl_from! {
    Majority <- MajorityClass,
    Tree <- DecisionTree,
    Knn <- OneNearestNeighbor,
    Svm <- SvmModel,
    Mlp <- Mlp,
    NaiveBayes <- NaiveBayes,
    LogReg <- LogRegL1,
    Subset <- SubsetModel,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{FeatureMeta, Provenance};
    use crate::tree::{SplitCriterion, TreeParams};

    fn ds() -> CatDataset {
        let meta: Vec<FeatureMeta> = (0..2)
            .map(|j| FeatureMeta {
                name: format!("f{j}"),
                cardinality: 3,
                provenance: Provenance::Home,
            })
            .collect();
        CatDataset::new(
            meta,
            vec![0, 1, 1, 0, 2, 2, 0, 0, 1, 1, 2, 0],
            vec![true, false, true, true, false, false],
        )
        .unwrap()
    }

    #[test]
    fn dispatch_matches_inner_model() {
        let data = ds();
        let tree = DecisionTree::fit(
            &data,
            TreeParams::new(SplitCriterion::Gini)
                .with_minsplit(2)
                .with_cp(0.0),
        )
        .unwrap();
        let any: AnyClassifier = tree.clone().into();
        for i in 0..data.n_rows() {
            assert_eq!(any.predict_row(data.row(i)), tree.predict_row(data.row(i)));
        }
        assert_eq!(any.predict(&data), tree.predict(&data));
        assert_eq!(any.family(), "tree");
    }

    #[test]
    fn subset_projects_before_predicting() {
        let data = ds();
        let sub_data = data.select_features(&[1]).unwrap();
        let nb = NaiveBayes::fit(&sub_data).unwrap();
        let any = AnyClassifier::Subset(SubsetModel {
            keep: vec![1],
            inner: Box::new(nb.clone().into()),
        });
        for i in 0..data.n_rows() {
            assert_eq!(
                any.predict_row(data.row(i)),
                nb.predict_row(sub_data.row(i))
            );
        }
        assert_eq!(any.family(), "naive-bayes");
    }

    #[test]
    fn predict_batch_matches_predict() {
        let data = ds();
        let any: AnyClassifier = MajorityClass::fit(&data).into();
        let mut flat = Vec::new();
        for i in 0..data.n_rows() {
            flat.extend_from_slice(data.row(i));
        }
        assert_eq!(
            any.predict_batch(&flat, data.n_features()),
            any.predict(&data)
        );
    }
}
