//! [`AnyClassifier`]: every trained model family behind one serializable,
//! enum-dispatched type.
//!
//! Trained models historically left the model zoo as `Box<dyn Classifier>`,
//! which cannot be persisted or named. `AnyClassifier` closes that gap for
//! the serving path: it is `serde`-serializable (so artifacts can be saved
//! and reloaded bit-exactly), `Clone`, and predicts through a plain `match`
//! — no vtable indirection and no allocation on the base-model hot path.

use crate::ann::Mlp;
use crate::contract::FeatureContract;
use crate::dataset::CatDataset;
use crate::error::{MlError, Result};
use crate::knn::OneNearestNeighbor;
use crate::logreg::LogRegL1;
use crate::model::{Classifier, MajorityClass};
use crate::naive_bayes::NaiveBayes;
use crate::svm::SvmModel;
use crate::tree::DecisionTree;

/// Minimum rows per shard before [`AnyClassifier::predict_batch_parallel`]
/// spawns an extra thread. Below this, per-row prediction is so cheap that
/// thread spawn/join overhead exceeds the parallel win.
pub const MIN_ROWS_PER_SHARD: usize = 256;

/// A model wrapped with the feature subset it was trained on, so it can
/// consume full-width rows (the NB-BFS path after backward selection).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SubsetModel {
    /// Indices (into the full row) of the features the inner model sees.
    pub keep: Vec<usize>,
    /// The model trained on the selected features.
    pub inner: Box<AnyClassifier>,
}

/// Every trained classifier in the repo, as one concrete type.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum AnyClassifier {
    /// Constant majority-class baseline.
    Majority(MajorityClass),
    /// CART decision tree.
    Tree(DecisionTree),
    /// 1-nearest neighbour.
    Knn(OneNearestNeighbor),
    /// Kernel SVM (linear / quadratic / RBF).
    Svm(SvmModel),
    /// Multi-layer perceptron.
    Mlp(Mlp),
    /// Categorical Naive Bayes.
    NaiveBayes(NaiveBayes),
    /// L1 logistic regression.
    LogReg(LogRegL1),
    /// Any of the above behind a feature-subset projection.
    Subset(SubsetModel),
}

impl AnyClassifier {
    /// Short family tag for registry listings and logs.
    pub fn family(&self) -> &'static str {
        match self {
            AnyClassifier::Majority(_) => "majority",
            AnyClassifier::Tree(_) => "tree",
            AnyClassifier::Knn(_) => "knn",
            AnyClassifier::Svm(_) => "svm",
            AnyClassifier::Mlp(_) => "mlp",
            AnyClassifier::NaiveBayes(_) => "naive-bayes",
            AnyClassifier::LogReg(_) => "logreg",
            AnyClassifier::Subset(s) => s.inner.family(),
        }
    }

    /// Batched prediction over row-major codes (`rows.len() == n * d`),
    /// reusing one scratch buffer across the batch so even subset-projected
    /// models allocate O(1) times per request.
    pub fn predict_batch(&self, rows: &[u32], d: usize) -> Vec<bool> {
        assert!(
            d > 0 && rows.len().is_multiple_of(d),
            "rows must be n × d codes"
        );
        let mut out = Vec::with_capacity(rows.len() / d);
        let mut scratch = Vec::new();
        for row in rows.chunks_exact(d) {
            out.push(self.predict_row_scratch(row, &mut scratch));
        }
        out
    }

    /// Batched prediction fanned out over up to `max_threads` scoped
    /// threads with the default [`MIN_ROWS_PER_SHARD`] shard floor. See
    /// [`AnyClassifier::predict_batch_sharded`] for the tunable variant.
    pub fn predict_batch_parallel(&self, rows: &[u32], d: usize, max_threads: usize) -> Vec<bool> {
        self.predict_batch_sharded(rows, d, max_threads, MIN_ROWS_PER_SHARD)
    }

    /// Batched prediction fanned out over up to `max_threads` scoped
    /// threads, spawning one extra thread per `min_rows_per_shard` rows.
    /// Shards are contiguous row ranges and results are concatenated in
    /// shard order, so the output is bit-identical to
    /// [`AnyClassifier::predict_batch`] *regardless of the shard size* —
    /// parallelism is purely a wall-clock optimization. Batches smaller
    /// than one shard floor per extra thread stay sequential (the spawn
    /// overhead would dominate).
    ///
    /// The floor is a tuning knob: a serving layer that has *observed* this
    /// model's per-row latency can pass a floor sized so each shard costs
    /// roughly a fixed wall-clock budget (cheap models → bigger shards,
    /// expensive ANN/SVM models → smaller ones), instead of the
    /// one-size-fits-all default.
    pub fn predict_batch_sharded(
        &self,
        rows: &[u32],
        d: usize,
        max_threads: usize,
        min_rows_per_shard: usize,
    ) -> Vec<bool> {
        assert!(
            d > 0 && rows.len().is_multiple_of(d),
            "rows must be n × d codes"
        );
        let n = rows.len() / d;
        let shards = (n / min_rows_per_shard.max(1)).clamp(1, max_threads.max(1));
        if shards == 1 {
            return self.predict_batch(rows, d);
        }
        let rows_per_shard = n.div_ceil(shards);
        let mut out = Vec::with_capacity(n);
        std::thread::scope(|scope| {
            let handles: Vec<_> = rows
                .chunks(rows_per_shard * d)
                .map(|chunk| scope.spawn(move || self.predict_batch(chunk, d)))
                .collect();
            for h in handles {
                out.extend(h.join().expect("predict shard panicked"));
            }
        });
        out
    }

    /// Checks this model can consume rows shaped by `contract`: subset
    /// projections must index inside the contract's width, recursively
    /// (each projection narrows the width its inner model sees). Base
    /// models take whatever width they were trained on; the contract *is*
    /// that width by construction, so only projection indices can go stale.
    pub fn check_contract(&self, contract: &FeatureContract) -> Result<()> {
        self.check_width(contract.width())
    }

    fn check_width(&self, width: usize) -> Result<()> {
        if let AnyClassifier::Subset(s) = self {
            if let Some(&bad) = s.keep.iter().find(|&&j| j >= width) {
                return Err(MlError::Invalid(format!(
                    "subset model projects feature {bad} but its input has only {width} features"
                )));
            }
            return s.inner.check_width(s.keep.len());
        }
        Ok(())
    }

    /// `predict_row` with an external scratch buffer for subset projection.
    #[inline]
    pub fn predict_row_scratch(&self, row: &[u32], scratch: &mut Vec<u32>) -> bool {
        match self {
            AnyClassifier::Majority(m) => m.predict_row(row),
            AnyClassifier::Tree(m) => m.predict_row(row),
            AnyClassifier::Knn(m) => m.predict_row(row),
            AnyClassifier::Svm(m) => m.predict_row(row),
            AnyClassifier::Mlp(m) => m.predict_row(row),
            AnyClassifier::NaiveBayes(m) => m.predict_row(row),
            AnyClassifier::LogReg(m) => m.predict_row(row),
            AnyClassifier::Subset(s) => {
                scratch.clear();
                scratch.extend(s.keep.iter().map(|&j| row[j]));
                // The inner model may itself be a subset (not produced today,
                // but the representation allows it); a fresh scratch keeps
                // borrows simple on that cold path.
                let mut inner_scratch = Vec::new();
                s.inner.predict_row_scratch(scratch, &mut inner_scratch)
            }
        }
    }
}

impl Classifier for AnyClassifier {
    #[inline]
    fn predict_row(&self, row: &[u32]) -> bool {
        // Vec::new() is allocation-free until the Subset arm pushes — the
        // only arm that needed a buffer anyway.
        self.predict_row_scratch(row, &mut Vec::new())
    }

    fn predict(&self, ds: &CatDataset) -> Vec<bool> {
        // Batched path: one scratch allocation for the whole dataset.
        let mut out = Vec::with_capacity(ds.n_rows());
        let mut scratch = Vec::new();
        for i in 0..ds.n_rows() {
            out.push(self.predict_row_scratch(ds.row(i), &mut scratch));
        }
        out
    }
}

macro_rules! impl_from {
    ($($variant:ident <- $ty:ty),* $(,)?) => {$(
        impl From<$ty> for AnyClassifier {
            fn from(m: $ty) -> Self {
                AnyClassifier::$variant(m)
            }
        }
    )*};
}
impl_from! {
    Majority <- MajorityClass,
    Tree <- DecisionTree,
    Knn <- OneNearestNeighbor,
    Svm <- SvmModel,
    Mlp <- Mlp,
    NaiveBayes <- NaiveBayes,
    LogReg <- LogRegL1,
    Subset <- SubsetModel,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{FeatureMeta, Provenance};
    use crate::tree::{SplitCriterion, TreeParams};

    fn ds() -> CatDataset {
        let meta: Vec<FeatureMeta> = (0..2)
            .map(|j| FeatureMeta::new(format!("f{j}"), 3, Provenance::Home))
            .collect();
        CatDataset::new(
            meta,
            vec![0, 1, 1, 0, 2, 2, 0, 0, 1, 1, 2, 0],
            vec![true, false, true, true, false, false],
        )
        .unwrap()
    }

    #[test]
    fn dispatch_matches_inner_model() {
        let data = ds();
        let tree = DecisionTree::fit(
            &data,
            TreeParams::new(SplitCriterion::Gini)
                .with_minsplit(2)
                .with_cp(0.0),
        )
        .unwrap();
        let any: AnyClassifier = tree.clone().into();
        for i in 0..data.n_rows() {
            assert_eq!(any.predict_row(data.row(i)), tree.predict_row(data.row(i)));
        }
        assert_eq!(any.predict(&data), tree.predict(&data));
        assert_eq!(any.family(), "tree");
    }

    #[test]
    fn subset_projects_before_predicting() {
        let data = ds();
        let sub_data = data.select_features(&[1]).unwrap();
        let nb = NaiveBayes::fit(&sub_data).unwrap();
        let any = AnyClassifier::Subset(SubsetModel {
            keep: vec![1],
            inner: Box::new(nb.clone().into()),
        });
        for i in 0..data.n_rows() {
            assert_eq!(
                any.predict_row(data.row(i)),
                nb.predict_row(sub_data.row(i))
            );
        }
        assert_eq!(any.family(), "naive-bayes");
    }

    #[test]
    fn predict_batch_parallel_bitmatches_sequential() {
        use rand::{Rng, SeedableRng};
        let data = ds();
        let tree = DecisionTree::fit(
            &data,
            TreeParams::new(SplitCriterion::Gini)
                .with_minsplit(2)
                .with_cp(0.0),
        )
        .unwrap();
        let any: AnyClassifier = tree.into();
        // Large enough to shard several times over.
        let d = data.n_features();
        let n = MIN_ROWS_PER_SHARD * 5 + 17;
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let rows: Vec<u32> = (0..n * d).map(|_| rng.gen_range(0..3)).collect();
        let sequential = any.predict_batch(&rows, d);
        for threads in [1, 2, 3, 8, 64] {
            assert_eq!(
                any.predict_batch_parallel(&rows, d, threads),
                sequential,
                "threads={threads}"
            );
        }
        // Tiny batches stay on the sequential path (and still agree).
        assert_eq!(
            any.predict_batch_parallel(&rows[..d * 3], d, 8),
            sequential[..3]
        );
        // Arbitrary shard floors (the adaptive-sizing knob) never change
        // the output, only the fan-out.
        for floor in [1, 32, 100, 1000, usize::MAX] {
            assert_eq!(
                any.predict_batch_sharded(&rows, d, 8, floor),
                sequential,
                "floor={floor}"
            );
        }
    }

    #[test]
    fn check_contract_catches_stale_subset_projections() {
        let data = ds();
        let nb = NaiveBayes::fit(&data.select_features(&[1]).unwrap()).unwrap();
        let any = AnyClassifier::Subset(SubsetModel {
            keep: vec![1],
            inner: Box::new(nb.into()),
        });
        let wide = data.contract();
        any.check_contract(&wide).unwrap();
        let narrow = crate::contract::FeatureContract::new(vec![FeatureMeta::new(
            "only",
            3,
            Provenance::Home,
        )])
        .unwrap();
        assert!(any.check_contract(&narrow).is_err());
    }

    #[test]
    fn predict_batch_matches_predict() {
        let data = ds();
        let any: AnyClassifier = MajorityClass::fit(&data).into();
        let mut flat = Vec::new();
        for i in 0..data.n_rows() {
            flat.extend_from_slice(data.row(i));
        }
        assert_eq!(
            any.predict_batch(&flat, data.n_features()),
            any.predict(&data)
        );
    }
}
