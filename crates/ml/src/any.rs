//! [`AnyClassifier`]: every trained model family behind one serializable,
//! enum-dispatched type.
//!
//! Trained models historically left the model zoo as `Box<dyn Classifier>`,
//! which cannot be persisted or named. `AnyClassifier` closes that gap for
//! the serving path: it is `serde`-serializable (so artifacts can be saved
//! and reloaded bit-exactly), `Clone`, and predicts through a plain `match`
//! — no vtable indirection and no allocation on the base-model hot path.

use crate::ann::Mlp;
use crate::cascade::CascadeModel;
use crate::contract::FeatureContract;
use crate::dataset::CatDataset;
use crate::error::{MlError, Result};
use crate::knn::OneNearestNeighbor;
use crate::logreg::LogRegL1;
use crate::model::{Classifier, MajorityClass};
use crate::naive_bayes::NaiveBayes;
use crate::quant::{QuantEncoding, QuantModel};
use crate::svm::SvmModel;
use crate::tree::DecisionTree;

/// Minimum rows per shard before [`AnyClassifier::predict_batch_parallel`]
/// spawns an extra thread. Below this, per-row prediction is so cheap that
/// thread spawn/join overhead exceeds the parallel win.
pub const MIN_ROWS_PER_SHARD: usize = 256;

/// A model wrapped with the feature subset it was trained on, so it can
/// consume full-width rows (the NB-BFS path after backward selection).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SubsetModel {
    /// Indices (into the full row) of the features the inner model sees.
    pub keep: Vec<usize>,
    /// The model trained on the selected features.
    pub inner: Box<AnyClassifier>,
}

/// Every trained classifier in the repo, as one concrete type.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum AnyClassifier {
    /// Constant majority-class baseline.
    Majority(MajorityClass),
    /// CART decision tree.
    Tree(DecisionTree),
    /// 1-nearest neighbour.
    Knn(OneNearestNeighbor),
    /// Kernel SVM (linear / quadratic / RBF).
    Svm(SvmModel),
    /// Multi-layer perceptron.
    Mlp(Mlp),
    /// Categorical Naive Bayes.
    NaiveBayes(NaiveBayes),
    /// L1 logistic regression.
    LogReg(LogRegL1),
    /// Any of the above behind a feature-subset projection.
    Subset(SubsetModel),
    /// A quantized (i8/f16) MLP, SVM or logreg model.
    Quantized(QuantModel),
    /// A tiered cascade: calibrated cheap front-tiers with a
    /// high-confidence short-circuit over a shared contract.
    Cascade(CascadeModel),
}

impl AnyClassifier {
    /// Short family tag for registry listings and logs. Quantized models
    /// report their *base* family — the encoding is a storage property,
    /// surfaced separately by [`AnyClassifier::encoding`].
    pub fn family(&self) -> &'static str {
        match self {
            AnyClassifier::Majority(_) => "majority",
            AnyClassifier::Tree(_) => "tree",
            AnyClassifier::Knn(_) => "knn",
            AnyClassifier::Svm(_) => "svm",
            AnyClassifier::Mlp(_) => "mlp",
            AnyClassifier::NaiveBayes(_) => "naive-bayes",
            AnyClassifier::LogReg(_) => "logreg",
            AnyClassifier::Subset(s) => s.inner.family(),
            AnyClassifier::Quantized(q) => q.family(),
            AnyClassifier::Cascade(_) => "cascade",
        }
    }

    /// Weight-storage encoding tag: `"f32"` for full-precision models,
    /// `"i8"`/`"f16"` for quantized ones.
    pub fn encoding(&self) -> &'static str {
        match self {
            AnyClassifier::Quantized(q) => q.encoding.name(),
            AnyClassifier::Subset(s) => s.inner.encoding(),
            // A cascade mixes per-tier encodings; report the top (most
            // expensive) tier's, which dominates resident weight bytes.
            AnyClassifier::Cascade(c) => c.tiers.last().map_or("f32", |t| t.model.encoding()),
            _ => "f32",
        }
    }

    /// Approximate bytes of dense numeric payload (weight tensors, support
    /// vectors, probability tables) this model keeps resident. Structural
    /// models (majority, tree) report 0 — their nodes are not weight
    /// arrays. This is what `/v1/models` surfaces per version, making
    /// quantization savings directly visible.
    pub fn weight_bytes(&self) -> usize {
        match self {
            AnyClassifier::Majority(_) | AnyClassifier::Tree(_) => 0,
            AnyClassifier::Knn(m) => m.rows.len() * 4,
            AnyClassifier::Svm(m) => m.sv_rows.len() * 4 + m.sv_coef.len() * 8,
            AnyClassifier::Mlp(m) => {
                (m.offsets.len() + m.b1.len() + m.b2.len()) * 4
                    + (m.w1.len() + m.w2.len() + m.w3.len()) * 4
            }
            AnyClassifier::NaiveBayes(m) => {
                m.cardinalities.len() * 4 + m.tables.iter().map(|t| t.len() * 8).sum::<usize>()
            }
            AnyClassifier::LogReg(m) => m.offsets.len() * 4 + m.weights.len() * 8,
            AnyClassifier::Subset(s) => s.inner.weight_bytes(),
            AnyClassifier::Quantized(q) => q.weight_bytes(),
            AnyClassifier::Cascade(c) => c.tiers.iter().map(|t| t.model.weight_bytes()).sum(),
        }
    }

    /// Quantizes the dense weight tensors to `encoding`. Supported for the
    /// high-capacity families (MLP, SVM, logreg) and subset projections
    /// over them; structural models (trees, kNN, NB, majority) have no
    /// weight tensors and error, as does re-quantizing a quantized model.
    pub fn quantize(&self, encoding: QuantEncoding) -> Result<AnyClassifier> {
        match self {
            AnyClassifier::Mlp(m) => Ok(QuantModel::from_mlp(m, encoding).into()),
            AnyClassifier::Svm(m) => Ok(QuantModel::from_svm(m, encoding).into()),
            AnyClassifier::LogReg(m) => Ok(QuantModel::from_logreg(m, encoding).into()),
            AnyClassifier::Subset(s) => Ok(AnyClassifier::Subset(SubsetModel {
                keep: s.keep.clone(),
                inner: Box::new(s.inner.quantize(encoding)?),
            })),
            AnyClassifier::Quantized(q) => Err(MlError::Invalid(format!(
                "model is already quantized ({})",
                q.encoding.name()
            ))),
            AnyClassifier::Cascade(_) => Err(MlError::Invalid(
                "cascades bundle per-tier encodings; quantize each tier before building".into(),
            )),
            other => Err(crate::quant::unsupported(other.family())),
        }
    }

    /// Batched prediction over row-major codes (`rows.len() == n * d`),
    /// reusing one scratch buffer across the batch so even subset-projected
    /// models allocate O(1) times per request.
    pub fn predict_batch(&self, rows: &[u32], d: usize) -> Vec<bool> {
        assert!(
            d > 0 && rows.len().is_multiple_of(d),
            "rows must be n × d codes"
        );
        let mut out = Vec::with_capacity(rows.len() / d);
        self.predict_chunk(rows, d, &mut out);
        out
    }

    /// Predicts a contiguous row-major chunk into `out`, with family-
    /// specialized batch paths: MLP and quantized models allocate their
    /// forward-pass scratch **once per chunk** and stream rows through the
    /// SIMD kernels — this is the shape merged coalescer batches arrive in,
    /// so a 64-row batch costs one scratch setup instead of 64×5 Vec
    /// allocations. All other families fall back to the per-row path with
    /// a shared subset-projection buffer. Output is bit-identical to
    /// calling `predict_row` per row in every case.
    fn predict_chunk(&self, rows: &[u32], d: usize, out: &mut Vec<bool>) {
        match self {
            AnyClassifier::Mlp(m) => {
                let mut s = m.scratch();
                for row in rows.chunks_exact(d) {
                    out.push(m.logit_scratch(row, &mut s) >= 0.0);
                }
            }
            AnyClassifier::Quantized(q) => {
                let mut s = q.scratch();
                for row in rows.chunks_exact(d) {
                    out.push(q.predict_row_scratch(row, &mut s));
                }
            }
            _ => {
                let mut scratch = Vec::new();
                for row in rows.chunks_exact(d) {
                    out.push(self.predict_row_scratch(row, &mut scratch));
                }
            }
        }
    }

    /// Batched prediction fanned out over up to `max_threads` scoped
    /// threads with the default [`MIN_ROWS_PER_SHARD`] shard floor. See
    /// [`AnyClassifier::predict_batch_sharded`] for the tunable variant.
    pub fn predict_batch_parallel(&self, rows: &[u32], d: usize, max_threads: usize) -> Vec<bool> {
        self.predict_batch_sharded(rows, d, max_threads, MIN_ROWS_PER_SHARD)
    }

    /// Batched prediction fanned out over up to `max_threads` scoped
    /// threads, spawning one extra thread per `min_rows_per_shard` rows.
    /// Shards are contiguous row ranges and results are concatenated in
    /// shard order, so the output is bit-identical to
    /// [`AnyClassifier::predict_batch`] *regardless of the shard size* —
    /// parallelism is purely a wall-clock optimization. Batches smaller
    /// than one shard floor per extra thread stay sequential (the spawn
    /// overhead would dominate).
    ///
    /// The floor is a tuning knob: a serving layer that has *observed* this
    /// model's per-row latency can pass a floor sized so each shard costs
    /// roughly a fixed wall-clock budget (cheap models → bigger shards,
    /// expensive ANN/SVM models → smaller ones), instead of the
    /// one-size-fits-all default.
    pub fn predict_batch_sharded(
        &self,
        rows: &[u32],
        d: usize,
        max_threads: usize,
        min_rows_per_shard: usize,
    ) -> Vec<bool> {
        // One buffer is the single-segment case of the segment-merging
        // fan-out — one sharding implementation, one set of invariants.
        self.predict_segments_sharded(&[rows], d, max_threads, min_rows_per_shard)
            .pop()
            .expect("one segment in, one label vector out")
    }

    /// Batched prediction over **many row buffers at once** — the
    /// cross-request coalescing primitive. The segments are treated as one
    /// logical concatenated batch for sharding purposes (so many tiny
    /// buffers still fan out across threads), but are *never copied into a
    /// single buffer*: each shard walks the segment slices that intersect
    /// its global row range. Results come back split per segment, and each
    /// segment's labels are bit-identical to predicting that segment alone
    /// with [`AnyClassifier::predict_batch`] — per-row prediction is
    /// stateless, so merge/split is purely a scheduling optimization.
    pub fn predict_segments_sharded(
        &self,
        segments: &[&[u32]],
        d: usize,
        max_threads: usize,
        min_rows_per_shard: usize,
    ) -> Vec<Vec<bool>> {
        assert!(d > 0, "d must be positive");
        for seg in segments {
            assert!(
                seg.len().is_multiple_of(d),
                "every segment must be n × d codes"
            );
        }
        // Cumulative row bounds: bounds[i] = first global row of segment i.
        let mut bounds = Vec::with_capacity(segments.len() + 1);
        let mut total = 0usize;
        for seg in segments {
            bounds.push(total);
            total += seg.len() / d;
        }
        bounds.push(total);
        let shards = (total / min_rows_per_shard.max(1)).clamp(1, max_threads.max(1));
        let flat: Vec<bool> = if shards == 1 {
            // Sequential: one batch-specialized pass per segment.
            let mut out = Vec::with_capacity(total);
            for seg in segments {
                self.predict_chunk(seg, d, &mut out);
            }
            out
        } else {
            let rows_per_shard = total.div_ceil(shards);
            let mut out = Vec::with_capacity(total);
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..shards)
                    .map(|s| {
                        let start = s * rows_per_shard;
                        let end = ((s + 1) * rows_per_shard).min(total);
                        let bounds = &bounds;
                        scope.spawn(move || self.predict_row_range(segments, bounds, d, start, end))
                    })
                    .collect();
                for h in handles {
                    out.extend(h.join().expect("predict shard panicked"));
                }
            });
            out
        };
        // Split the concatenated labels back per segment.
        let mut split = Vec::with_capacity(segments.len());
        let mut at = 0usize;
        for w in bounds.windows(2) {
            let n = w[1] - w[0];
            split.push(flat[at..at + n].to_vec());
            at += n;
        }
        split
    }

    /// Predicts global rows `[start, end)` of the logical concatenation of
    /// `segments` (with `bounds` the cumulative row offsets), walking only
    /// the slices that intersect the range.
    fn predict_row_range(
        &self,
        segments: &[&[u32]],
        bounds: &[usize],
        d: usize,
        start: usize,
        end: usize,
    ) -> Vec<bool> {
        let mut out = Vec::with_capacity(end.saturating_sub(start));
        // First segment whose end is past `start`.
        let mut seg = bounds.partition_point(|&b| b <= start).saturating_sub(1);
        let mut row = start;
        while row < end && seg < segments.len() {
            let seg_start = bounds[seg];
            let seg_end = bounds[seg + 1];
            let lo = row - seg_start;
            let hi = end.min(seg_end) - seg_start;
            self.predict_chunk(&segments[seg][lo * d..hi * d], d, &mut out);
            row += hi - lo;
            seg += 1;
        }
        out
    }

    /// Checks this model can consume rows shaped by `contract`: subset
    /// projections must index inside the contract's width, recursively
    /// (each projection narrows the width its inner model sees). Base
    /// models take whatever width they were trained on; the contract *is*
    /// that width by construction, so only projection indices can go stale.
    pub fn check_contract(&self, contract: &FeatureContract) -> Result<()> {
        self.check_width(contract.width())
    }

    fn check_width(&self, width: usize) -> Result<()> {
        match self {
            AnyClassifier::Subset(s) => {
                if let Some(&bad) = s.keep.iter().find(|&&j| j >= width) {
                    return Err(MlError::Invalid(format!(
                        "subset model projects feature {bad} but its input has only {width} features"
                    )));
                }
                s.inner.check_width(s.keep.len())
            }
            // Every tier consumes the same full-width rows.
            AnyClassifier::Cascade(c) => {
                c.tiers.iter().try_for_each(|t| t.model.check_width(width))
            }
            _ => Ok(()),
        }
    }

    /// `predict_row` with an external scratch buffer for subset projection.
    #[inline]
    pub fn predict_row_scratch(&self, row: &[u32], scratch: &mut Vec<u32>) -> bool {
        match self {
            AnyClassifier::Majority(m) => m.predict_row(row),
            AnyClassifier::Tree(m) => m.predict_row(row),
            AnyClassifier::Knn(m) => m.predict_row(row),
            AnyClassifier::Svm(m) => m.predict_row(row),
            AnyClassifier::Mlp(m) => m.predict_row(row),
            AnyClassifier::NaiveBayes(m) => m.predict_row(row),
            AnyClassifier::LogReg(m) => m.predict_row(row),
            AnyClassifier::Quantized(q) => q.predict_row(row),
            AnyClassifier::Subset(s) => {
                scratch.clear();
                scratch.extend(s.keep.iter().map(|&j| row[j]));
                // The inner model may itself be a subset (not produced today,
                // but the representation allows it); a fresh scratch keeps
                // borrows simple on that cold path.
                let mut inner_scratch = Vec::new();
                s.inner.predict_row_scratch(scratch, &mut inner_scratch)
            }
            AnyClassifier::Cascade(c) => c.decide_row_scratch(row, scratch).0 >= 0.0,
        }
    }

    /// This model's raw decision margin for one row, sign-consistent with
    /// [`AnyClassifier::predict_row_scratch`] for **every** family
    /// (`decision_value(row) ≥ 0 ⟺ predict_row(row)`, ties included):
    /// logreg/SVM decision functions and MLP logits directly, NB class
    /// log-odds, the tree's Laplace-smoothed leaf log-odds, and a synthetic
    /// ±1 for the margin-free families (majority, 1-NN). This is what
    /// cascade calibrators consume.
    pub fn decision_value(&self, row: &[u32]) -> f64 {
        self.decision_value_scratch(row, &mut Vec::new())
    }

    /// [`AnyClassifier::decision_value`] with an external scratch buffer for
    /// subset projection.
    pub fn decision_value_scratch(&self, row: &[u32], scratch: &mut Vec<u32>) -> f64 {
        match self {
            AnyClassifier::Majority(m) => {
                if m.positive {
                    1.0
                } else {
                    -1.0
                }
            }
            AnyClassifier::Tree(m) => m.leaf_log_odds(row),
            AnyClassifier::Knn(m) => {
                if m.labels[m.nearest(row)] {
                    1.0
                } else {
                    -1.0
                }
            }
            AnyClassifier::Svm(m) => m.decision(row),
            AnyClassifier::Mlp(m) => f64::from(m.logit(row)),
            AnyClassifier::NaiveBayes(m) => m.log_odds(row),
            AnyClassifier::LogReg(m) => m.decision(row),
            AnyClassifier::Quantized(q) => q.decision_scratch(row, &mut q.scratch()),
            AnyClassifier::Subset(s) => {
                scratch.clear();
                scratch.extend(s.keep.iter().map(|&j| row[j]));
                let mut inner_scratch = Vec::new();
                s.inner.decision_value_scratch(scratch, &mut inner_scratch)
            }
            // A cascade's margin is its answering tier's margin; sign
            // consistency holds because every tier's label *is* that sign.
            AnyClassifier::Cascade(c) => c.decide_row_scratch(row, scratch).0,
        }
    }

    /// Scores a contiguous row-major chunk into `out`, mirroring
    /// [`AnyClassifier::predict_chunk`]'s family specializations: MLP and
    /// quantized models allocate forward-pass scratch once per chunk.
    /// Values are bit-identical to [`AnyClassifier::decision_value`] per
    /// row.
    fn score_chunk(&self, rows: &[u32], d: usize, out: &mut Vec<f64>) {
        match self {
            AnyClassifier::Mlp(m) => {
                let mut s = m.scratch();
                for row in rows.chunks_exact(d) {
                    out.push(f64::from(m.logit_scratch(row, &mut s)));
                }
            }
            AnyClassifier::Quantized(q) => {
                let mut s = q.scratch();
                for row in rows.chunks_exact(d) {
                    out.push(q.decision_scratch(row, &mut s));
                }
            }
            _ => {
                let mut scratch = Vec::new();
                for row in rows.chunks_exact(d) {
                    out.push(self.decision_value_scratch(row, &mut scratch));
                }
            }
        }
    }

    /// Batched decision margins over one row buffer (sequential).
    pub fn score_batch(&self, rows: &[u32], d: usize) -> Vec<f64> {
        assert!(
            d > 0 && rows.len().is_multiple_of(d),
            "rows must be n × d codes"
        );
        let mut out = Vec::with_capacity(rows.len() / d);
        self.score_chunk(rows, d, &mut out);
        out
    }

    /// Decision margins over **many row buffers at once**, sharded exactly
    /// like [`AnyClassifier::predict_segments_sharded`] (segments form one
    /// logical batch, never copied; shards walk intersecting slices).
    /// Returns one flat vector in global row order — the cascade tier-0
    /// scoring primitive, which wants global indices anyway. Values are
    /// bit-identical to [`AnyClassifier::decision_value`] per row
    /// regardless of sharding.
    pub fn score_segments_sharded(
        &self,
        segments: &[&[u32]],
        d: usize,
        max_threads: usize,
        min_rows_per_shard: usize,
    ) -> Vec<f64> {
        assert!(d > 0, "d must be positive");
        for seg in segments {
            assert!(
                seg.len().is_multiple_of(d),
                "every segment must be n × d codes"
            );
        }
        let mut bounds = Vec::with_capacity(segments.len() + 1);
        let mut total = 0usize;
        for seg in segments {
            bounds.push(total);
            total += seg.len() / d;
        }
        bounds.push(total);
        let shards = (total / min_rows_per_shard.max(1)).clamp(1, max_threads.max(1));
        if shards == 1 {
            let mut out = Vec::with_capacity(total);
            for seg in segments {
                self.score_chunk(seg, d, &mut out);
            }
            return out;
        }
        let rows_per_shard = total.div_ceil(shards);
        let mut out = Vec::with_capacity(total);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..shards)
                .map(|s| {
                    let start = s * rows_per_shard;
                    let end = ((s + 1) * rows_per_shard).min(total);
                    let bounds = &bounds;
                    scope.spawn(move || self.score_row_range(segments, bounds, d, start, end))
                })
                .collect();
            for h in handles {
                out.extend(h.join().expect("score shard panicked"));
            }
        });
        out
    }

    /// Scores global rows `[start, end)` of the logical concatenation of
    /// `segments` — the scoring twin of [`AnyClassifier::predict_row_range`].
    fn score_row_range(
        &self,
        segments: &[&[u32]],
        bounds: &[usize],
        d: usize,
        start: usize,
        end: usize,
    ) -> Vec<f64> {
        let mut out = Vec::with_capacity(end.saturating_sub(start));
        let mut seg = bounds.partition_point(|&b| b <= start).saturating_sub(1);
        let mut row = start;
        while row < end && seg < segments.len() {
            let seg_start = bounds[seg];
            let seg_end = bounds[seg + 1];
            let lo = row - seg_start;
            let hi = end.min(seg_end) - seg_start;
            self.score_chunk(&segments[seg][lo * d..hi * d], d, &mut out);
            row += hi - lo;
            seg += 1;
        }
        out
    }
}

impl Classifier for AnyClassifier {
    #[inline]
    fn predict_row(&self, row: &[u32]) -> bool {
        // Vec::new() is allocation-free until the Subset arm pushes — the
        // only arm that needed a buffer anyway.
        self.predict_row_scratch(row, &mut Vec::new())
    }

    fn predict(&self, ds: &CatDataset) -> Vec<bool> {
        // Batched path: one scratch allocation for the whole dataset.
        let mut out = Vec::with_capacity(ds.n_rows());
        let mut scratch = Vec::new();
        for i in 0..ds.n_rows() {
            out.push(self.predict_row_scratch(ds.row(i), &mut scratch));
        }
        out
    }
}

macro_rules! impl_from {
    ($($variant:ident <- $ty:ty),* $(,)?) => {$(
        impl From<$ty> for AnyClassifier {
            fn from(m: $ty) -> Self {
                AnyClassifier::$variant(m)
            }
        }
    )*};
}
impl_from! {
    Majority <- MajorityClass,
    Tree <- DecisionTree,
    Knn <- OneNearestNeighbor,
    Svm <- SvmModel,
    Mlp <- Mlp,
    NaiveBayes <- NaiveBayes,
    LogReg <- LogRegL1,
    Subset <- SubsetModel,
    Quantized <- QuantModel,
    Cascade <- CascadeModel,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{FeatureMeta, Provenance};
    use crate::tree::{SplitCriterion, TreeParams};

    fn ds() -> CatDataset {
        let meta: Vec<FeatureMeta> = (0..2)
            .map(|j| FeatureMeta::new(format!("f{j}"), 3, Provenance::Home))
            .collect();
        CatDataset::new(
            meta,
            vec![0, 1, 1, 0, 2, 2, 0, 0, 1, 1, 2, 0],
            vec![true, false, true, true, false, false],
        )
        .unwrap()
    }

    #[test]
    fn dispatch_matches_inner_model() {
        let data = ds();
        let tree = DecisionTree::fit(
            &data,
            TreeParams::new(SplitCriterion::Gini)
                .with_minsplit(2)
                .with_cp(0.0),
        )
        .unwrap();
        let any: AnyClassifier = tree.clone().into();
        for i in 0..data.n_rows() {
            assert_eq!(any.predict_row(data.row(i)), tree.predict_row(data.row(i)));
        }
        assert_eq!(any.predict(&data), tree.predict(&data));
        assert_eq!(any.family(), "tree");
    }

    #[test]
    fn subset_projects_before_predicting() {
        let data = ds();
        let sub_data = data.select_features(&[1]).unwrap();
        let nb = NaiveBayes::fit(&sub_data).unwrap();
        let any = AnyClassifier::Subset(SubsetModel {
            keep: vec![1],
            inner: Box::new(nb.clone().into()),
        });
        for i in 0..data.n_rows() {
            assert_eq!(
                any.predict_row(data.row(i)),
                nb.predict_row(sub_data.row(i))
            );
        }
        assert_eq!(any.family(), "naive-bayes");
    }

    #[test]
    fn predict_batch_parallel_bitmatches_sequential() {
        use rand::{Rng, SeedableRng};
        let data = ds();
        let tree = DecisionTree::fit(
            &data,
            TreeParams::new(SplitCriterion::Gini)
                .with_minsplit(2)
                .with_cp(0.0),
        )
        .unwrap();
        let any: AnyClassifier = tree.into();
        // Large enough to shard several times over.
        let d = data.n_features();
        let n = MIN_ROWS_PER_SHARD * 5 + 17;
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let rows: Vec<u32> = (0..n * d).map(|_| rng.gen_range(0..3)).collect();
        let sequential = any.predict_batch(&rows, d);
        for threads in [1, 2, 3, 8, 64] {
            assert_eq!(
                any.predict_batch_parallel(&rows, d, threads),
                sequential,
                "threads={threads}"
            );
        }
        // Tiny batches stay on the sequential path (and still agree).
        assert_eq!(
            any.predict_batch_parallel(&rows[..d * 3], d, 8),
            sequential[..3]
        );
        // Arbitrary shard floors (the adaptive-sizing knob) never change
        // the output, only the fan-out.
        for floor in [1, 32, 100, 1000, usize::MAX] {
            assert_eq!(
                any.predict_batch_sharded(&rows, d, 8, floor),
                sequential,
                "floor={floor}"
            );
        }
    }

    #[test]
    fn predict_segments_bitmatches_per_segment_predicts() {
        use rand::{Rng, SeedableRng};
        let data = ds();
        let tree = DecisionTree::fit(
            &data,
            TreeParams::new(SplitCriterion::Gini)
                .with_minsplit(2)
                .with_cp(0.0),
        )
        .unwrap();
        let any: AnyClassifier = tree.into();
        let d = data.n_features();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        // Ragged segment sizes, including empties, 1-row and multi-shard.
        let sizes = [1usize, 0, 8, 3, 700, 1, 17, 0, 256, 5];
        let segments: Vec<Vec<u32>> = sizes
            .iter()
            .map(|&n| (0..n * d).map(|_| rng.gen_range(0..3)).collect())
            .collect();
        let refs: Vec<&[u32]> = segments.iter().map(Vec::as_slice).collect();
        let expect: Vec<Vec<bool>> = refs.iter().map(|s| any.predict_batch(s, d)).collect();
        for threads in [1, 2, 7] {
            for floor in [1, 32, 256, usize::MAX] {
                assert_eq!(
                    any.predict_segments_sharded(&refs, d, threads, floor),
                    expect,
                    "threads={threads} floor={floor}"
                );
            }
        }
        // No segments at all is an empty answer, not a panic.
        assert!(any.predict_segments_sharded(&[], d, 4, 1).is_empty());
    }

    #[test]
    fn check_contract_catches_stale_subset_projections() {
        let data = ds();
        let nb = NaiveBayes::fit(&data.select_features(&[1]).unwrap()).unwrap();
        let any = AnyClassifier::Subset(SubsetModel {
            keep: vec![1],
            inner: Box::new(nb.into()),
        });
        let wide = data.contract();
        any.check_contract(&wide).unwrap();
        let narrow = crate::contract::FeatureContract::new(vec![FeatureMeta::new(
            "only",
            3,
            Provenance::Home,
        )])
        .unwrap();
        assert!(any.check_contract(&narrow).is_err());
    }

    #[test]
    fn predict_batch_matches_predict() {
        let data = ds();
        let any: AnyClassifier = MajorityClass::fit(&data).into();
        let mut flat = Vec::new();
        for i in 0..data.n_rows() {
            flat.extend_from_slice(data.row(i));
        }
        assert_eq!(
            any.predict_batch(&flat, data.n_features()),
            any.predict(&data)
        );
    }
}
