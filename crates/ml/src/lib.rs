//! # hamlet-ml
//!
//! From-scratch implementations of every classifier in the VLDB 2017 study
//! "Are Key-Foreign Key Joins Safe to Avoid when Learning High-Capacity
//! Classifiers?" (Shah, Kumar, Zhu), §3:
//!
//! | paper model | this crate |
//! |---|---|
//! | CART decision tree (gini / information gain / gain ratio; `rpart`, `CORElearn`) | [`tree::DecisionTree`] |
//! | SVM: linear, quadratic, RBF kernels (`e1071`) | [`svm::SvmModel`] (SMO solver) |
//! | Multi-layer perceptron, 256+64 ReLU units, Adam, L2 (Keras/TensorFlow) | [`ann::Mlp`] |
//! | 1-nearest neighbour (`RWeka`) | [`knn::OneNearestNeighbor`] |
//! | Naive Bayes + backward selection | [`naive_bayes::NaiveBayes`] + [`feature_selection`] |
//! | Logistic regression with L1 (`glmnet`) | [`logreg::LogRegL1`] |
//!
//! All models consume [`dataset::CatDataset`] — row-major categorical codes
//! with star-schema provenance tags — and implement [`model::Classifier`].
//! Hyper-parameter grids from the paper's §3.2 ship with each model
//! (`paper_grid*` constructors) and plug into [`tuning::grid_search`].
//!
//! Nothing here knows about joins: the "avoid the join" machinery lives in
//! `hamlet-core`, which simply hands different feature subsets to these
//! models.

pub mod ann;
pub mod any;
pub mod binenc;
pub mod cascade;
pub mod contract;
pub mod dataset;
pub mod error;
pub mod feature_selection;
pub mod kernels;
pub mod knn;
pub mod logreg;
pub mod metrics;
pub mod model;
pub mod naive_bayes;
pub mod quant;
pub mod svm;
pub mod tree;
pub mod tuning;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::ann::{AnnParams, Mlp};
    pub use crate::any::{AnyClassifier, SubsetModel};
    pub use crate::binenc::{BinReader, BinWriter, MmapFile, PodVec};
    pub use crate::cascade::{Calibrator, CascadeModel, CascadeTier, TieredPrediction};
    pub use crate::contract::{BatchError, FeatureContract, RowIssue};
    pub use crate::dataset::{
        split_50_25_25, split_fractions, CatDataset, FeatureMeta, Provenance, TrainValTest,
    };
    pub use crate::error::{MlError, Result as MlResult};
    pub use crate::feature_selection::{backward_selection, forward_selection, SelectionOutcome};
    pub use crate::kernels::Backend;
    pub use crate::knn::OneNearestNeighbor;
    pub use crate::logreg::{LogRegL1, LogRegParams};
    pub use crate::metrics::{accuracy, error_rate, Confusion};
    pub use crate::model::{Classifier, MajorityClass};
    pub use crate::naive_bayes::NaiveBayes;
    pub use crate::quant::{QuantEncoding, QuantModel};
    pub use crate::svm::{KernelKind, MatchMatrix, SvmModel, SvmParams};
    pub use crate::tree::{DecisionTree, SplitCriterion, TreeParams};
    pub use crate::tuning::{grid_search, GridSearchOutcome};
}
