//! Learning-ready categorical datasets.
//!
//! A [`CatDataset`] is the bridge between the relational substrate and every
//! classifier: row-major `u32` codes, per-feature cardinalities, binary
//! labels, plus *provenance* metadata recording whether each feature is a
//! home feature, a foreign key, or a foreign feature. Provenance is what the
//! paper's feature configurations (JoinAll / NoJoin / NoFK) select on.

use std::sync::Arc;

use hamlet_relation::domain::CatDomain;
use hamlet_relation::schema::ColumnRole;
use hamlet_relation::table::Table;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::contract::FeatureContract;
use crate::error::{MlError, Result};

/// Where a feature came from in the star schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Provenance {
    /// A fact-table feature (`X_S`).
    Home,
    /// A foreign key `FK_i`.
    ForeignKey {
        /// Dimension index in the star schema.
        dim: usize,
    },
    /// A dimension feature (`X_Ri`) brought in by the join.
    Foreign {
        /// Dimension index in the star schema.
        dim: usize,
    },
}

/// Per-feature metadata.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FeatureMeta {
    /// Feature name (from the source column).
    pub name: String,
    /// Domain size; codes are `< cardinality`.
    pub cardinality: u32,
    /// Star-schema provenance.
    pub provenance: Provenance,
    /// The label↔code bijection behind the codes, when known. Datasets built
    /// from relational tables carry the column's dictionary (a cheap `Arc`
    /// clone); synthetic datasets and pre-contract (format-v1) artifacts
    /// have `None` and can only consume pre-encoded codes.
    pub domain: Option<Arc<CatDomain>>,
}

impl FeatureMeta {
    /// Metadata without a dictionary (codes-only feature).
    pub fn new(name: impl Into<String>, cardinality: u32, provenance: Provenance) -> Self {
        Self {
            name: name.into(),
            cardinality,
            provenance,
            domain: None,
        }
    }

    /// Metadata carrying the feature's dictionary; cardinality is taken from
    /// the domain so the two can never disagree.
    pub fn with_domain(
        name: impl Into<String>,
        provenance: Provenance,
        domain: Arc<CatDomain>,
    ) -> Self {
        Self {
            name: name.into(),
            cardinality: domain.cardinality(),
            provenance,
            domain: Some(domain),
        }
    }
}

/// A dense categorical dataset with binary labels.
#[derive(Debug, Clone)]
pub struct CatDataset {
    features: Vec<FeatureMeta>,
    /// Row-major codes, `n_rows × n_features`.
    rows: Vec<u32>,
    labels: Vec<bool>,
}

impl CatDataset {
    /// Builds a dataset, validating shapes and code ranges.
    pub fn new(features: Vec<FeatureMeta>, rows: Vec<u32>, labels: Vec<bool>) -> Result<Self> {
        let d = features.len();
        if d == 0 {
            return Err(MlError::Shape {
                detail: "datasets need at least one feature".into(),
            });
        }
        if labels.is_empty() || rows.len() != labels.len() * d {
            return Err(MlError::Shape {
                detail: format!(
                    "rows buffer has {} codes; expected {} rows × {} features",
                    rows.len(),
                    labels.len(),
                    d
                ),
            });
        }
        // Both fields are pub, so the with_domain invariant (cardinality
        // mirrors the dictionary) must be re-checked here — it is what
        // `contract()` relies on to be panic-free.
        for meta in &features {
            if let Some(domain) = &meta.domain {
                if domain.cardinality() != meta.cardinality {
                    return Err(MlError::Invalid(format!(
                        "feature `{}` declares cardinality {} but its domain `{}` has {}",
                        meta.name,
                        meta.cardinality,
                        domain.name(),
                        domain.cardinality()
                    )));
                }
            }
        }
        for (i, chunk) in rows.chunks_exact(d).enumerate() {
            for (j, (&code, meta)) in chunk.iter().zip(&features).enumerate() {
                if code >= meta.cardinality {
                    let _ = i;
                    return Err(MlError::BadCode {
                        feature: j,
                        code,
                        cardinality: meta.cardinality,
                    });
                }
            }
        }
        Ok(Self {
            features,
            rows,
            labels,
        })
    }

    /// Builds a dataset from a (possibly join-materialized) table: every
    /// feature-role column becomes a feature, the `Target` column the label.
    pub fn from_table(table: &Table) -> Result<Self> {
        let labels = table.target_as_bool()?;
        let idx = table.feature_indices();
        if idx.is_empty() {
            return Err(MlError::Shape {
                detail: "table has no feature columns".into(),
            });
        }
        let mut features = Vec::with_capacity(idx.len());
        for &i in &idx {
            let def = &table.schema().columns()[i];
            let provenance = match def.role {
                ColumnRole::HomeFeature => Provenance::Home,
                ColumnRole::ForeignKey { dim } => Provenance::ForeignKey { dim },
                ColumnRole::ForeignFeature { dim } => Provenance::Foreign { dim },
                _ => unreachable!("feature_indices() only returns feature roles"),
            };
            features.push(FeatureMeta::with_domain(
                def.name.clone(),
                provenance,
                Arc::clone(table.column_at(i).domain()),
            ));
        }
        let d = idx.len();
        let n = table.n_rows();
        let mut rows = vec![0u32; n * d];
        for (j, &col_idx) in idx.iter().enumerate() {
            let codes = table.column_at(col_idx).codes();
            for (r, &code) in codes.iter().enumerate() {
                rows[r * d + j] = code;
            }
        }
        Self::new(features, rows, labels)
    }

    /// Number of examples.
    pub fn n_rows(&self) -> usize {
        self.labels.len()
    }

    /// Number of features.
    pub fn n_features(&self) -> usize {
        self.features.len()
    }

    /// One example's codes.
    #[inline]
    pub fn row(&self, i: usize) -> &[u32] {
        let d = self.features.len();
        &self.rows[i * d..(i + 1) * d]
    }

    /// All labels.
    pub fn labels(&self) -> &[bool] {
        &self.labels
    }

    /// Label of one example.
    #[inline]
    pub fn label(&self, i: usize) -> bool {
        self.labels[i]
    }

    /// Feature metadata.
    pub fn features(&self) -> &[FeatureMeta] {
        &self.features
    }

    /// Metadata of one feature.
    pub fn feature(&self, j: usize) -> &FeatureMeta {
        &self.features[j]
    }

    /// The dataset's input contract: per-feature name, provenance,
    /// cardinality and (when built from a relational table) the label↔code
    /// dictionary. This is what trained models persist and serve against.
    pub fn contract(&self) -> FeatureContract {
        FeatureContract::new(self.features.clone())
            .expect("dataset invariants guarantee a valid contract")
    }

    /// Per-feature cardinalities.
    pub fn cardinalities(&self) -> Vec<u32> {
        self.features.iter().map(|f| f.cardinality).collect()
    }

    /// One-hot layout: `offsets[j]` is the first one-hot index of feature `j`
    /// and the final entry is the total one-hot dimensionality.
    pub fn onehot_offsets(&self) -> Vec<u32> {
        let mut offsets = Vec::with_capacity(self.features.len() + 1);
        let mut acc = 0u32;
        for f in &self.features {
            offsets.push(acc);
            acc += f.cardinality;
        }
        offsets.push(acc);
        offsets
    }

    /// Total one-hot dimensionality (sum of cardinalities).
    pub fn onehot_dim(&self) -> usize {
        self.features.iter().map(|f| f.cardinality as usize).sum()
    }

    /// Number of positive labels.
    pub fn pos_count(&self) -> usize {
        self.labels.iter().filter(|&&b| b).count()
    }

    /// New dataset containing only rows `idx` (duplicates allowed).
    pub fn subset(&self, idx: &[usize]) -> CatDataset {
        let d = self.features.len();
        let mut rows = Vec::with_capacity(idx.len() * d);
        let mut labels = Vec::with_capacity(idx.len());
        for &i in idx {
            rows.extend_from_slice(self.row(i));
            labels.push(self.labels[i]);
        }
        CatDataset {
            features: self.features.clone(),
            rows,
            labels,
        }
    }

    /// New dataset keeping only features `keep` (in the given order).
    pub fn select_features(&self, keep: &[usize]) -> Result<CatDataset> {
        if keep.is_empty() {
            return Err(MlError::Shape {
                detail: "cannot select zero features".into(),
            });
        }
        for &j in keep {
            if j >= self.features.len() {
                return Err(MlError::Invalid(format!("feature index {j} out of range")));
            }
        }
        let d = self.features.len();
        let features = keep.iter().map(|&j| self.features[j].clone()).collect();
        let mut rows = Vec::with_capacity(self.n_rows() * keep.len());
        for i in 0..self.n_rows() {
            let base = i * d;
            for &j in keep {
                rows.push(self.rows[base + j]);
            }
        }
        Ok(CatDataset {
            features,
            rows,
            labels: self.labels.clone(),
        })
    }

    /// Dense copy of a single feature column.
    pub fn column(&self, j: usize) -> Vec<u32> {
        let d = self.features.len();
        (0..self.n_rows()).map(|i| self.rows[i * d + j]).collect()
    }

    /// Replaces one feature column (same length), updating its cardinality.
    /// Used by FK compression/smoothing, which rewrite the FK column.
    pub fn replace_column(
        &self,
        j: usize,
        codes: Vec<u32>,
        cardinality: u32,
    ) -> Result<CatDataset> {
        if codes.len() != self.n_rows() {
            return Err(MlError::Shape {
                detail: format!(
                    "replacement column has {} rows, dataset has {}",
                    codes.len(),
                    self.n_rows()
                ),
            });
        }
        if let Some(&bad) = codes.iter().find(|&&c| c >= cardinality) {
            return Err(MlError::BadCode {
                feature: j,
                code: bad,
                cardinality,
            });
        }
        let mut out = self.clone();
        out.features[j].cardinality = cardinality;
        // The rewritten codes no longer index the original dictionary
        // (compression/smoothing collapse labels), so the domain is dropped
        // rather than left dangling.
        out.features[j].domain = None;
        let d = self.features.len();
        for (i, code) in codes.into_iter().enumerate() {
            out.rows[i * d + j] = code;
        }
        Ok(out)
    }
}

/// A train/validation/test split (the paper's 50 % : 25 % : 25 %, §3.2).
#[derive(Debug, Clone)]
pub struct TrainValTest {
    /// Training split (model fitting).
    pub train: CatDataset,
    /// Validation split (hyper-parameter tuning / feature selection).
    pub val: CatDataset,
    /// Holdout test split (reported accuracy).
    pub test: CatDataset,
}

/// Splits a dataset 50/25/25 after a seeded shuffle.
pub fn split_50_25_25(ds: &CatDataset, seed: u64) -> TrainValTest {
    split_fractions(ds, 0.5, 0.25, seed)
}

/// Splits with arbitrary train/validation fractions (test takes the rest).
pub fn split_fractions(ds: &CatDataset, train: f64, val: f64, seed: u64) -> TrainValTest {
    assert!(train > 0.0 && val >= 0.0 && train + val < 1.0 + 1e-12);
    let n = ds.n_rows();
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    let n_train = ((n as f64) * train).round() as usize;
    let n_val = ((n as f64) * val).round() as usize;
    let n_train = n_train.clamp(1, n.saturating_sub(2).max(1));
    let n_val = n_val.min(n - n_train);
    TrainValTest {
        train: ds.subset(&idx[..n_train]),
        val: ds.subset(&idx[n_train..n_train + n_val]),
        test: ds.subset(&idx[n_train + n_val..]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn toy(n: usize, d: usize, k: u32, seed: u64) -> CatDataset {
        use rand::Rng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let features = (0..d)
            .map(|j| FeatureMeta::new(format!("f{j}"), k, Provenance::Home))
            .collect();
        let rows: Vec<u32> = (0..n * d).map(|_| rng.gen_range(0..k)).collect();
        let labels: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
        CatDataset::new(features, rows, labels).unwrap()
    }

    #[test]
    fn construction_validates() {
        let features = vec![FeatureMeta::new("f", 2, Provenance::Home)];
        assert!(CatDataset::new(features.clone(), vec![0, 1], vec![true, false]).is_ok());
        assert!(CatDataset::new(features.clone(), vec![0, 2], vec![true, false]).is_err());
        assert!(CatDataset::new(features, vec![0], vec![true, false]).is_err());
    }

    #[test]
    fn construction_rejects_domain_cardinality_mismatch() {
        let mut meta = FeatureMeta::with_domain(
            "f",
            Provenance::Home,
            CatDomain::synthetic("f", 2).into_shared(),
        );
        meta.cardinality = 3; // breaks the with_domain invariant
        assert!(matches!(
            CatDataset::new(vec![meta], vec![0, 1], vec![true, false]),
            Err(MlError::Invalid(_))
        ));
    }

    #[test]
    fn row_and_column_access() {
        let ds = toy(10, 3, 4, 7);
        assert_eq!(ds.n_rows(), 10);
        assert_eq!(ds.n_features(), 3);
        let col1 = ds.column(1);
        #[allow(clippy::needless_range_loop)] // co-indexing rows and column copy
        for i in 0..10 {
            assert_eq!(ds.row(i)[1], col1[i]);
        }
    }

    #[test]
    fn onehot_layout() {
        let features = vec![
            FeatureMeta::new("a", 3, Provenance::Home),
            FeatureMeta::new("b", 5, Provenance::ForeignKey { dim: 0 }),
        ];
        let ds = CatDataset::new(features, vec![0, 4, 2, 0], vec![true, false]).unwrap();
        assert_eq!(ds.onehot_offsets(), vec![0, 3, 8]);
        assert_eq!(ds.onehot_dim(), 8);
    }

    #[test]
    fn subset_and_select() {
        let ds = toy(8, 4, 3, 1);
        let sub = ds.subset(&[1, 1, 5]);
        assert_eq!(sub.n_rows(), 3);
        assert_eq!(sub.row(0), ds.row(1));
        assert_eq!(sub.row(2), ds.row(5));

        let sel = ds.select_features(&[3, 0]).unwrap();
        assert_eq!(sel.n_features(), 2);
        assert_eq!(sel.row(2)[0], ds.row(2)[3]);
        assert_eq!(sel.row(2)[1], ds.row(2)[0]);
        assert!(ds.select_features(&[]).is_err());
        assert!(ds.select_features(&[9]).is_err());
    }

    #[test]
    fn replace_column_updates_cardinality() {
        let ds = toy(4, 2, 3, 2);
        let new = ds.replace_column(1, vec![0, 1, 1, 0], 2).unwrap();
        assert_eq!(new.feature(1).cardinality, 2);
        assert_eq!(new.column(1), vec![0, 1, 1, 0]);
        assert!(ds.replace_column(1, vec![0, 1], 2).is_err());
        assert!(ds.replace_column(1, vec![0, 5, 0, 0], 2).is_err());
    }

    #[test]
    fn split_is_disjoint_and_seeded() {
        let ds = toy(100, 2, 3, 3);
        let s1 = split_50_25_25(&ds, 42);
        let s2 = split_50_25_25(&ds, 42);
        assert_eq!(s1.train.n_rows(), 50);
        assert_eq!(s1.val.n_rows(), 25);
        assert_eq!(s1.test.n_rows(), 25);
        assert_eq!(s1.train.row(0), s2.train.row(0));
        let s3 = split_50_25_25(&ds, 43);
        // Overwhelmingly likely to differ somewhere.
        let same = (0..50).all(|i| s1.train.row(i) == s3.train.row(i));
        assert!(!same);
    }
}
