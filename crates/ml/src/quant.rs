//! Quantized serving models: per-tensor i8/f16 weight storage with
//! dequantize-on-the-fly inference.
//!
//! A [`QuantModel`] is produced offline from a trained full-precision
//! model (`hamlet-serve artifact convert --quantize {i8,f16}`) and serves
//! predictions directly from the compact representation — i8 weights are
//! never widened back into an f32 tensor. The three high-capacity families
//! from the paper (MLP, SVM, logreg) are supported; trees and the other
//! structural models have no dense weight tensors worth shrinking.
//!
//! Determinism contract: the i8 paths accumulate in exact integer
//! arithmetic (`i8×i8→i32`) and apply scales in a fixed scalar order, and
//! the f16 dense products run through the dispatched kernels with the same
//! tolerance story as f32 — but **predictions of an i8 model are
//! bit-identical across heap/mmap loads and across kernel backends**,
//! which the CI quantize smoke relies on.

use crate::ann::Mlp;
use crate::binenc::quantize::{
    quantize_activations_i8, quantize_f16, quantize_f16_f64, quantize_i8, quantize_i8_f64,
};
use crate::binenc::{PodVec, F16};
use crate::error::{MlError, Result};
use crate::kernels;
use crate::logreg::LogRegL1;
use crate::model::Classifier;
use crate::svm::{match_count, KernelKind, SvmModel};

/// Storage encoding for quantized weight tensors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum QuantEncoding {
    /// Symmetric per-tensor i8 with an f32/f64 scale.
    I8,
    /// IEEE 754 binary16.
    F16,
}

impl QuantEncoding {
    /// Lowercase tag for registries, telemetry and CLI output.
    pub fn name(self) -> &'static str {
        match self {
            QuantEncoding::I8 => "i8",
            QuantEncoding::F16 => "f16",
        }
    }

    /// Parses the CLI spelling (`i8` / `f16`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "i8" => Some(QuantEncoding::I8),
            "f16" => Some(QuantEncoding::F16),
            _ => None,
        }
    }
}

/// A quantized f32 tensor (MLP weights).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum QTensor {
    /// Symmetric i8: `value ≈ data[i] as f32 * scale`.
    I8 {
        /// Quantized elements.
        data: PodVec<i8>,
        /// Per-tensor dequantization factor.
        scale: f32,
    },
    /// binary16 elements, widened on the fly.
    F16 {
        /// Half-precision elements.
        data: PodVec<F16>,
    },
}

impl QTensor {
    fn from_f32(values: &[f32], enc: QuantEncoding) -> Self {
        match enc {
            QuantEncoding::I8 => {
                let q = quantize_i8(values);
                QTensor::I8 {
                    data: q.data.into(),
                    scale: q.scale,
                }
            }
            QuantEncoding::F16 => QTensor::F16 {
                data: quantize_f16(values).into(),
            },
        }
    }

    /// Element count.
    pub fn len(&self) -> usize {
        match self {
            QTensor::I8 { data, .. } => data.len(),
            QTensor::F16 { data } => data.len(),
        }
    }

    /// Whether the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes occupied by the element data.
    pub fn data_bytes(&self) -> usize {
        match self {
            QTensor::I8 { data, .. } => data.len(),
            QTensor::F16 { data } => data.len() * 2,
        }
    }

    /// The per-tensor scale (i8 only).
    pub fn scale(&self) -> Option<f64> {
        match self {
            QTensor::I8 { scale, .. } => Some(f64::from(*scale)),
            QTensor::F16 { .. } => None,
        }
    }

    fn is_mapped(&self) -> bool {
        match self {
            QTensor::I8 { data, .. } => data.is_mapped(),
            QTensor::F16 { data } => data.is_mapped(),
        }
    }
}

/// A quantized f64 tensor (SVM dual coefficients, logreg weights).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum QTensor64 {
    /// Symmetric i8: `value ≈ data[i] as f64 * scale`.
    I8 {
        /// Quantized elements.
        data: PodVec<i8>,
        /// Per-tensor dequantization factor.
        scale: f64,
    },
    /// binary16 elements, widened on the fly.
    F16 {
        /// Half-precision elements.
        data: PodVec<F16>,
    },
}

impl QTensor64 {
    fn from_f64(values: &[f64], enc: QuantEncoding) -> Self {
        match enc {
            QuantEncoding::I8 => {
                let (data, scale) = quantize_i8_f64(values);
                QTensor64::I8 {
                    data: data.into(),
                    scale,
                }
            }
            QuantEncoding::F16 => QTensor64::F16 {
                data: quantize_f16_f64(values).into(),
            },
        }
    }

    /// Element count.
    pub fn len(&self) -> usize {
        match self {
            QTensor64::I8 { data, .. } => data.len(),
            QTensor64::F16 { data } => data.len(),
        }
    }

    /// Whether the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes occupied by the element data.
    pub fn data_bytes(&self) -> usize {
        match self {
            QTensor64::I8 { data, .. } => data.len(),
            QTensor64::F16 { data } => data.len() * 2,
        }
    }

    /// The per-tensor scale (i8 only).
    pub fn scale(&self) -> Option<f64> {
        match self {
            QTensor64::I8 { scale, .. } => Some(*scale),
            QTensor64::F16 { .. } => None,
        }
    }

    /// Dequantized element `i`.
    #[inline]
    fn get(&self, i: usize) -> f64 {
        match self {
            QTensor64::I8 { data, scale } => f64::from(data[i]) * scale,
            QTensor64::F16 { data } => f64::from(data[i].to_f32()),
        }
    }

    fn is_mapped(&self) -> bool {
        match self {
            QTensor64::I8 { data, .. } => data.is_mapped(),
            QTensor64::F16 { data } => data.is_mapped(),
        }
    }
}

/// Quantized MLP: same topology as [`Mlp`], weight tensors quantized,
/// biases kept in full precision (they are O(width), not O(width²)).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct QuantMlp {
    pub(crate) offsets: PodVec<u32>,
    pub(crate) d_in: usize,
    pub(crate) h1: usize,
    pub(crate) h2: usize,
    pub(crate) w1: QTensor,
    pub(crate) b1: PodVec<f32>,
    pub(crate) w2: QTensor,
    pub(crate) b2: PodVec<f32>,
    pub(crate) w3: QTensor,
    pub(crate) b3: f32,
}

/// Quantized kernel SVM: support-vector rows stay u32 codes; only the dual
/// coefficients are quantized.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct QuantSvm {
    pub(crate) kernel: KernelKind,
    pub(crate) n_features: usize,
    pub(crate) sv_rows: PodVec<u32>,
    pub(crate) sv_coef: QTensor64,
    pub(crate) bias: f64,
}

/// Quantized L1 logistic regression.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct QuantLogReg {
    pub(crate) offsets: PodVec<u32>,
    pub(crate) weights: QTensor64,
    pub(crate) intercept: f64,
}

/// The quantized payload families.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum QuantPayload {
    /// Quantized multi-layer perceptron.
    Mlp(QuantMlp),
    /// Quantized kernel SVM.
    Svm(QuantSvm),
    /// Quantized logistic regression.
    LogReg(QuantLogReg),
}

/// A quantized serving model: encoding tag + family payload.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct QuantModel {
    /// Storage encoding every tensor in the payload uses.
    pub encoding: QuantEncoding,
    /// The quantized model itself.
    pub payload: QuantPayload,
}

/// Reusable buffers for [`QuantModel::predict_row_scratch`].
///
/// Shaped for one specific model by [`QuantModel::scratch`] — buffers are
/// sized to that model's topology and, for f16 MLPs, cache its weight
/// tensors widened to f32, so a scratch must not be shared across models.
#[derive(Debug, Clone, Default)]
pub struct QuantScratch {
    active: Vec<usize>,
    z: Vec<f32>,
    a: Vec<f32>,
    a2: Vec<f32>,
    qa: Vec<i8>,
    // f16 MLP weight tensors widened to f32 on the first row, then reused
    // for the rest of the batch (empty for i8 and non-MLP payloads).
    w1f: Vec<f32>,
    w2f: Vec<f32>,
    w3f: Vec<f32>,
    dequantized: bool,
}

impl QuantModel {
    /// Quantizes a trained MLP.
    pub fn from_mlp(m: &Mlp, encoding: QuantEncoding) -> Self {
        QuantModel {
            encoding,
            payload: QuantPayload::Mlp(QuantMlp {
                offsets: m.offsets.clone(),
                d_in: m.d_in,
                h1: m.h1,
                h2: m.h2,
                w1: QTensor::from_f32(&m.w1, encoding),
                b1: m.b1.clone(),
                w2: QTensor::from_f32(&m.w2, encoding),
                b2: m.b2.clone(),
                w3: QTensor::from_f32(&m.w3, encoding),
                b3: m.b3,
            }),
        }
    }

    /// Quantizes a trained SVM.
    pub fn from_svm(m: &SvmModel, encoding: QuantEncoding) -> Self {
        QuantModel {
            encoding,
            payload: QuantPayload::Svm(QuantSvm {
                kernel: m.kernel,
                n_features: m.n_features,
                sv_rows: m.sv_rows.clone(),
                sv_coef: QTensor64::from_f64(&m.sv_coef, encoding),
                bias: m.bias,
            }),
        }
    }

    /// Quantizes a trained logreg model.
    pub fn from_logreg(m: &LogRegL1, encoding: QuantEncoding) -> Self {
        QuantModel {
            encoding,
            payload: QuantPayload::LogReg(QuantLogReg {
                offsets: m.offsets.clone(),
                weights: QTensor64::from_f64(&m.weights, encoding),
                intercept: m.intercept,
            }),
        }
    }

    /// The base family this payload quantizes (lowercase, matching
    /// `AnyClassifier::family`).
    pub fn family(&self) -> &'static str {
        match &self.payload {
            QuantPayload::Mlp(_) => "mlp",
            QuantPayload::Svm(_) => "svm",
            QuantPayload::LogReg(_) => "logreg",
        }
    }

    /// Fresh work buffers for this model's shape.
    pub fn scratch(&self) -> QuantScratch {
        match &self.payload {
            QuantPayload::Mlp(m) => QuantScratch {
                active: Vec::new(),
                z: vec![0.0f32; m.h1.max(m.h2)],
                a: vec![0.0f32; m.h1],
                a2: vec![0.0f32; m.h2],
                qa: Vec::with_capacity(m.h1),
                ..QuantScratch::default()
            },
            _ => QuantScratch::default(),
        }
    }

    /// Decision value for one row (logit / SVM margin, as f64).
    pub fn decision_scratch(&self, row: &[u32], s: &mut QuantScratch) -> f64 {
        match &self.payload {
            QuantPayload::Mlp(m) => f64::from(m.logit(row, s)),
            QuantPayload::Svm(m) => m.decision(row),
            QuantPayload::LogReg(m) => m.decision(row),
        }
    }

    /// `predict_row` with external scratch (the batched serving path).
    #[inline]
    pub fn predict_row_scratch(&self, row: &[u32], s: &mut QuantScratch) -> bool {
        self.decision_scratch(row, s) >= 0.0
    }

    /// Name/len/bytes/scale per weight tensor, for `artifact inspect` and
    /// the container's quantization section.
    pub fn tensor_info(&self) -> Vec<(&'static str, usize, usize, Option<f64>)> {
        match &self.payload {
            QuantPayload::Mlp(m) => vec![
                ("w1", m.w1.len(), m.w1.data_bytes(), m.w1.scale()),
                ("w2", m.w2.len(), m.w2.data_bytes(), m.w2.scale()),
                ("w3", m.w3.len(), m.w3.data_bytes(), m.w3.scale()),
            ],
            QuantPayload::Svm(m) => vec![(
                "sv_coef",
                m.sv_coef.len(),
                m.sv_coef.data_bytes(),
                m.sv_coef.scale(),
            )],
            QuantPayload::LogReg(m) => vec![(
                "weights",
                m.weights.len(),
                m.weights.data_bytes(),
                m.weights.scale(),
            )],
        }
    }

    /// Total bytes of the quantized weight tensors plus the full-precision
    /// biases and one-hot offsets kept alongside them — the resident
    /// numeric payload quantization shrinks.
    pub fn weight_bytes(&self) -> usize {
        match &self.payload {
            QuantPayload::Mlp(m) => {
                m.w1.data_bytes()
                    + m.w2.data_bytes()
                    + m.w3.data_bytes()
                    + (m.offsets.len() + m.b1.len() + m.b2.len()) * 4
            }
            QuantPayload::Svm(m) => m.sv_coef.data_bytes() + m.sv_rows.len() * 4,
            QuantPayload::LogReg(m) => m.weights.data_bytes() + m.offsets.len() * 4,
        }
    }

    /// Whether any weight tensor borrows a mapped artifact (mmap load).
    pub fn is_mapped(&self) -> bool {
        match &self.payload {
            QuantPayload::Mlp(m) => m.w1.is_mapped() || m.w2.is_mapped() || m.w3.is_mapped(),
            QuantPayload::Svm(m) => m.sv_rows.is_mapped() || m.sv_coef.is_mapped(),
            QuantPayload::LogReg(m) => m.offsets.is_mapped() || m.weights.is_mapped(),
        }
    }
}

impl Classifier for QuantModel {
    fn predict_row(&self, row: &[u32]) -> bool {
        let mut s = self.scratch();
        self.predict_row_scratch(row, &mut s)
    }
}

impl QuantMlp {
    /// Forward pass on the quantized weights.
    ///
    /// i8: layer 1 is an exact integer gather-sum rescaled once per unit;
    /// layers 2/3 dynamically quantize the ReLU activations per row and run
    /// the exact `i8×i8→i32` kernel, rescaling by the product of the weight
    /// and activation scales. Every float step is a fixed scalar sequence,
    /// so i8 logits are backend- and load-mode-independent bit-for-bit.
    ///
    /// f16: the weight tensors are widened to f32 **once per scratch** (the
    /// serving path reuses one scratch per batch) with the F16C-accelerated
    /// slice kernel, and the dense layers then run the plain f32 kernels.
    /// Widening is lossless, so under the forced-scalar tier this produces
    /// bit-identical logits to per-element dequantize-on-the-fly — while
    /// dropping the per-dot conversion cost from the hot path entirely.
    fn logit(&self, row: &[u32], s: &mut QuantScratch) -> f32 {
        let (d_in, h1, h2) = (self.d_in, self.h1, self.h2);
        if !s.dequantized {
            if let QTensor::F16 { data } = &self.w1 {
                s.w1f.resize(data.len(), 0.0);
                kernels::f16_to_f32_slice(data, &mut s.w1f);
            }
            if let QTensor::F16 { data } = &self.w2 {
                s.w2f.resize(data.len(), 0.0);
                kernels::f16_to_f32_slice(data, &mut s.w2f);
            }
            if let QTensor::F16 { data } = &self.w3 {
                s.w3f.resize(data.len(), 0.0);
                kernels::f16_to_f32_slice(data, &mut s.w3f);
            }
            s.dequantized = true;
        }
        s.active.resize(row.len(), 0);
        for (j, (&code, o)) in row.iter().zip(s.active.iter_mut()).enumerate() {
            *o = self.offsets[j] as usize + code as usize;
        }

        // Layer 1: sparse gather over quantized columns.
        match &self.w1 {
            QTensor::I8 { data, scale } => {
                for u in 0..h1 {
                    let base = u * d_in;
                    let mut acc = 0i32;
                    for &idx in &s.active {
                        acc += i32::from(data[base + idx]);
                    }
                    s.z[u] = self.b1[u] + acc as f32 * scale;
                }
            }
            QTensor::F16 { .. } => {
                for u in 0..h1 {
                    let base = u * d_in;
                    let mut z = self.b1[u];
                    for &idx in &s.active {
                        z += s.w1f[base + idx];
                    }
                    s.z[u] = z;
                }
            }
        }
        kernels::relu_f32(&s.z[..h1], &mut s.a);

        // Layer 2: dense h2 × h1.
        match &self.w2 {
            QTensor::I8 { data, scale } => {
                let a_scale = quantize_activations_i8(&s.a, &mut s.qa);
                let rescale = scale * a_scale;
                for u in 0..h2 {
                    let row_q = &data[u * h1..(u + 1) * h1];
                    s.z[u] = self.b2[u] + rescale * kernels::dot_i8(row_q, &s.qa) as f32;
                }
            }
            QTensor::F16 { .. } => {
                for u in 0..h2 {
                    s.z[u] = kernels::dot_f32(self.b2[u], &s.w2f[u * h1..(u + 1) * h1], &s.a);
                }
            }
        }
        kernels::relu_f32(&s.z[..h2], &mut s.a2);

        // Layer 3: dense 1 × h2.
        match &self.w3 {
            QTensor::I8 { data, scale } => {
                let a_scale = quantize_activations_i8(&s.a2, &mut s.qa);
                self.b3 + scale * a_scale * kernels::dot_i8(data, &s.qa) as f32
            }
            QTensor::F16 { .. } => kernels::dot_f32(self.b3, &s.w3f, &s.a2),
        }
    }
}

impl QuantSvm {
    /// Decision value `Σ dequant(αᵢyᵢ) k(xᵢ, x) + b`. Match counts run on
    /// the exact SIMD kernel; the coefficient dequant + accumulate is a
    /// fixed scalar sequence (backend-independent).
    fn decision(&self, row: &[u32]) -> f64 {
        let d = self.n_features;
        let mut f = self.bias;
        for (i, sv) in self.sv_rows.chunks_exact(d).enumerate() {
            let m = match_count(sv, row);
            f += self.sv_coef.get(i) * self.kernel.from_matches(m, d);
        }
        f
    }
}

impl QuantLogReg {
    /// Decision value. i8 weights sum exactly in i32 before the single
    /// rescale, so the logit is backend-independent bit-for-bit.
    fn decision(&self, row: &[u32]) -> f64 {
        match &self.weights {
            QTensor64::I8 { data, scale } => {
                let mut acc = 0i32;
                for (j, &code) in row.iter().enumerate() {
                    acc += i32::from(data[(self.offsets[j] + code) as usize]);
                }
                self.intercept + f64::from(acc) * scale
            }
            QTensor64::F16 { data } => {
                let mut z = self.intercept;
                for (j, &code) in row.iter().enumerate() {
                    z += f64::from(data[(self.offsets[j] + code) as usize].to_f32());
                }
                z
            }
        }
    }
}

/// Families that support quantization.
pub(crate) fn unsupported(family: &str) -> MlError {
    MlError::Invalid(format!(
        "family `{family}` has no dense weight tensors to quantize \
         (supported: mlp, svm, logreg)"
    ))
}

/// Convenience: quantize any supported base model.
pub fn quantize_classifier(
    model: &crate::any::AnyClassifier,
    encoding: QuantEncoding,
) -> Result<crate::any::AnyClassifier> {
    model.quantize(encoding)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ann::AnnParams;
    use crate::dataset::{CatDataset, FeatureMeta, Provenance};
    use crate::logreg::LogRegParams;
    use crate::svm::SvmParams;
    use rand::{Rng, SeedableRng};

    /// Emulator-style dataset: 6 features of cardinality 4, labels driven
    /// by a noisy majority signal over two features.
    fn emulator_ds(n: usize, seed: u64) -> CatDataset {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let meta: Vec<FeatureMeta> = (0..6)
            .map(|j| FeatureMeta::new(format!("f{j}"), 4, Provenance::Home))
            .collect();
        let mut rows = Vec::with_capacity(n * 6);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let y = rng.gen_bool(0.5);
            for j in 0..6 {
                let code = if j < 2 && rng.gen_bool(0.85) {
                    if y {
                        3
                    } else {
                        0
                    }
                } else {
                    rng.gen_range(0..4)
                };
                rows.push(code);
            }
            labels.push(y);
        }
        CatDataset::new(meta, rows, labels).unwrap()
    }

    fn agreement(a: &[bool], b: &[bool]) -> f64 {
        assert_eq!(a.len(), b.len());
        let same = a.iter().zip(b).filter(|(x, y)| x == y).count();
        same as f64 / a.len() as f64
    }

    #[test]
    fn quantized_mlp_agrees_with_full_precision() {
        let ds = emulator_ds(300, 11);
        let m = Mlp::fit(&ds, AnnParams::small(1e-4, 0.01)).unwrap();
        let full = m.predict(&ds);
        for enc in [QuantEncoding::I8, QuantEncoding::F16] {
            let q = QuantModel::from_mlp(&m, enc);
            assert_eq!(q.family(), "mlp");
            let quant = q.predict(&ds);
            let agree = agreement(&full, &quant);
            assert!(agree >= 0.99, "{} agreement {agree}", enc.name());
        }
    }

    #[test]
    fn quantized_svm_agrees_with_full_precision() {
        let ds = emulator_ds(200, 12);
        let m = SvmModel::fit(&ds, SvmParams::new(KernelKind::Rbf { gamma: 0.5 }, 10.0)).unwrap();
        let full = m.predict(&ds);
        for enc in [QuantEncoding::I8, QuantEncoding::F16] {
            let q = QuantModel::from_svm(&m, enc);
            assert_eq!(q.family(), "svm");
            let agree = agreement(&full, &q.predict(&ds));
            assert!(agree >= 0.99, "{} agreement {agree}", enc.name());
        }
    }

    #[test]
    fn quantized_logreg_agrees_with_full_precision() {
        let ds = emulator_ds(300, 13);
        let m = LogRegL1::fit_single(&ds, 1e-4, LogRegParams::default()).unwrap();
        let full = m.predict(&ds);
        for enc in [QuantEncoding::I8, QuantEncoding::F16] {
            let q = QuantModel::from_logreg(&m, enc);
            assert_eq!(q.family(), "logreg");
            let agree = agreement(&full, &q.predict(&ds));
            assert!(agree >= 0.99, "{} agreement {agree}", enc.name());
        }
    }

    #[test]
    fn i8_predictions_are_scalar_simd_invariant() {
        // The dispatched backend may be AVX2 here while CI also runs the
        // whole suite under HAMLET_FORCE_SCALAR=1 — the assertion is the
        // same in both runs because i8 inference is exact-integer: compare
        // against a hand-rolled scalar evaluation.
        let ds = emulator_ds(100, 14);
        let m = Mlp::fit(&ds, AnnParams::small(1e-4, 0.01)).unwrap();
        let q = QuantModel::from_mlp(&m, QuantEncoding::I8);
        let mut s = q.scratch();
        for i in 0..ds.n_rows() {
            let fast = q.decision_scratch(ds.row(i), &mut s);
            let slow = q.decision_scratch(ds.row(i), &mut q.scratch());
            assert_eq!(fast.to_bits(), slow.to_bits(), "row {i}");
        }
    }

    #[test]
    fn f16_batch_dequant_matches_fresh_scratch() {
        // The batched serving path reuses one scratch (weights widened
        // once); a fresh scratch per row re-widens every time. Widening is
        // lossless and the kernels see identical f32 inputs either way, so
        // the logits must agree bit-for-bit.
        let ds = emulator_ds(100, 16);
        let m = Mlp::fit(&ds, AnnParams::small(1e-4, 0.01)).unwrap();
        let q = QuantModel::from_mlp(&m, QuantEncoding::F16);
        let mut s = q.scratch();
        for i in 0..ds.n_rows() {
            let fast = q.decision_scratch(ds.row(i), &mut s);
            let slow = q.decision_scratch(ds.row(i), &mut q.scratch());
            assert_eq!(fast.to_bits(), slow.to_bits(), "row {i}");
        }
    }

    #[test]
    fn tensor_info_reports_scales_and_bytes() {
        let ds = emulator_ds(60, 15);
        let m = Mlp::fit(&ds, AnnParams::small(1e-3, 0.01)).unwrap();
        let qi = QuantModel::from_mlp(&m, QuantEncoding::I8);
        let info = qi.tensor_info();
        assert_eq!(info.len(), 3);
        for (name, len, bytes, scale) in &info {
            assert!(!name.is_empty());
            assert_eq!(len, bytes, "i8 is one byte per element");
            assert!(scale.unwrap() > 0.0);
        }
        let qh = QuantModel::from_mlp(&m, QuantEncoding::F16);
        for (_, len, bytes, scale) in qh.tensor_info() {
            assert_eq!(bytes, len * 2, "f16 is two bytes per element");
            assert!(scale.is_none());
        }
        assert_eq!(qi.encoding.name(), "i8");
        assert_eq!(qh.encoding.name(), "f16");
        assert!(!qi.is_mapped());
    }

    #[test]
    fn encoding_parse_roundtrip() {
        assert_eq!(QuantEncoding::parse("i8"), Some(QuantEncoding::I8));
        assert_eq!(QuantEncoding::parse("f16"), Some(QuantEncoding::F16));
        assert_eq!(QuantEncoding::parse("f32"), None);
        assert_eq!(QuantEncoding::I8.name(), "i8");
    }
}
