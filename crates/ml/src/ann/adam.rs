//! Adam optimizer (Kingma & Ba, ICLR 2015) — the paper's choice, with the
//! algorithm's published default moment decays.

/// Per-tensor Adam state.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
    m: Vec<f64>,
    v: Vec<f64>,
}

impl Adam {
    /// Fresh optimizer state for a tensor of `len` parameters.
    pub fn new(len: usize, lr: f64) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: vec![0.0; len],
            v: vec![0.0; len],
        }
    }

    /// One update step: `w ← w − lr · m̂ / (√v̂ + ε)` with bias correction.
    pub fn step(&mut self, weights: &mut [f32], grads: &[f32]) {
        debug_assert_eq!(weights.len(), grads.len());
        debug_assert_eq!(weights.len(), self.m.len());
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..weights.len() {
            let g = f64::from(grads[i]);
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            let m_hat = self.m[i] / b1t;
            let v_hat = self.v[i] / b2t;
            weights[i] -= (self.lr * m_hat / (v_hat.sqrt() + self.eps)) as f32;
        }
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_step_moves_by_lr() {
        // With bias correction, the first Adam step ≈ lr · sign(g).
        let mut opt = Adam::new(1, 0.1);
        let mut w = [1.0f32];
        opt.step(&mut w, &[0.5]);
        assert!((f64::from(w[0]) - (1.0 - 0.1)).abs() < 1e-6);
        assert_eq!(opt.steps(), 1);
    }

    #[test]
    fn converges_on_a_quadratic() {
        // Minimise (w − 3)²; gradient 2(w − 3).
        let mut opt = Adam::new(1, 0.05);
        let mut w = [0.0f32];
        for _ in 0..2000 {
            let g = 2.0 * (w[0] - 3.0);
            opt.step(&mut w, &[g]);
        }
        assert!((w[0] - 3.0).abs() < 1e-2, "w = {}", w[0]);
    }

    #[test]
    fn zero_gradient_is_a_fixed_point_from_cold_start() {
        let mut opt = Adam::new(2, 0.1);
        let mut w = [2.0f32, -1.0];
        opt.step(&mut w, &[0.0, 0.0]);
        assert_eq!(w, [2.0, -1.0]);
    }
}
