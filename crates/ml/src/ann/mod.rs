//! Multi-layer perceptron with Adam, matching the paper's ANN (§3.2):
//! two hidden ReLU layers (256 and 64 units), sigmoid output, binary
//! cross-entropy loss, L2 weight decay, Adam optimizer — tuning the L2
//! coefficient over {1e-4, 1e-3, 1e-2} and the learning rate over
//! {1e-3, 1e-2, 1e-1}.
//!
//! Categorical rows are consumed as *sparse one-hot* vectors: exactly one
//! active index per feature, so the first layer's forward/backward pass
//! gathers/scatters `d` columns instead of multiplying a huge dense vector.

pub mod adam;

use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;

use crate::binenc::PodVec;
use crate::dataset::CatDataset;
use crate::error::{MlError, Result};
use crate::kernels;
use crate::model::Classifier;
use adam::Adam;

/// ANN hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AnnParams {
    /// First hidden layer width (paper: 256).
    pub hidden1: usize,
    /// Second hidden layer width (paper: 64).
    pub hidden2: usize,
    /// L2 regularization coefficient.
    pub l2: f64,
    /// Adam learning rate.
    pub lr: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Seed for init + shuffling.
    pub seed: u64,
}

impl AnnParams {
    /// Paper-shaped defaults.
    pub fn new(l2: f64, lr: f64) -> Self {
        Self {
            hidden1: 256,
            hidden2: 64,
            l2,
            lr,
            epochs: 15,
            batch_size: 64,
            seed: 0xA11,
        }
    }

    /// Smaller architecture for simulations/tests.
    pub fn small(l2: f64, lr: f64) -> Self {
        Self {
            hidden1: 32,
            hidden2: 16,
            l2,
            lr,
            epochs: 40,
            batch_size: 32,
            seed: 0xA11,
        }
    }

    /// The paper's 3×3 grid: L2 ∈ {1e-4,1e-3,1e-2} × lr ∈ {1e-3,1e-2,1e-1}.
    pub fn paper_grid() -> Vec<AnnParams> {
        let mut grid = Vec::with_capacity(9);
        for &l2 in &[1e-4, 1e-3, 1e-2] {
            for &lr in &[1e-3, 1e-2, 1e-1] {
                grid.push(AnnParams::new(l2, lr));
            }
        }
        grid
    }
}

/// A trained MLP.
///
/// Weight arrays live behind [`PodVec`] so a format-v3 artifact loaded via
/// mmap serves predictions straight out of the mapped file; training always
/// produces (and mutates) owned storage.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Mlp {
    pub(crate) offsets: PodVec<u32>,
    pub(crate) d_in: usize,
    pub(crate) h1: usize,
    pub(crate) h2: usize,
    // Row-major weights: w1 is h1 × d_in, w2 is h2 × h1, w3 is 1 × h2.
    pub(crate) w1: PodVec<f32>,
    pub(crate) b1: PodVec<f32>,
    pub(crate) w2: PodVec<f32>,
    pub(crate) b2: PodVec<f32>,
    pub(crate) w3: PodVec<f32>,
    pub(crate) b3: f32,
}

impl Mlp {
    /// Trains the network with minibatch Adam.
    #[allow(clippy::needless_range_loop)] // unit index u spans z/a/d/grad buffers
    pub fn fit(ds: &CatDataset, params: AnnParams) -> Result<Self> {
        let n = ds.n_rows();
        if n == 0 {
            return Err(MlError::Shape {
                detail: "cannot fit an MLP on an empty dataset".into(),
            });
        }
        let offsets = ds.onehot_offsets();
        let d_in = ds.onehot_dim();
        let (h1, h2) = (params.hidden1, params.hidden2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(params.seed);

        // He-style init scaled by fan-in.
        let mut init = |fan_in: usize, len: usize| -> Vec<f32> {
            let scale = (2.0 / fan_in as f64).sqrt();
            (0..len)
                .map(|_| (rng.gen::<f64>() * 2.0 - 1.0) * scale)
                .map(|v| v as f32)
                .collect()
        };
        let mut net = Mlp {
            offsets: offsets.into(),
            d_in,
            h1,
            h2,
            w1: init(ds.n_features().max(1), h1 * d_in).into(),
            b1: vec![0.0; h1].into(),
            w2: init(h1, h2 * h1).into(),
            b2: vec![0.0; h2].into(),
            w3: init(h2, h2).into(),
            b3: 0.0,
        };

        net.sgd_epochs(ds, &params, &mut rng);
        Ok(net)
    }

    /// Warm-start refresh: continue minibatch Adam from this network's
    /// weights on fresh data — the online-learning path, where a buffer of
    /// production-labeled rows refines the artifact without retraining from
    /// scratch. Optimizer moments restart (they are not persisted), which
    /// in practice just means a short re-warmup of the step sizes.
    pub fn fit_incremental(&self, ds: &CatDataset, params: AnnParams) -> Result<Self> {
        if ds.n_rows() == 0 {
            return Err(MlError::Shape {
                detail: "cannot refresh an MLP on an empty dataset".into(),
            });
        }
        if ds.onehot_dim() != self.d_in || ds.onehot_offsets().as_slice() != self.offsets.as_slice()
        {
            return Err(MlError::Shape {
                detail: format!(
                    "refresh data has one-hot dim {} but the network was trained with {}",
                    ds.onehot_dim(),
                    self.d_in
                ),
            });
        }
        // Clone is cheap relative to training; a mapped (mmap-backed) source
        // converts to owned storage on first mutation via `PodVec`.
        let mut net = self.clone();
        let mut rng = rand::rngs::StdRng::seed_from_u64(params.seed);
        net.sgd_epochs(ds, &params, &mut rng);
        Ok(net)
    }

    /// The minibatch-Adam epoch loop shared by [`Mlp::fit`] (fresh He-init
    /// weights) and [`Mlp::fit_incremental`] (warm-started weights).
    #[allow(clippy::needless_range_loop)] // unit index u spans z/a/d/grad buffers
    fn sgd_epochs(&mut self, ds: &CatDataset, params: &AnnParams, rng: &mut rand::rngs::StdRng) {
        let net = self;
        let n = ds.n_rows();
        let (h1, h2) = (net.h1, net.h2);
        let d_in = net.d_in;
        let mut opt_w1 = Adam::new(net.w1.len(), params.lr);
        let mut opt_b1 = Adam::new(h1, params.lr);
        let mut opt_w2 = Adam::new(net.w2.len(), params.lr);
        let mut opt_b2 = Adam::new(h2, params.lr);
        let mut opt_w3 = Adam::new(h2, params.lr);
        let mut opt_b3 = Adam::new(1, params.lr);

        // Gradient accumulators (batch).
        let mut g_w1 = vec![0.0f32; net.w1.len()];
        let mut g_b1 = vec![0.0f32; h1];
        let mut g_w2 = vec![0.0f32; net.w2.len()];
        let mut g_b2 = vec![0.0f32; h2];
        let mut g_w3 = vec![0.0f32; h2];
        let mut g_b3 = [0.0f32; 1];

        // Per-sample work buffers.
        let mut active = vec![0usize; ds.n_features()];
        let mut z1 = vec![0.0f32; h1];
        let mut a1 = vec![0.0f32; h1];
        let mut z2 = vec![0.0f32; h2];
        let mut a2 = vec![0.0f32; h2];
        let mut d1 = vec![0.0f32; h1];
        let mut d2 = vec![0.0f32; h2];

        let mut order: Vec<usize> = (0..n).collect();
        for _epoch in 0..params.epochs {
            order.shuffle(rng);
            for batch in order.chunks(params.batch_size) {
                g_w1.iter_mut().for_each(|g| *g = 0.0);
                g_b1.iter_mut().for_each(|g| *g = 0.0);
                g_w2.iter_mut().for_each(|g| *g = 0.0);
                g_b2.iter_mut().for_each(|g| *g = 0.0);
                g_w3.iter_mut().for_each(|g| *g = 0.0);
                g_b3[0] = 0.0;

                for &i in batch {
                    net.active_indices(ds.row(i), &mut active);
                    let z3 = net.forward(&active, &mut z1, &mut a1, &mut z2, &mut a2);
                    let y = f32::from(u8::from(ds.label(i)));
                    let p = sigmoid(z3);
                    let delta3 = p - y; // dBCE/dz3

                    // Layer 3 gradients.
                    for u in 0..h2 {
                        g_w3[u] += delta3 * a2[u];
                    }
                    g_b3[0] += delta3;

                    // Backprop into layer 2.
                    for u in 0..h2 {
                        d2[u] = if z2[u] > 0.0 { delta3 * net.w3[u] } else { 0.0 };
                    }
                    for u in 0..h2 {
                        if d2[u] != 0.0 {
                            let row = &mut g_w2[u * h1..(u + 1) * h1];
                            for (gw, &a) in row.iter_mut().zip(a1.iter()) {
                                *gw += d2[u] * a;
                            }
                            g_b2[u] += d2[u];
                        }
                    }

                    // Backprop into layer 1: d1 = W2ᵀ d2 ⊙ relu'(z1).
                    d1.iter_mut().for_each(|v| *v = 0.0);
                    for u in 0..h2 {
                        if d2[u] != 0.0 {
                            let row = &net.w2[u * h1..(u + 1) * h1];
                            for (dv, &w) in d1.iter_mut().zip(row.iter()) {
                                *dv += d2[u] * w;
                            }
                        }
                    }
                    for (u, dv) in d1.iter_mut().enumerate() {
                        if z1[u] <= 0.0 {
                            *dv = 0.0;
                        }
                    }

                    // Sparse scatter into W1 gradients.
                    for (u, &dv) in d1.iter().enumerate() {
                        if dv != 0.0 {
                            let base = u * d_in;
                            for &idx in &active {
                                g_w1[base + idx] += dv;
                            }
                            g_b1[u] += dv;
                        }
                    }
                }

                let inv = 1.0 / batch.len() as f32;
                let l2 = params.l2 as f32;
                scale_and_decay(&mut g_w1, &net.w1, inv, l2);
                scale_only(&mut g_b1, inv);
                scale_and_decay(&mut g_w2, &net.w2, inv, l2);
                scale_only(&mut g_b2, inv);
                scale_and_decay(&mut g_w3, &net.w3, inv, l2);
                g_b3[0] *= inv;

                opt_w1.step(&mut net.w1, &g_w1);
                opt_b1.step(&mut net.b1, &g_b1);
                opt_w2.step(&mut net.w2, &g_w2);
                opt_b2.step(&mut net.b2, &g_b2);
                opt_w3.step(&mut net.w3, &g_w3);
                let mut b3 = [net.b3];
                opt_b3.step(&mut b3, &g_b3);
                net.b3 = b3[0];
            }
        }
    }

    #[inline]
    fn active_indices(&self, row: &[u32], out: &mut [usize]) {
        for (j, (&code, o)) in row.iter().zip(out.iter_mut()).enumerate() {
            *o = self.offsets[j] as usize + code as usize;
        }
    }

    /// Forward pass, filling the work buffers; returns the output logit.
    ///
    /// The sparse one-hot gather into layer 1 stays scalar (`active` holds
    /// one index per categorical feature — a handful of adds); the dense
    /// hidden→hidden and hidden→output products run on the dispatched
    /// [`kernels`], so a 256×64 paper-shaped network rides AVX2 when the
    /// host has it. Under `HAMLET_FORCE_SCALAR` the kernel reference path
    /// reproduces the historical accumulation order bit-for-bit.
    fn forward(
        &self,
        active: &[usize],
        z1: &mut [f32],
        a1: &mut [f32],
        z2: &mut [f32],
        a2: &mut [f32],
    ) -> f32 {
        let d_in = self.d_in;
        for (u, z_out) in z1.iter_mut().enumerate().take(self.h1) {
            let row = &self.w1[u * d_in..(u + 1) * d_in];
            let mut z = self.b1[u];
            for &idx in active {
                z += row[idx];
            }
            *z_out = z;
        }
        kernels::relu_f32(z1, a1);
        for (u, z_out) in z2.iter_mut().enumerate().take(self.h2) {
            let row = &self.w2[u * self.h1..(u + 1) * self.h1];
            *z_out = kernels::dot_f32(self.b2[u], row, a1);
        }
        kernels::relu_f32(z2, a2);
        kernels::dot_f32(self.b3, &self.w3, a2)
    }

    /// Reusable per-thread forward-pass buffers: one allocation for an
    /// entire batch instead of five per row.
    pub fn scratch(&self) -> MlpScratch {
        MlpScratch {
            active: Vec::new(),
            z1: vec![0.0f32; self.h1],
            a1: vec![0.0f32; self.h1],
            z2: vec![0.0f32; self.h2],
            a2: vec![0.0f32; self.h2],
        }
    }

    /// Output logit for one categorical row, reusing caller buffers. The
    /// scratch must come from [`Mlp::scratch`] on a same-shaped network.
    pub fn logit_scratch(&self, row: &[u32], s: &mut MlpScratch) -> f32 {
        s.active.resize(row.len(), 0);
        self.active_indices(row, &mut s.active);
        self.forward(&s.active, &mut s.z1, &mut s.a1, &mut s.z2, &mut s.a2)
    }

    /// Output logit for one categorical row.
    pub fn logit(&self, row: &[u32]) -> f32 {
        let mut s = self.scratch();
        self.logit_scratch(row, &mut s)
    }

    /// Predicted probability of the positive class.
    pub fn probability(&self, row: &[u32]) -> f64 {
        f64::from(sigmoid(self.logit(row)))
    }
}

/// Work buffers for [`Mlp::logit_scratch`]; create via [`Mlp::scratch`].
#[derive(Debug, Clone)]
pub struct MlpScratch {
    active: Vec<usize>,
    z1: Vec<f32>,
    a1: Vec<f32>,
    z2: Vec<f32>,
    a2: Vec<f32>,
}

fn scale_and_decay(grad: &mut [f32], weights: &[f32], inv: f32, l2: f32) {
    for (g, &w) in grad.iter_mut().zip(weights) {
        *g = *g * inv + l2 * w;
    }
}

fn scale_only(grad: &mut [f32], inv: f32) {
    for g in grad.iter_mut() {
        *g *= inv;
    }
}

#[inline]
fn sigmoid(z: f32) -> f32 {
    1.0 / (1.0 + (-z).exp())
}

impl Classifier for Mlp {
    fn predict_row(&self, row: &[u32]) -> bool {
        self.logit(row) >= 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{CatDataset, FeatureMeta, Provenance};

    fn meta(d: usize, k: u32) -> Vec<FeatureMeta> {
        (0..d)
            .map(|j| FeatureMeta::new(format!("f{j}"), k, Provenance::Home))
            .collect()
    }

    fn xor(n_copies: usize) -> CatDataset {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for a in 0..2u32 {
            for b in 0..2u32 {
                for _ in 0..n_copies {
                    rows.extend_from_slice(&[a, b]);
                    labels.push((a ^ b) == 1);
                }
            }
        }
        CatDataset::new(meta(2, 2), rows, labels).unwrap()
    }

    #[test]
    fn learns_xor() {
        let ds = xor(8);
        let m = Mlp::fit(&ds, AnnParams::small(1e-4, 0.01)).unwrap();
        assert!(
            (m.accuracy(&ds) - 1.0).abs() < 1e-12,
            "accuracy {}",
            m.accuracy(&ds)
        );
    }

    #[test]
    fn learns_linear_signal() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..200 {
            let y = rng.gen_bool(0.5);
            rows.push(u32::from(y));
            rows.push(rng.gen_range(0..3));
            labels.push(y);
        }
        let ds = CatDataset::new(meta(2, 3), rows, labels).unwrap();
        let m = Mlp::fit(&ds, AnnParams::small(1e-4, 0.01)).unwrap();
        assert!(m.accuracy(&ds) > 0.98);
    }

    #[test]
    fn probabilities_in_unit_interval() {
        let ds = xor(4);
        let m = Mlp::fit(&ds, AnnParams::small(1e-3, 0.01)).unwrap();
        for i in 0..ds.n_rows() {
            let p = m.probability(ds.row(i));
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn seeded_training_is_reproducible() {
        let ds = xor(4);
        let p = AnnParams::small(1e-4, 0.01);
        let a = Mlp::fit(&ds, p).unwrap();
        let b = Mlp::fit(&ds, p).unwrap();
        for i in 0..ds.n_rows() {
            assert_eq!(a.logit(ds.row(i)), b.logit(ds.row(i)));
        }
    }

    #[test]
    fn incremental_refresh_preserves_learned_signal() {
        let ds = xor(8);
        let base = Mlp::fit(&ds, AnnParams::small(1e-4, 0.01)).unwrap();
        // A short refresh on the same distribution keeps XOR solved.
        let mut short = AnnParams::small(1e-4, 0.005);
        short.epochs = 3;
        let refreshed = base.fit_incremental(&ds, short).unwrap();
        assert!(
            (refreshed.accuracy(&ds) - 1.0).abs() < 1e-12,
            "accuracy {}",
            refreshed.accuracy(&ds)
        );
        // Warm start actually starts from the trained weights: 0 epochs is
        // an identity refresh.
        let mut zero = short;
        zero.epochs = 0;
        let same = base.fit_incremental(&ds, zero).unwrap();
        for i in 0..ds.n_rows() {
            assert_eq!(same.logit(ds.row(i)), base.logit(ds.row(i)));
        }
        // Shape-incompatible refresh data is rejected.
        let narrow = CatDataset::new(meta(1, 2), vec![0, 1], vec![true, false]).unwrap();
        assert!(base.fit_incremental(&narrow, short).is_err());
    }

    #[test]
    fn strong_l2_shrinks_weights() {
        let ds = xor(8);
        let weak = Mlp::fit(&ds, AnnParams::small(1e-5, 0.01)).unwrap();
        let strong = Mlp::fit(&ds, AnnParams::small(1.0, 0.01)).unwrap();
        let norm = |m: &Mlp| -> f32 { m.w1.iter().map(|w| w * w).sum::<f32>().sqrt() };
        assert!(norm(&strong) < norm(&weak));
    }

    #[test]
    fn paper_grid_is_3x3() {
        assert_eq!(AnnParams::paper_grid().len(), 9);
    }

    #[test]
    fn training_reduces_cross_entropy() {
        // Optimisation sanity: more epochs ⇒ lower average BCE on the
        // training set (same seed, same architecture).
        let ds = xor(6);
        let bce = |m: &Mlp| -> f64 {
            (0..ds.n_rows())
                .map(|i| {
                    let p = m.probability(ds.row(i)).clamp(1e-9, 1.0 - 1e-9);
                    let y = f64::from(u8::from(ds.label(i)));
                    -(y * p.ln() + (1.0 - y) * (1.0 - p).ln())
                })
                .sum::<f64>()
                / ds.n_rows() as f64
        };
        let mut short = AnnParams::small(1e-4, 0.01);
        short.epochs = 1;
        let mut long = short;
        long.epochs = 60;
        let loss_short = bce(&Mlp::fit(&ds, short).unwrap());
        let loss_long = bce(&Mlp::fit(&ds, long).unwrap());
        assert!(
            loss_long < loss_short,
            "60 epochs ({loss_long}) should beat 1 epoch ({loss_short})"
        );
        assert!(
            loss_long < 0.2,
            "converged loss should be small: {loss_long}"
        );
    }
}
