//! The classifier abstraction shared by every model in the crate.

use crate::dataset::CatDataset;

/// A trained binary classifier over categorical rows.
pub trait Classifier: Send + Sync {
    /// Predicts the label for one row of categorical codes.
    fn predict_row(&self, row: &[u32]) -> bool;

    /// Predicts labels for every row of a dataset.
    fn predict(&self, ds: &CatDataset) -> Vec<bool> {
        (0..ds.n_rows())
            .map(|i| self.predict_row(ds.row(i)))
            .collect()
    }

    /// Accuracy on a labelled dataset.
    fn accuracy(&self, ds: &CatDataset) -> f64 {
        crate::metrics::accuracy(&self.predict(ds), ds.labels())
    }
}

impl<C: Classifier + ?Sized> Classifier for Box<C> {
    fn predict_row(&self, row: &[u32]) -> bool {
        (**self).predict_row(row)
    }
}

/// A trivial majority-class classifier; the baseline every model must beat
/// and a convenient stub for tests.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct MajorityClass {
    /// The constant prediction.
    pub positive: bool,
}

impl MajorityClass {
    /// Fits by counting labels.
    pub fn fit(ds: &CatDataset) -> Self {
        Self {
            positive: 2 * ds.pos_count() >= ds.n_rows(),
        }
    }
}

impl Classifier for MajorityClass {
    fn predict_row(&self, _row: &[u32]) -> bool {
        self.positive
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{CatDataset, FeatureMeta, Provenance};

    fn ds(labels: Vec<bool>) -> CatDataset {
        let n = labels.len();
        CatDataset::new(
            vec![FeatureMeta::new("f", 1, Provenance::Home)],
            vec![0; n],
            labels,
        )
        .unwrap()
    }

    #[test]
    fn majority_class_fits_and_scores() {
        let d = ds(vec![true, true, false]);
        let m = MajorityClass::fit(&d);
        assert!(m.positive);
        assert!((m.accuracy(&d) - 2.0 / 3.0).abs() < 1e-12);
        let boxed: Box<dyn Classifier> = Box::new(m);
        assert!(boxed.predict_row(&[0]));
    }

    #[test]
    fn tie_breaks_positive() {
        let d = ds(vec![true, false]);
        assert!(MajorityClass::fit(&d).positive);
    }
}
