//! Property-based tests of the classifiers' public-API invariants.

use proptest::prelude::*;

use hamlet_ml::prelude::*;

/// A random dataset whose labels are a *deterministic function of the row*
/// (XOR of parity bits), so no two identical rows disagree — the condition
/// under which an unpruned tree must fit perfectly.
fn consistent_dataset() -> impl Strategy<Value = CatDataset> {
    (2usize..40, 1usize..4, 2u32..5, 0u64..1_000).prop_map(|(n, d, k, seed)| {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let features: Vec<FeatureMeta> = (0..d)
            .map(|j| FeatureMeta::new(format!("f{j}"), k, Provenance::Home))
            .collect();
        let mut rows = Vec::with_capacity(n * d);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let row: Vec<u32> = (0..d).map(|_| rng.gen_range(0..k)).collect();
            let label = row.iter().map(|&c| c & 1).sum::<u32>() % 2 == 0;
            rows.extend_from_slice(&row);
            labels.push(label);
        }
        CatDataset::new(features, rows, labels).unwrap()
    })
}

/// Any random (possibly label-conflicting) dataset.
fn any_dataset() -> impl Strategy<Value = CatDataset> {
    (2usize..40, 1usize..4, 2u32..5, 0u64..1_000).prop_map(|(n, d, k, seed)| {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xABCD);
        let features: Vec<FeatureMeta> = (0..d)
            .map(|j| FeatureMeta::new(format!("f{j}"), k, Provenance::Home))
            .collect();
        let rows: Vec<u32> = (0..n * d).map(|_| rng.gen_range(0..k)).collect();
        let labels: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
        CatDataset::new(features, rows, labels).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn unpruned_tree_at_least_matches_majority_and_fits_consistent_data(
        ds in consistent_dataset()
    ) {
        let tree = DecisionTree::fit(
            &ds,
            TreeParams::new(SplitCriterion::Gini).with_minsplit(2).with_cp(0.0),
        ).unwrap();
        let majority = MajorityClass::fit(&ds);
        prop_assert!(tree.accuracy(&ds) + 1e-12 >= majority.accuracy(&ds));
        // Consistent labels + greedy may stall on zero-gain plateaus only
        // when no single feature has gain anywhere on the path; parity
        // labels CAN be such a plateau, so perfect fit is only guaranteed
        // when the tree actually split. When it didn't, it must equal the
        // majority baseline exactly.
        if tree.n_nodes() > 1 {
            prop_assert!(tree.accuracy(&ds) >= majority.accuracy(&ds));
        } else {
            prop_assert_eq!(tree.accuracy(&ds), majority.accuracy(&ds));
        }
    }

    #[test]
    fn tree_depth_and_leaves_are_bounded(ds in any_dataset()) {
        let max_depth = 4usize;
        let tree = DecisionTree::fit(
            &ds,
            TreeParams::new(SplitCriterion::InfoGain)
                .with_minsplit(2)
                .with_cp(0.0)
                .with_max_depth(max_depth),
        ).unwrap();
        prop_assert!(tree.depth() <= max_depth);
        prop_assert!(tree.n_leaves() <= ds.n_rows());
        prop_assert_eq!(tree.n_nodes() % 2, 1, "binary trees have odd node counts");
    }

    #[test]
    fn svm_dual_constraints_hold(ds in any_dataset(), c_idx in 0usize..3) {
        let c = [0.5, 5.0, 50.0][c_idx];
        let model = SvmModel::fit(
            &ds,
            SvmParams::new(KernelKind::Rbf { gamma: 0.5 }, c),
        ).unwrap();
        let sum: f64 = model.sv_coefficients().iter().sum();
        prop_assert!(sum.abs() < 1e-6, "Σ αy = {sum}");
        for &coef in model.sv_coefficients() {
            prop_assert!(coef.abs() <= c + 1e-9, "|αy| = {} > C = {c}", coef.abs());
        }
    }

    #[test]
    fn svm_prediction_matches_decision_sign(ds in any_dataset()) {
        let model = SvmModel::fit(
            &ds,
            SvmParams::new(KernelKind::Linear, 1.0),
        ).unwrap();
        for i in 0..ds.n_rows() {
            let row = ds.row(i);
            prop_assert_eq!(model.predict_row(row), model.decision(row) >= 0.0);
        }
    }

    #[test]
    fn nb_posterior_is_a_probability_everywhere(ds in any_dataset()) {
        let nb = NaiveBayes::fit(&ds).unwrap();
        let k = ds.feature(0).cardinality;
        // Probe the whole first-feature domain, including codes unseen in
        // training.
        for code in 0..k {
            let mut row: Vec<u32> = ds.row(0).to_vec();
            row[0] = code;
            let p = nb.posterior_pos(&row);
            prop_assert!((0.0..=1.0).contains(&p) && p.is_finite());
            prop_assert_eq!(nb.predict_row(&row), p >= 0.5);
        }
    }

    #[test]
    fn knn_memorises_unique_rows(seed in 0u64..500) {
        use rand::{seq::SliceRandom, SeedableRng};
        // Build rows that are all distinct: codes enumerate a grid.
        let k = 5u32;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut all: Vec<(u32, u32)> = (0..k).flat_map(|a| (0..k).map(move |b| (a, b))).collect();
        all.shuffle(&mut rng);
        all.truncate(12);
        let features: Vec<FeatureMeta> = (0..2)
            .map(|j| FeatureMeta::new(format!("f{j}"), k, Provenance::Home))
            .collect();
        let rows: Vec<u32> = all.iter().flat_map(|&(a, b)| [a, b]).collect();
        let labels: Vec<bool> = all.iter().map(|&(a, b)| (a + b) % 2 == 0).collect();
        let ds = CatDataset::new(features, rows, labels).unwrap();
        let knn = OneNearestNeighbor::fit(&ds).unwrap();
        prop_assert_eq!(knn.accuracy(&ds), 1.0);
    }

    #[test]
    fn logreg_stays_finite_and_bounded(ds in any_dataset()) {
        let model = LogRegL1::fit_path(&ds, &ds, LogRegParams {
            nlambda: 5,
            max_iter: 50,
            ..Default::default()
        }).unwrap();
        prop_assert!(model.nnz() <= ds.onehot_dim());
        for i in 0..ds.n_rows() {
            let z = model.decision(ds.row(i));
            prop_assert!(z.is_finite());
            let p = model.probability(ds.row(i));
            prop_assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn grid_search_returns_a_grid_cell(ds in consistent_dataset()) {
        let grid = vec![
            TreeParams::new(SplitCriterion::Gini).with_minsplit(2).with_cp(0.0),
            TreeParams::new(SplitCriterion::Gini).with_minsplit(5).with_cp(0.01),
            TreeParams::new(SplitCriterion::Gini).with_minsplit(100),
        ];
        let out = grid_search(&grid, &ds, &ds, |p, t| DecisionTree::fit(t, *p)).unwrap();
        prop_assert!(grid.contains(&out.params));
        prop_assert_eq!(out.evals.len(), grid.len());
        // The winner's val accuracy is the max over all evals.
        let best = out.evals.iter().map(|&(_, a)| a).fold(f64::MIN, f64::max);
        prop_assert!((out.val_accuracy - best).abs() < 1e-12);
    }

    #[test]
    fn split_50_25_25_partitions_rows(ds in any_dataset(), seed in 0u64..100) {
        let s = split_50_25_25(&ds, seed);
        prop_assert_eq!(
            s.train.n_rows() + s.val.n_rows() + s.test.n_rows(),
            ds.n_rows()
        );
        prop_assert!(s.train.n_rows() >= 1);
    }

    #[test]
    fn match_matrix_is_a_valid_gram_basis(ds in any_dataset()) {
        let mm = MatchMatrix::compute(&ds);
        let d = ds.n_features() as u32;
        for i in 0..ds.n_rows() {
            prop_assert_eq!(mm.get(i, i), d);
            for j in 0..ds.n_rows() {
                prop_assert_eq!(mm.get(i, j), mm.get(j, i));
                prop_assert!(mm.get(i, j) <= d);
            }
        }
    }
}
