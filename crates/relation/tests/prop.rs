//! Property-based tests for the relational substrate.
//!
//! The load-bearing invariant of the whole paper is that a KFK join plants
//! the functional dependency `FK → X_R` in its output. We fuzz random star
//! schemas and verify it always holds, along with the join's
//! order-preserving / non-selective contract.

use proptest::prelude::*;
use std::sync::Arc;

use hamlet_relation::fd::check_fd;
use hamlet_relation::prelude::*;
use hamlet_relation::stats::entropy;

/// Strategy producing a random (fact, dimension) star with consistent codes.
fn star_strategy() -> impl Strategy<Value = StarSchema> {
    // n_r in 1..=12, n_s in 1..=60, d_r in 1..=4 foreign features.
    (1u32..=12, 1usize..=60, 1usize..=4).prop_flat_map(|(n_r, n_s, d_r)| {
        let fk_codes = proptest::collection::vec(0..n_r, n_s);
        let y_codes = proptest::collection::vec(0u32..2, n_s);
        let xr_cols =
            proptest::collection::vec(proptest::collection::vec(0u32..3, n_r as usize), d_r);
        (fk_codes, y_codes, xr_cols).prop_map(move |(fk, y, xrs)| {
            let key_dom = CatDomain::synthetic("rid", n_r).into_shared();
            let bin = CatDomain::synthetic("bin", 2).into_shared();
            let tri = CatDomain::synthetic("tri", 3).into_shared();

            let fact = Table::new(
                TableSchema::new(
                    "S",
                    vec![
                        ColumnDef::new("y", ColumnRole::Target),
                        ColumnDef::new("fk", ColumnRole::ForeignKey { dim: 0 }),
                    ],
                )
                .unwrap(),
                vec![
                    CatColumn::new(Arc::clone(&bin), y).unwrap(),
                    CatColumn::new(Arc::clone(&key_dom), fk).unwrap(),
                ],
            )
            .unwrap();

            let mut defs = vec![ColumnDef::new("rid", ColumnRole::Id)];
            let mut cols = vec![CatColumn::new(Arc::clone(&key_dom), (0..n_r).collect()).unwrap()];
            for (j, xr) in xrs.into_iter().enumerate() {
                defs.push(ColumnDef::new(format!("xr{j}"), ColumnRole::HomeFeature));
                cols.push(CatColumn::new(Arc::clone(&tri), xr).unwrap());
            }
            let dim = Table::new(TableSchema::new("R", defs).unwrap(), cols).unwrap();
            StarSchema::new(fact, vec![Dimension::new(dim, "rid", "fk")]).unwrap()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn join_output_always_satisfies_fk_fd(star in star_strategy()) {
        let joined = star.materialize_all().unwrap();
        let xr_names: Vec<String> = joined
            .schema()
            .columns()
            .iter()
            .filter(|c| matches!(c.role, ColumnRole::ForeignFeature { .. }))
            .map(|c| c.name.clone())
            .collect();
        let refs: Vec<&str> = xr_names.iter().map(String::as_str).collect();
        prop_assert!(check_fd(&joined, "fk", &refs).unwrap());
    }

    #[test]
    fn join_is_non_selective_and_order_preserving(star in star_strategy()) {
        let joined = star.materialize_all().unwrap();
        prop_assert_eq!(joined.n_rows(), star.fact().n_rows());
        prop_assert_eq!(
            joined.column("y").unwrap().codes(),
            star.fact().column("y").unwrap().codes()
        );
        prop_assert_eq!(
            joined.column("fk").unwrap().codes(),
            star.fact().column("fk").unwrap().codes()
        );
        // Projected join: output width = fact width + d_R.
        prop_assert_eq!(
            joined.width(),
            star.fact().width() + star.dims()[0].d_features()
        );
    }

    #[test]
    fn gather_then_project_commutes(star in star_strategy(), seed in 0u64..1000) {
        let fact = star.fact();
        let n = fact.n_rows();
        // Deterministic pseudo-shuffle from the seed.
        let idx: Vec<usize> = (0..n).map(|i| (i * 7 + seed as usize) % n).collect();
        let a = fact.gather_rows(&idx).unwrap().project_named(&["fk"]).unwrap();
        let b = fact.project_named(&["fk"]).unwrap().gather_rows(&idx).unwrap();
        prop_assert_eq!(a.column("fk").unwrap().codes(), b.column("fk").unwrap().codes());
    }

    #[test]
    fn entropy_bounds(counts in proptest::collection::vec(0usize..50, 1..10)) {
        let h = entropy(&counts);
        let k = counts.iter().filter(|&&c| c > 0).count().max(1);
        prop_assert!(h >= 0.0);
        prop_assert!(h <= (k as f64).log2() + 1e-9);
    }

    #[test]
    fn csv_roundtrip_preserves_codes(star in star_strategy()) {
        let fact = star.fact();
        let mut buf = Vec::new();
        hamlet_relation::csv::write_csv(fact, &mut buf).unwrap();
        let back = hamlet_relation::csv::read_csv("t", buf.as_slice(), |name| {
            if name == "y" { ColumnRole::Target } else { ColumnRole::ForeignKey { dim: 0 } }
        }).unwrap();
        prop_assert_eq!(back.n_rows(), fact.n_rows());
        // Labels (not necessarily codes) must match: domains are re-inferred
        // in first-appearance order.
        for row in 0..fact.n_rows() {
            let orig = fact.column("fk").unwrap();
            let new = back.column("fk").unwrap();
            prop_assert_eq!(
                orig.domain().label(orig.get(row)),
                new.domain().label(new.get(row))
            );
        }
    }
}
