//! Categorical domains: finite, closed sets of values encoded as dense `u32` codes.
//!
//! The paper (§2.2) assumes every feature — including foreign keys — has a
//! known finite domain, optionally with a special `Others` placeholder that
//! absorbs hitherto-unseen values. Domains are immutable and shared between
//! columns via [`std::sync::Arc`], so a fact table's FK column and the
//! dimension table's RID column literally share one dictionary, making code
//! equality equivalent to value equality during joins.

use std::collections::HashMap;
use std::sync::Arc;

use crate::error::{RelationError, Result};

/// The label used for the paper's "Others" placeholder slot.
pub const OTHERS_LABEL: &str = "Others";

/// An immutable categorical domain: a bijection between string labels and
/// dense codes `0..cardinality`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatDomain {
    name: String,
    labels: Vec<String>,
    index: HashMap<String, u32>,
    others: Option<u32>,
}

impl CatDomain {
    /// Builds a domain from distinct labels. Returns an error on duplicates.
    pub fn new(name: impl Into<String>, labels: Vec<String>) -> Result<Self> {
        let name = name.into();
        let mut index = HashMap::with_capacity(labels.len());
        let mut others = None;
        for (i, label) in labels.iter().enumerate() {
            if index.insert(label.clone(), i as u32).is_some() {
                return Err(RelationError::DuplicateColumn(format!(
                    "domain `{name}` label `{label}`"
                )));
            }
            if label == OTHERS_LABEL {
                others = Some(i as u32);
            }
        }
        Ok(Self {
            name,
            labels,
            index,
            others,
        })
    }

    /// Builds a synthetic domain `v0, v1, .. v{k-1}`. Handy for generated data.
    pub fn synthetic(name: impl Into<String>, cardinality: u32) -> Self {
        let labels: Vec<String> = (0..cardinality).map(|i| format!("v{i}")).collect();
        // Labels are distinct by construction.
        Self::new(name, labels).expect("synthetic labels are distinct")
    }

    /// Builds a synthetic domain with a trailing `Others` slot
    /// (cardinality = `k + 1`).
    pub fn synthetic_with_others(name: impl Into<String>, k: u32) -> Self {
        let mut labels: Vec<String> = (0..k).map(|i| format!("v{i}")).collect();
        labels.push(OTHERS_LABEL.to_string());
        Self::new(name, labels).expect("synthetic labels are distinct")
    }

    /// Domain name (usually mirrors the column it dictionary-encodes).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of distinct codes, including the `Others` slot if present.
    pub fn cardinality(&self) -> u32 {
        self.labels.len() as u32
    }

    /// Looks up the code of an exact label.
    pub fn code(&self, label: &str) -> Option<u32> {
        self.index.get(label).copied()
    }

    /// Encodes a label, falling back to the `Others` slot for unknown values
    /// (mirroring the paper's closed-domain assumption). `None` when the
    /// label is unknown and no `Others` slot exists.
    pub fn encode(&self, label: &str) -> Option<u32> {
        self.code(label).or(self.others)
    }

    /// Label for a code. Panics on out-of-domain codes (they cannot be
    /// constructed through the public column API).
    pub fn label(&self, code: u32) -> &str {
        &self.labels[code as usize]
    }

    /// Code of the `Others` placeholder, if the domain declares one.
    pub fn others_code(&self) -> Option<u32> {
        self.others
    }

    /// Whether a code is valid for this domain.
    pub fn contains(&self, code: u32) -> bool {
        (code as usize) < self.labels.len()
    }

    /// All labels in code order.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Wraps the domain for sharing across columns.
    pub fn into_shared(self) -> Arc<CatDomain> {
        Arc::new(self)
    }
}

// Domains serialize as `{name, labels}` only: the code index and the
// `Others` slot are derived state, rebuilt by [`CatDomain::new`] on load so
// a hand-edited artifact can never carry an inconsistent index.
impl serde::Serialize for CatDomain {
    fn serialize(&self) -> serde::Value {
        serde::Value::Obj(vec![
            ("name".to_string(), serde::Serialize::serialize(&self.name)),
            (
                "labels".to_string(),
                serde::Serialize::serialize(&self.labels),
            ),
        ])
    }
}

impl serde::Deserialize for CatDomain {
    fn deserialize(v: &serde::Value) -> std::result::Result<Self, serde::Error> {
        let obj = v.as_obj_view("CatDomain")?;
        let name = String::deserialize(obj.field("name")).map_err(|e| e.at("name"))?;
        let labels = Vec::<String>::deserialize(obj.field("labels")).map_err(|e| e.at("labels"))?;
        CatDomain::new(name, labels).map_err(|e| serde::Error(e.to_string()))
    }
}

/// Two domains are join-compatible when they are the same allocation or have
/// identical label sequences (so codes mean the same values).
pub fn join_compatible(a: &Arc<CatDomain>, b: &Arc<CatDomain>) -> bool {
    Arc::ptr_eq(a, b) || a.labels == b.labels
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_domain_roundtrip() {
        let d = CatDomain::synthetic("fk", 5);
        assert_eq!(d.cardinality(), 5);
        for i in 0..5 {
            let label = d.label(i).to_string();
            assert_eq!(d.code(&label), Some(i));
        }
        assert_eq!(d.code("nope"), None);
        assert!(d.contains(4));
        assert!(!d.contains(5));
    }

    #[test]
    fn duplicate_labels_rejected() {
        let err = CatDomain::new("d", vec!["a".into(), "a".into()]).unwrap_err();
        assert!(matches!(err, RelationError::DuplicateColumn(_)));
    }

    #[test]
    fn others_slot_absorbs_unknowns() {
        let d = CatDomain::synthetic_with_others("employer", 3);
        assert_eq!(d.cardinality(), 4);
        let others = d.others_code().unwrap();
        assert_eq!(d.label(others), OTHERS_LABEL);
        assert_eq!(d.encode("v1"), Some(1));
        assert_eq!(d.encode("unseen-value"), Some(others));
    }

    #[test]
    fn no_others_slot_means_unknowns_fail() {
        let d = CatDomain::synthetic("g", 2);
        assert_eq!(d.others_code(), None);
        assert_eq!(d.encode("zzz"), None);
    }

    #[test]
    fn serde_roundtrip_rebuilds_index_and_others() {
        use serde::{Deserialize, Serialize};
        let d = CatDomain::synthetic_with_others("employer", 3);
        let back = CatDomain::deserialize(&d.serialize()).unwrap();
        assert_eq!(back, d);
        assert_eq!(back.others_code(), d.others_code());
        assert_eq!(back.code("v2"), Some(2));
        assert_eq!(back.encode("unseen"), back.others_code());
        // Duplicate labels in a (corrupted) payload are rejected on load.
        let bad = CatDomain::deserialize(&serde::Value::Obj(vec![
            ("name".into(), serde::Value::Str("d".into())),
            (
                "labels".into(),
                serde::Value::Arr(vec![
                    serde::Value::Str("a".into()),
                    serde::Value::Str("a".into()),
                ]),
            ),
        ]));
        assert!(bad.is_err());
    }

    #[test]
    fn join_compatibility_by_pointer_and_by_value() {
        let a = CatDomain::synthetic("x", 4).into_shared();
        let b = Arc::clone(&a);
        assert!(join_compatible(&a, &b));
        let c = CatDomain::synthetic("y", 4).into_shared(); // same labels v0..v3
        assert!(join_compatible(&a, &c));
        let d = CatDomain::synthetic("z", 5).into_shared();
        assert!(!join_compatible(&a, &d));
    }
}
