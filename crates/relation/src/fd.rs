//! Functional-dependency checking.
//!
//! A KFK join plants the FD `FK → X_R` in its output (§1, footnote 1): two
//! rows that agree on the foreign key must agree on every foreign feature.
//! This module verifies that property on materialized tables — it is the
//! workhorse of the substrate's property tests and a useful data-quality
//! assertion for users bringing their own denormalized data.

use crate::error::Result;
use crate::table::Table;

/// Checks whether `lhs → rhs` holds in `table`: every pair of rows agreeing
/// on `lhs` agrees on all `rhs` columns. O(n · |rhs|) with dense per-code
/// witness storage.
pub fn check_fd(table: &Table, lhs: &str, rhs: &[&str]) -> Result<bool> {
    let lhs_col = table.column(lhs)?;
    let rhs_cols = rhs
        .iter()
        .map(|name| table.column(name))
        .collect::<Result<Vec<_>>>()?;

    // witness[code] = first-seen rhs tuple for that lhs code.
    let k = lhs_col.cardinality() as usize;
    let mut witness: Vec<Option<Vec<u32>>> = vec![None; k];
    for row in 0..table.n_rows() {
        let code = lhs_col.get(row) as usize;
        let tuple: Vec<u32> = rhs_cols.iter().map(|c| c.get(row)).collect();
        match &witness[code] {
            None => witness[code] = Some(tuple),
            Some(seen) => {
                if *seen != tuple {
                    return Ok(false);
                }
            }
        }
    }
    Ok(true)
}

/// Returns the set of violating `lhs` codes (empty when the FD holds).
pub fn fd_violations(table: &Table, lhs: &str, rhs: &[&str]) -> Result<Vec<u32>> {
    let lhs_col = table.column(lhs)?;
    let rhs_cols = rhs
        .iter()
        .map(|name| table.column(name))
        .collect::<Result<Vec<_>>>()?;

    let k = lhs_col.cardinality() as usize;
    let mut witness: Vec<Option<Vec<u32>>> = vec![None; k];
    let mut bad = vec![false; k];
    for row in 0..table.n_rows() {
        let code = lhs_col.get(row) as usize;
        let tuple: Vec<u32> = rhs_cols.iter().map(|c| c.get(row)).collect();
        match &witness[code] {
            None => witness[code] = Some(tuple),
            Some(seen) => {
                if *seen != tuple {
                    bad[code] = true;
                }
            }
        }
    }
    Ok((0..k as u32).filter(|&c| bad[c as usize]).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::CatColumn;
    use crate::domain::CatDomain;
    use crate::schema::{ColumnDef, ColumnRole, TableSchema};

    fn table(fk: Vec<u32>, xr: Vec<u32>) -> Table {
        let d4 = CatDomain::synthetic("fk", 4).into_shared();
        let d3 = CatDomain::synthetic("xr", 3).into_shared();
        Table::new(
            TableSchema::new(
                "t",
                vec![
                    ColumnDef::new("fk", ColumnRole::ForeignKey { dim: 0 }),
                    ColumnDef::new("xr", ColumnRole::ForeignFeature { dim: 0 }),
                ],
            )
            .unwrap(),
            vec![
                CatColumn::new(d4, fk).unwrap(),
                CatColumn::new(d3, xr).unwrap(),
            ],
        )
        .unwrap()
    }

    #[test]
    fn fd_holds() {
        let t = table(vec![0, 1, 0, 2, 1], vec![2, 0, 2, 1, 0]);
        assert!(check_fd(&t, "fk", &["xr"]).unwrap());
        assert!(fd_violations(&t, "fk", &["xr"]).unwrap().is_empty());
    }

    #[test]
    fn fd_violated() {
        let t = table(vec![0, 1, 0], vec![2, 0, 1]);
        assert!(!check_fd(&t, "fk", &["xr"]).unwrap());
        assert_eq!(fd_violations(&t, "fk", &["xr"]).unwrap(), vec![0]);
    }

    #[test]
    fn missing_column_errors() {
        let t = table(vec![0], vec![0]);
        assert!(check_fd(&t, "nope", &["xr"]).is_err());
        assert!(check_fd(&t, "fk", &["nope"]).is_err());
    }

    #[test]
    fn empty_rhs_trivially_holds() {
        let t = table(vec![0, 1], vec![0, 1]);
        assert!(check_fd(&t, "fk", &[]).unwrap());
    }
}
