//! Key–foreign-key equi-joins.
//!
//! The projected KFK join `T ← π(R ⋈_{RID=FK} S)` (§2.1) is the only join the
//! paper's setting needs: build a key index on the dimension's primary key,
//! probe with the fact table's FK column, and gather the dimension's feature
//! columns into the output. Because categorical codes are dense (`< |D|`),
//! the "hash" index degenerates into a direct-addressed array — the fastest
//! possible build/probe structure for this workload.

use crate::domain::join_compatible;
use crate::error::{RelationError, Result};
use crate::schema::{ColumnDef, ColumnRole};
use crate::table::Table;

/// A direct-addressed unique-key index over a dimension table:
/// `lookup[code] = Some(row)` iff some dimension row has that key code.
#[derive(Debug, Clone)]
pub struct KeyIndex {
    lookup: Vec<Option<u32>>,
}

impl KeyIndex {
    /// Builds the index from a dimension's key column, enforcing uniqueness.
    pub fn build(dim: &Table, rid_col: &str) -> Result<Self> {
        let key = dim.column(rid_col)?;
        let mut lookup = vec![None; key.cardinality() as usize];
        for (row, &code) in key.codes().iter().enumerate() {
            let slot = &mut lookup[code as usize];
            if slot.is_some() {
                return Err(RelationError::NotAKey {
                    column: rid_col.to_string(),
                    code,
                });
            }
            *slot = Some(row as u32);
        }
        Ok(Self { lookup })
    }

    /// Dimension row for a key code, if present.
    #[inline]
    pub fn probe(&self, code: u32) -> Option<u32> {
        self.lookup[code as usize]
    }

    /// Number of key codes with a matching row.
    pub fn populated(&self) -> usize {
        self.lookup.iter().filter(|s| s.is_some()).count()
    }
}

/// Performs the projected KFK equi-join of one dimension into the fact table.
///
/// Output columns: every fact column unchanged, followed by every non-key
/// dimension column gathered through the FK, tagged `ForeignFeature { dim }`.
/// Name collisions are disambiguated with a `"{dim_table}."` prefix.
///
/// Errors if the FK and RID domains are incompatible, the RID is not unique,
/// or any FK value dangles (referential-integrity violation) — KFK joins are
/// never selective in this setting (§2.1), so a dangling key is a data bug.
pub fn kfk_join(
    fact: &Table,
    fk_col: &str,
    dim: &Table,
    rid_col: &str,
    dim_tag: usize,
) -> Result<Table> {
    let fk = fact.column(fk_col)?;
    let rid = dim.column(rid_col)?;
    if !join_compatible(fk.domain(), rid.domain()) {
        return Err(RelationError::DomainMismatch {
            left: fk_col.to_string(),
            right: rid_col.to_string(),
        });
    }
    let index = KeyIndex::build(dim, rid_col)?;

    // Probe: map each fact row to its dimension row.
    let mut dim_rows = Vec::with_capacity(fact.n_rows());
    for &code in fk.codes() {
        match index.probe(code) {
            Some(row) => dim_rows.push(row as usize),
            None => {
                return Err(RelationError::ReferentialIntegrity {
                    fk_column: fk_col.to_string(),
                    code,
                })
            }
        }
    }

    // Gather dimension feature columns into the fact's row order.
    let mut out = fact
        .clone()
        .renamed(format!("{}⋈{}", fact.name(), dim.name()));
    let rid_idx = dim.schema().index_of(rid_col)?;
    for (i, def) in dim.schema().columns().iter().enumerate() {
        if i == rid_idx {
            continue; // the projected join drops the dimension key
        }
        let name = if out.schema().index_of(&def.name).is_ok() {
            format!("{}.{}", dim.name(), def.name)
        } else {
            def.name.clone()
        };
        let gathered = dim.column_at(i).gather(&dim_rows);
        out = out.with_column(
            ColumnDef::new(name, ColumnRole::ForeignFeature { dim: dim_tag }),
            gathered,
        )?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::CatColumn;
    use crate::domain::CatDomain;
    use crate::schema::TableSchema;
    use std::sync::Arc;

    fn star() -> (Table, Table) {
        // Shared FK/RID domain of 3 employers.
        let emp = CatDomain::synthetic("employer", 3).into_shared();
        let bin = CatDomain::synthetic("bin", 2).into_shared();

        let fact = Table::new(
            TableSchema::new(
                "customers",
                vec![
                    ColumnDef::new("y", ColumnRole::Target),
                    ColumnDef::new("gender", ColumnRole::HomeFeature),
                    ColumnDef::new("employer", ColumnRole::ForeignKey { dim: 0 }),
                ],
            )
            .unwrap(),
            vec![
                CatColumn::new(Arc::clone(&bin), vec![0, 1, 1, 0, 1]).unwrap(),
                CatColumn::new(Arc::clone(&bin), vec![0, 0, 1, 1, 0]).unwrap(),
                CatColumn::new(Arc::clone(&emp), vec![2, 0, 1, 2, 0]).unwrap(),
            ],
        )
        .unwrap();

        let dim = Table::new(
            TableSchema::new(
                "employers",
                vec![
                    ColumnDef::new("rid", ColumnRole::Id),
                    ColumnDef::new("state", ColumnRole::HomeFeature),
                    ColumnDef::new("revenue", ColumnRole::HomeFeature),
                ],
            )
            .unwrap(),
            vec![
                CatColumn::new(Arc::clone(&emp), vec![0, 1, 2]).unwrap(),
                CatColumn::new(Arc::clone(&bin), vec![1, 0, 1]).unwrap(),
                CatColumn::new(Arc::clone(&bin), vec![0, 0, 1]).unwrap(),
            ],
        )
        .unwrap();
        (fact, dim)
    }

    #[test]
    fn join_gathers_foreign_features() {
        let (fact, dim) = star();
        let t = kfk_join(&fact, "employer", &dim, "rid", 0).unwrap();
        assert_eq!(t.n_rows(), 5);
        assert_eq!(t.width(), 5);
        // employer codes 2,0,1,2,0 → state 1,1,0,1,1 and revenue 1,0,0,1,0
        assert_eq!(t.column("state").unwrap().codes(), &[1, 1, 0, 1, 1]);
        assert_eq!(t.column("revenue").unwrap().codes(), &[1, 0, 0, 1, 0]);
        let def = t.schema().column("state").unwrap();
        assert_eq!(def.role, ColumnRole::ForeignFeature { dim: 0 });
        // Fact columns unchanged.
        assert_eq!(t.column("employer").unwrap().codes(), &[2, 0, 1, 2, 0]);
    }

    #[test]
    fn join_is_order_preserving_and_non_selective() {
        let (fact, dim) = star();
        let t = kfk_join(&fact, "employer", &dim, "rid", 0).unwrap();
        assert_eq!(
            t.column("y").unwrap().codes(),
            fact.column("y").unwrap().codes()
        );
    }

    #[test]
    fn dangling_fk_is_an_error() {
        let (fact, dim) = star();
        // Shrink the dimension so employer code 2 dangles.
        let small = dim.gather_rows(&[0, 1]).unwrap();
        let err = kfk_join(&fact, "employer", &small, "rid", 0).unwrap_err();
        assert!(matches!(
            err,
            RelationError::ReferentialIntegrity { code: 2, .. }
        ));
    }

    #[test]
    fn duplicate_rid_is_an_error() {
        let (fact, dim) = star();
        let dupl = dim.gather_rows(&[0, 0, 1]).unwrap();
        let err = kfk_join(&fact, "employer", &dupl, "rid", 0).unwrap_err();
        assert!(matches!(err, RelationError::NotAKey { code: 0, .. }));
    }

    #[test]
    fn incompatible_domains_rejected() {
        let (fact, dim) = star();
        // Rebuild the dim with a different-size key domain.
        let other = CatDomain::synthetic("other", 4).into_shared();
        let dim2 = dim
            .replace_column(0, CatColumn::new(other, vec![0, 1, 2]).unwrap())
            .unwrap();
        let err = kfk_join(&fact, "employer", &dim2, "rid", 0).unwrap_err();
        assert!(matches!(err, RelationError::DomainMismatch { .. }));
    }

    #[test]
    fn name_collisions_get_prefixed() {
        let (fact, dim) = star();
        // Rename dim's "state" to "gender" to force a collision.
        let schema = TableSchema::new(
            "employers",
            vec![
                ColumnDef::new("rid", ColumnRole::Id),
                ColumnDef::new("gender", ColumnRole::HomeFeature),
                ColumnDef::new("revenue", ColumnRole::HomeFeature),
            ],
        )
        .unwrap();
        let dim2 = Table::new(schema, dim.columns().to_vec()).unwrap();
        let t = kfk_join(&fact, "employer", &dim2, "rid", 0).unwrap();
        assert!(t.column("employers.gender").is_ok());
    }

    #[test]
    fn key_index_probe() {
        let (_, dim) = star();
        let idx = KeyIndex::build(&dim, "rid").unwrap();
        assert_eq!(idx.populated(), 3);
        assert_eq!(idx.probe(1), Some(1));
    }
}
