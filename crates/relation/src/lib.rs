//! # hamlet-relation
//!
//! In-memory columnar relational substrate for *categorical* star schemas —
//! the data layer under the VLDB 2017 study "Are Key-Foreign Key Joins Safe
//! to Avoid when Learning High-Capacity Classifiers?" (Shah, Kumar, Zhu).
//!
//! The paper's setting (§2) is a star schema: a fact table
//! `S(SID, Y, X_S, FK_1..FK_q)` and dimension tables `R_i(RID_i, X_Ri)`,
//! every feature categorical with a known finite domain. This crate provides
//! exactly that world:
//!
//! - [`domain::CatDomain`] — closed categorical domains with dense `u32`
//!   codes and optional `Others` slots;
//! - [`column::CatColumn`] / [`table::Table`] — validated dictionary-encoded
//!   columnar storage with projection and row-gather primitives;
//! - [`schema::ColumnRole`] — the paper's feature taxonomy (home features,
//!   foreign keys, foreign features) as first-class schema metadata;
//! - [`join::kfk_join`] — the projected KFK equi-join `π(R ⋈ S)` with
//!   direct-addressed key indexes and referential-integrity enforcement;
//! - [`star::StarSchema`] — validated fact/dimension bundles, tuple ratios,
//!   and selective materialization (the JoinAll / NoR_i inputs);
//! - [`fd`] — functional-dependency checking (`FK → X_R` must hold in every
//!   materialized join output);
//! - [`stats`] — entropies and per-code label histograms feeding the
//!   compression and advisor machinery upstream;
//! - [`csv`] — minimal import/export for examples and interop.
//!
//! ```
//! use hamlet_relation::prelude::*;
//! use std::sync::Arc;
//!
//! // Customers(fact) -- Employer FK --> Employers(dimension)
//! let employer = CatDomain::synthetic("employer", 3).into_shared();
//! let bin = CatDomain::synthetic("bin", 2).into_shared();
//! let fact = Table::new(
//!     TableSchema::new("customers", vec![
//!         ColumnDef::new("churn", ColumnRole::Target),
//!         ColumnDef::new("employer", ColumnRole::ForeignKey { dim: 0 }),
//!     ]).unwrap(),
//!     vec![
//!         CatColumn::new(Arc::clone(&bin), vec![0, 1, 1]).unwrap(),
//!         CatColumn::new(Arc::clone(&employer), vec![2, 0, 1]).unwrap(),
//!     ],
//! ).unwrap();
//! let employers = Table::new(
//!     TableSchema::new("employers", vec![
//!         ColumnDef::new("rid", ColumnRole::Id),
//!         ColumnDef::new("state", ColumnRole::HomeFeature),
//!     ]).unwrap(),
//!     vec![
//!         CatColumn::new(Arc::clone(&employer), vec![0, 1, 2]).unwrap(),
//!         CatColumn::new(Arc::clone(&bin), vec![0, 1, 0]).unwrap(),
//!     ],
//! ).unwrap();
//!
//! let star = StarSchema::new(fact, vec![Dimension::new(employers, "rid", "employer")]).unwrap();
//! let joined = star.materialize_all().unwrap();
//! assert!(hamlet_relation::fd::check_fd(&joined, "employer", &["state"]).unwrap());
//! ```

pub mod column;
pub mod csv;
pub mod domain;
pub mod error;
pub mod fd;
pub mod fingerprint;
pub mod join;
pub mod schema;
pub mod star;
pub mod stats;
pub mod table;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::column::CatColumn;
    pub use crate::domain::{CatDomain, OTHERS_LABEL};
    pub use crate::error::{RelationError, Result as RelationResult};
    pub use crate::fingerprint::Fingerprint;
    pub use crate::join::{kfk_join, KeyIndex};
    pub use crate::schema::{ColumnDef, ColumnRole, TableSchema};
    pub use crate::star::{Dimension, DimensionStats, StarSchema};
    pub use crate::table::Table;
}
