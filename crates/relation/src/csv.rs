//! Minimal CSV import/export for categorical tables.
//!
//! Deliberately small: comma-separated, first row is the header, values are
//! trimmed, quoting is not supported (labels in this workload are identifier
//! -like). Import infers each column's domain from the distinct values seen,
//! in first-appearance order, and tags roles via a caller-supplied function.

use std::io::{BufRead, BufReader, Read, Write};

use crate::column::CatColumn;
use crate::domain::CatDomain;
use crate::error::{RelationError, Result};
use crate::schema::{ColumnDef, ColumnRole, TableSchema};
use crate::table::Table;

/// Writes a table as CSV (header + label rows).
pub fn write_csv<W: Write>(table: &Table, mut w: W) -> Result<()> {
    let header: Vec<&str> = table
        .schema()
        .columns()
        .iter()
        .map(|c| c.name.as_str())
        .collect();
    writeln!(w, "{}", header.join(","))?;
    for row in 0..table.n_rows() {
        let mut first = true;
        for col in table.columns() {
            if !first {
                write!(w, ",")?;
            }
            write!(w, "{}", col.domain().label(col.get(row)))?;
            first = false;
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Reads a CSV into a table. `role_of(column_name)` assigns roles; domains
/// are inferred from the data (distinct labels, first-appearance order).
pub fn read_csv<R: Read>(
    name: impl Into<String>,
    reader: R,
    role_of: impl Fn(&str) -> ColumnRole,
) -> Result<Table> {
    let mut lines = BufReader::new(reader).lines();
    let header = match lines.next() {
        Some(h) => h?,
        None => return Err(RelationError::Csv("empty input".into())),
    };
    let names: Vec<String> = header.split(',').map(|s| s.trim().to_string()).collect();
    if names.is_empty() || names.iter().any(String::is_empty) {
        return Err(RelationError::Csv("bad header".into()));
    }
    let width = names.len();

    let mut cells: Vec<Vec<String>> = vec![Vec::new(); width];
    for (line_no, line) in lines.enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() != width {
            return Err(RelationError::Csv(format!(
                "row {} has {} fields, expected {width}",
                line_no + 2,
                fields.len()
            )));
        }
        for (c, f) in fields.iter().enumerate() {
            cells[c].push((*f).to_string());
        }
    }

    let mut defs = Vec::with_capacity(width);
    let mut columns = Vec::with_capacity(width);
    for (i, col_name) in names.iter().enumerate() {
        // Infer domain: distinct labels in first-appearance order.
        let mut labels: Vec<String> = Vec::new();
        for v in &cells[i] {
            if !labels.iter().any(|l| l == v) {
                labels.push(v.clone());
            }
        }
        let domain = CatDomain::new(col_name.clone(), labels)?.into_shared();
        columns.push(CatColumn::from_labels(domain, &cells[i])?);
        defs.push(ColumnDef::new(col_name.clone(), role_of(col_name)));
    }
    Table::new(TableSchema::new(name, defs)?, columns)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let csv = "y,gender,employer\nno,m,acme\nyes,f,globex\nyes,m,acme\n";
        let t = read_csv("customers", csv.as_bytes(), |name| match name {
            "y" => ColumnRole::Target,
            "employer" => ColumnRole::ForeignKey { dim: 0 },
            _ => ColumnRole::HomeFeature,
        })
        .unwrap();
        assert_eq!(t.n_rows(), 3);
        assert_eq!(t.column("employer").unwrap().codes(), &[0, 1, 0]);
        assert_eq!(
            t.schema().column("employer").unwrap().role,
            ColumnRole::ForeignKey { dim: 0 }
        );

        let mut out = Vec::new();
        write_csv(&t, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(text, csv.replace(",,", ","));

        // Re-read the written text: identical codes.
        let t2 = read_csv("again", text.as_bytes(), |_| ColumnRole::HomeFeature).unwrap();
        assert_eq!(
            t2.column("employer").unwrap().codes(),
            t.column("employer").unwrap().codes()
        );
    }

    #[test]
    fn ragged_rows_rejected() {
        let csv = "a,b\n1,2\n3\n";
        assert!(read_csv("t", csv.as_bytes(), |_| ColumnRole::HomeFeature).is_err());
    }

    #[test]
    fn empty_input_rejected() {
        assert!(read_csv("t", "".as_bytes(), |_| ColumnRole::HomeFeature).is_err());
    }

    #[test]
    fn blank_lines_skipped() {
        let csv = "a\nx\n\ny\n";
        let t = read_csv("t", csv.as_bytes(), |_| ColumnRole::HomeFeature).unwrap();
        assert_eq!(t.n_rows(), 2);
    }
}
