//! Table schemas with ML-aware column roles.
//!
//! The paper's setting distinguishes *home features* `X_S`, *foreign keys*
//! `FK_i` and *foreign features* `X_Ri` (§2.1); the whole point of "avoiding
//! joins safely" is that these roles — pure schema information — decide which
//! columns a model needs. Roles therefore live in the substrate.

use crate::error::{RelationError, Result};

/// The provenance/role of a column in the star-schema learning setting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ColumnRole {
    /// Row identifier (e.g. `SID`, or a dimension's `RID`). Never a feature.
    Id,
    /// The class label `Y`.
    Target,
    /// A feature native to the fact table (`X_S`).
    HomeFeature,
    /// A foreign key `FK_i` referencing dimension `dim`.
    ForeignKey {
        /// Index of the referenced dimension within the star schema.
        dim: usize,
    },
    /// A feature brought in from dimension `dim` (`X_Ri`).
    ForeignFeature {
        /// Index of the originating dimension within the star schema.
        dim: usize,
    },
}

impl ColumnRole {
    /// Whether a column with this role may ever be used as a model feature.
    pub fn is_feature(self) -> bool {
        matches!(
            self,
            Self::HomeFeature | Self::ForeignKey { .. } | Self::ForeignFeature { .. }
        )
    }
}

/// A named, role-tagged column declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name, unique within its table.
    pub name: String,
    /// Learning role.
    pub role: ColumnRole,
}

impl ColumnDef {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, role: ColumnRole) -> Self {
        Self {
            name: name.into(),
            role,
        }
    }
}

/// An ordered collection of column definitions with a table name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    name: String,
    columns: Vec<ColumnDef>,
}

impl TableSchema {
    /// Builds a schema, rejecting duplicate column names.
    pub fn new(name: impl Into<String>, columns: Vec<ColumnDef>) -> Result<Self> {
        let name = name.into();
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].iter().any(|p| p.name == c.name) {
                return Err(RelationError::DuplicateColumn(c.name.clone()));
            }
        }
        Ok(Self { name, columns })
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All column definitions, in storage order.
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Index of a column by name.
    pub fn index_of(&self, column: &str) -> Result<usize> {
        self.columns
            .iter()
            .position(|c| c.name == column)
            .ok_or_else(|| RelationError::ColumnNotFound {
                table: self.name.clone(),
                column: column.to_string(),
            })
    }

    /// Definition of a column by name.
    pub fn column(&self, name: &str) -> Result<&ColumnDef> {
        self.index_of(name).map(|i| &self.columns[i])
    }

    /// Indices of all columns with a given role predicate.
    pub fn indices_where(&self, pred: impl Fn(ColumnRole) -> bool) -> Vec<usize> {
        self.columns
            .iter()
            .enumerate()
            .filter(|(_, c)| pred(c.role))
            .map(|(i, _)| i)
            .collect()
    }

    /// Index of the unique `Target` column, if any.
    pub fn target_index(&self) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.role == ColumnRole::Target)
    }

    /// New schema holding the same table name and a subset of columns.
    pub fn project(&self, indices: &[usize]) -> TableSchema {
        let columns = indices.iter().map(|&i| self.columns[i].clone()).collect();
        Self {
            name: self.name.clone(),
            columns,
        }
    }

    /// New schema with an extra column appended.
    pub fn with_column(&self, def: ColumnDef) -> Result<TableSchema> {
        let mut columns = self.columns.clone();
        columns.push(def);
        Self::new(self.name.clone(), columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> TableSchema {
        TableSchema::new(
            "S",
            vec![
                ColumnDef::new("sid", ColumnRole::Id),
                ColumnDef::new("y", ColumnRole::Target),
                ColumnDef::new("xs1", ColumnRole::HomeFeature),
                ColumnDef::new("fk1", ColumnRole::ForeignKey { dim: 0 }),
            ],
        )
        .unwrap()
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = TableSchema::new(
            "S",
            vec![
                ColumnDef::new("a", ColumnRole::Id),
                ColumnDef::new("a", ColumnRole::Target),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, RelationError::DuplicateColumn(_)));
    }

    #[test]
    fn lookup_and_roles() {
        let s = schema();
        assert_eq!(s.index_of("fk1").unwrap(), 3);
        assert!(s.index_of("nope").is_err());
        assert_eq!(s.target_index(), Some(1));
        assert_eq!(s.indices_where(|r| r.is_feature()), vec![2, 3]);
        assert!(!ColumnRole::Id.is_feature());
        assert!(ColumnRole::ForeignFeature { dim: 1 }.is_feature());
    }

    #[test]
    fn projection_preserves_order() {
        let s = schema().project(&[3, 2]);
        assert_eq!(s.columns()[0].name, "fk1");
        assert_eq!(s.columns()[1].name, "xs1");
        assert_eq!(s.width(), 2);
    }

    #[test]
    fn with_column_appends() {
        let s = schema()
            .with_column(ColumnDef::new("xr1", ColumnRole::ForeignFeature { dim: 0 }))
            .unwrap();
        assert_eq!(s.width(), 5);
        assert!(s
            .with_column(ColumnDef::new("xr1", ColumnRole::HomeFeature))
            .is_err());
    }
}
