//! Column- and schema-level statistics: entropies, frequencies, tuple ratios.
//!
//! These are the quantities the paper's decision machinery runs on: the
//! *tuple ratio* drives the avoid-the-join advisor, and the conditional
//! entropy `H(Y | FK = z)` drives the sort-based FK domain compression (§6.1).

use crate::column::CatColumn;

/// Shannon entropy (bits) of a discrete distribution given as counts.
/// Zero-count cells contribute nothing; an all-zero histogram has entropy 0.
pub fn entropy(counts: &[usize]) -> f64 {
    let total: usize = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let n = total as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

/// Empirical binary entropy of a label slice.
pub fn label_entropy(y: &[bool]) -> f64 {
    let pos = y.iter().filter(|&&b| b).count();
    entropy(&[pos, y.len() - pos])
}

/// Per-code binary label histograms: `out[code] = (n_total, n_positive)`.
pub fn per_code_label_counts(col: &CatColumn, y: &[bool]) -> Vec<(usize, usize)> {
    debug_assert_eq!(col.len(), y.len());
    let mut out = vec![(0usize, 0usize); col.cardinality() as usize];
    for (&code, &label) in col.codes().iter().zip(y) {
        let cell = &mut out[code as usize];
        cell.0 += 1;
        if label {
            cell.1 += 1;
        }
    }
    out
}

/// Conditional entropy `H(Y | X)` in bits, estimated from data.
pub fn conditional_entropy(col: &CatColumn, y: &[bool]) -> f64 {
    let counts = per_code_label_counts(col, y);
    let n = col.len() as f64;
    if n == 0.0 {
        return 0.0;
    }
    counts
        .iter()
        .filter(|(t, _)| *t > 0)
        .map(|&(t, p)| (t as f64 / n) * entropy(&[p, t - p]))
        .sum()
}

/// Per-code conditional entropy `H(Y | X = code)`, `None` for codes unseen in
/// the data (the sort-based compressor needs to treat those separately).
pub fn per_code_conditional_entropy(col: &CatColumn, y: &[bool]) -> Vec<Option<f64>> {
    per_code_label_counts(col, y)
        .iter()
        .map(|&(t, p)| {
            if t == 0 {
                None
            } else {
                Some(entropy(&[p, t - p]))
            }
        })
        .collect()
}

/// Mutual information `I(Y; X) = H(Y) − H(Y|X)` in bits.
pub fn mutual_information(col: &CatColumn, y: &[bool]) -> f64 {
    (label_entropy(y) - conditional_entropy(col, y)).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::CatDomain;

    fn col(k: u32, codes: Vec<u32>) -> CatColumn {
        CatColumn::new(CatDomain::synthetic("c", k).into_shared(), codes).unwrap()
    }

    #[test]
    fn entropy_extremes() {
        assert_eq!(entropy(&[10, 0]), 0.0);
        assert!((entropy(&[5, 5]) - 1.0).abs() < 1e-12);
        assert_eq!(entropy(&[]), 0.0);
        assert_eq!(entropy(&[0, 0]), 0.0);
    }

    #[test]
    fn entropy_uniform_4_is_2_bits() {
        assert!((entropy(&[3, 3, 3, 3]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn label_entropy_matches_entropy() {
        let y = vec![true, false, true, false];
        assert!((label_entropy(&y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn per_code_counts() {
        let c = col(3, vec![0, 0, 1, 2, 2, 2]);
        let y = vec![true, false, true, false, false, true];
        assert_eq!(per_code_label_counts(&c, &y), vec![(2, 1), (1, 1), (3, 1)]);
    }

    #[test]
    fn conditional_entropy_perfect_predictor_is_zero() {
        // X determines Y exactly.
        let c = col(2, vec![0, 0, 1, 1]);
        let y = vec![false, false, true, true];
        assert!(conditional_entropy(&c, &y) < 1e-12);
        assert!((mutual_information(&c, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn conditional_entropy_useless_predictor_equals_hy() {
        let c = col(2, vec![0, 1, 0, 1]);
        let y = vec![false, false, true, true];
        let hy = label_entropy(&y);
        assert!((conditional_entropy(&c, &y) - hy).abs() < 1e-12);
        assert!(mutual_information(&c, &y) < 1e-12);
    }

    #[test]
    fn per_code_conditional_entropy_handles_unseen() {
        let c = col(3, vec![0, 0, 1, 1]);
        let y = vec![true, false, true, true];
        let e = per_code_conditional_entropy(&c, &y);
        assert!((e[0].unwrap() - 1.0).abs() < 1e-12);
        assert!(e[1].unwrap() < 1e-12);
        assert!(e[2].is_none());
    }
}
