//! Stable structural fingerprints for schemas, tables and stars.
//!
//! A served model is only valid for the feature space it was trained on.
//! Persisted `ModelArtifact`s (in `hamlet-serve`) record a fingerprint of
//! the star schema that produced their training data, as provenance:
//! operators and clients can compare it against their own schema's hash to
//! detect drift before trusting a model's answers. (Request-time
//! enforcement is structural — row width and per-feature cardinality are
//! validated per predict call; the fingerprint itself is not sent with
//! prediction requests today.) The fingerprint is a 64-bit FNV-1a over a
//! canonical byte walk of the structure — content-independent (codes never
//! enter the hash), platform-independent, and stable across releases as
//! long as names, roles, column order and cardinalities are unchanged.

use crate::schema::{ColumnRole, TableSchema};
use crate::star::StarSchema;
use crate::table::Table;

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

/// Incremental FNV-1a fingerprint builder.
///
/// Exposed so downstream crates (e.g. the serving layer) can fingerprint
/// their own structures — feature metadata, configs — with the same
/// algorithm and mixing discipline.
#[derive(Debug, Clone)]
pub struct Fingerprint {
    state: u64,
}

impl Default for Fingerprint {
    fn default() -> Self {
        Fingerprint { state: FNV_OFFSET }
    }
}

impl Fingerprint {
    /// Fresh fingerprint at the FNV offset basis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mixes raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Mixes a length-prefixed string (prefixing prevents concatenation
    /// collisions like `("ab", "c")` vs `("a", "bc")`).
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes())
    }

    /// Mixes a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write_bytes(&v.to_le_bytes())
    }

    /// Final 64-bit digest.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

fn write_role(fp: &mut Fingerprint, role: ColumnRole) {
    match role {
        ColumnRole::Id => {
            fp.write_u64(0);
        }
        ColumnRole::Target => {
            fp.write_u64(1);
        }
        ColumnRole::HomeFeature => {
            fp.write_u64(2);
        }
        ColumnRole::ForeignKey { dim } => {
            fp.write_u64(3).write_u64(dim as u64);
        }
        ColumnRole::ForeignFeature { dim } => {
            fp.write_u64(4).write_u64(dim as u64);
        }
    }
}

impl TableSchema {
    /// Structural fingerprint: table name plus ordered (column name, role)
    /// pairs. Row contents and domain labels do not participate.
    pub fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new();
        fp.write_str(self.name());
        fp.write_u64(self.width() as u64);
        for def in self.columns() {
            fp.write_str(&def.name);
            write_role(&mut fp, def.role);
        }
        fp.finish()
    }
}

impl Table {
    /// Schema fingerprint extended with each column's domain cardinality —
    /// what a trained model's input contract actually depends on.
    pub fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new();
        fp.write_u64(self.schema().fingerprint());
        for col in self.columns() {
            fp.write_u64(u64::from(col.cardinality()));
        }
        fp.finish()
    }
}

impl StarSchema {
    /// Fingerprint of the whole star: the fact table's contract plus each
    /// dimension's binding (rid/fk names, open-domain flag) and table
    /// contract, in dimension order.
    pub fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new();
        fp.write_u64(self.fact().fingerprint());
        fp.write_u64(self.q() as u64);
        for d in self.dims() {
            fp.write_u64(d.table.fingerprint());
            fp.write_str(&d.rid);
            fp.write_str(&d.fk);
            fp.write_u64(u64::from(d.open_domain));
        }
        fp.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;

    fn schema(cols: &[(&str, ColumnRole)]) -> TableSchema {
        TableSchema::new(
            "t",
            cols.iter()
                .map(|&(n, r)| ColumnDef::new(n, r))
                .collect::<Vec<_>>(),
        )
        .unwrap()
    }

    #[test]
    fn equal_structures_share_fingerprints() {
        let a = schema(&[("y", ColumnRole::Target), ("x", ColumnRole::HomeFeature)]);
        let b = schema(&[("y", ColumnRole::Target), ("x", ColumnRole::HomeFeature)]);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn names_roles_and_order_matter() {
        let base = schema(&[("y", ColumnRole::Target), ("x", ColumnRole::HomeFeature)]);
        let renamed = schema(&[("y", ColumnRole::Target), ("z", ColumnRole::HomeFeature)]);
        let rerole = schema(&[
            ("y", ColumnRole::Target),
            ("x", ColumnRole::ForeignKey { dim: 0 }),
        ]);
        let reordered = schema(&[("x", ColumnRole::HomeFeature), ("y", ColumnRole::Target)]);
        assert_ne!(base.fingerprint(), renamed.fingerprint());
        assert_ne!(base.fingerprint(), rerole.fingerprint());
        assert_ne!(base.fingerprint(), reordered.fingerprint());
    }

    #[test]
    fn fk_dimension_index_matters() {
        let d0 = schema(&[("fk", ColumnRole::ForeignKey { dim: 0 })]);
        let d1 = schema(&[("fk", ColumnRole::ForeignKey { dim: 1 })]);
        assert_ne!(d0.fingerprint(), d1.fingerprint());
    }

    #[test]
    fn string_prefixing_blocks_concat_collisions() {
        let mut a = Fingerprint::new();
        a.write_str("ab").write_str("c");
        let mut b = Fingerprint::new();
        b.write_str("a").write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn table_fingerprint_tracks_cardinality() {
        use crate::column::CatColumn;
        use crate::domain::CatDomain;
        use std::sync::Arc;

        let mk = |card: u32| {
            let dom = CatDomain::synthetic("d", card).into_shared();
            Table::new(
                schema(&[("x", ColumnRole::HomeFeature)]),
                vec![CatColumn::new(Arc::clone(&dom), vec![0, 1]).unwrap()],
            )
            .unwrap()
        };
        assert_eq!(mk(4).fingerprint(), mk(4).fingerprint());
        assert_ne!(mk(4).fingerprint(), mk(5).fingerprint());
    }
}
