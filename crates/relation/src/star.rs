//! Star schemas: a fact table plus dimension tables bound by KFK constraints.

use crate::error::{RelationError, Result};
use crate::join::{kfk_join, KeyIndex};
use crate::schema::ColumnRole;
use crate::table::Table;

/// One dimension table and its binding to the fact table.
#[derive(Debug, Clone)]
pub struct Dimension {
    /// The dimension table `R_i`.
    pub table: Table,
    /// Primary-key column name inside `table`.
    pub rid: String,
    /// Foreign-key column name inside the fact table.
    pub fk: String,
    /// `true` when the FK's domain is "open" (e.g. Expedia's search id):
    /// values are never repeated in the future, so the FK itself is unusable
    /// as a feature and the dimension can never be discarded (Table 1 "N/A").
    pub open_domain: bool,
}

impl Dimension {
    /// Convenience constructor for a closed-domain dimension.
    pub fn new(table: Table, rid: impl Into<String>, fk: impl Into<String>) -> Self {
        Self {
            table,
            rid: rid.into(),
            fk: fk.into(),
            open_domain: false,
        }
    }

    /// Marks the FK as open-domain.
    pub fn open(mut self) -> Self {
        self.open_domain = true;
        self
    }

    /// Number of dimension rows `n_R` (= `|D_FK|` by definition, §2.1).
    pub fn n_rows(&self) -> usize {
        self.table.n_rows()
    }

    /// Number of foreign features `d_R` (non-key columns).
    pub fn d_features(&self) -> usize {
        self.table.width() - 1
    }
}

/// Summary statistics for one dimension, as reported in the paper's Table 1.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct DimensionStats {
    /// Dimension table name.
    pub name: String,
    /// `n_R`: rows in the dimension (= FK domain size).
    pub n_rows: usize,
    /// `d_R`: foreign feature count.
    pub d_features: usize,
    /// `n_S / n_R` computed on the rows supplied (callers pass the *training*
    /// row count to match Table 1's 50 %-split convention).
    pub tuple_ratio: f64,
    /// Whether the FK has an open domain (Table 1's "N/A" rows).
    pub open_domain: bool,
}

/// A fact table with `q` dimensions. Construction validates the KFK bindings:
/// column existence, key uniqueness and referential integrity.
#[derive(Debug, Clone)]
pub struct StarSchema {
    fact: Table,
    dims: Vec<Dimension>,
}

impl StarSchema {
    /// Builds and validates a star schema.
    pub fn new(fact: Table, dims: Vec<Dimension>) -> Result<Self> {
        for (i, d) in dims.iter().enumerate() {
            // FK must exist in the fact table and be role-tagged for dim i.
            let def = fact.schema().column(&d.fk)?;
            match def.role {
                ColumnRole::ForeignKey { dim } if dim == i => {}
                ColumnRole::ForeignKey { dim } => {
                    return Err(RelationError::InvalidSchema(format!(
                        "FK `{}` is tagged for dimension {dim} but bound to dimension {i}",
                        d.fk
                    )))
                }
                _ => {
                    return Err(RelationError::InvalidSchema(format!(
                        "column `{}` is not a foreign key",
                        d.fk
                    )))
                }
            }
            // RID must exist and be a unique key; every FK value must match.
            let index = KeyIndex::build(&d.table, &d.rid)?;
            let fk_col = fact.column(&d.fk)?;
            for &code in fk_col.codes() {
                if index.probe(code).is_none() {
                    return Err(RelationError::ReferentialIntegrity {
                        fk_column: d.fk.clone(),
                        code,
                    });
                }
            }
        }
        Ok(Self { fact, dims })
    }

    /// The fact table `S`.
    pub fn fact(&self) -> &Table {
        &self.fact
    }

    /// The dimensions `R_1 .. R_q`.
    pub fn dims(&self) -> &[Dimension] {
        &self.dims
    }

    /// Number of dimensions `q`.
    pub fn q(&self) -> usize {
        self.dims.len()
    }

    /// `n_S / n_R(i)` over the full fact table. Table 1 reports the ratio on
    /// the 50 % training split; callers can halve as needed.
    pub fn tuple_ratio(&self, dim: usize) -> f64 {
        self.fact.n_rows() as f64 / self.dims[dim].n_rows() as f64
    }

    /// Per-dimension stats with the tuple ratio computed against
    /// `effective_n_s` fact rows (pass the training-split size to reproduce
    /// Table 1 exactly).
    pub fn stats(&self, effective_n_s: usize) -> Vec<DimensionStats> {
        self.dims
            .iter()
            .map(|d| DimensionStats {
                name: d.table.name().to_string(),
                n_rows: d.n_rows(),
                d_features: d.d_features(),
                tuple_ratio: effective_n_s as f64 / d.n_rows() as f64,
                open_domain: d.open_domain,
            })
            .collect()
    }

    /// Materializes the projected KFK join with the dimensions selected by
    /// `include[i]`. `include.len()` must equal `q`. The fact's own columns
    /// (including every FK) always appear; use downstream feature configs to
    /// drop FK columns from the model's view.
    pub fn materialize(&self, include: &[bool]) -> Result<Table> {
        if include.len() != self.dims.len() {
            return Err(RelationError::InvalidSchema(format!(
                "include mask has {} entries for {} dimensions",
                include.len(),
                self.dims.len()
            )));
        }
        let mut out = self.fact.clone();
        for (i, d) in self.dims.iter().enumerate() {
            if include[i] {
                out = kfk_join(&out, &d.fk, &d.table, &d.rid, i)?;
            }
        }
        Ok(out)
    }

    /// Materializes the full join `T` (all dimensions) — the paper's JoinAll
    /// input.
    pub fn materialize_all(&self) -> Result<Table> {
        self.materialize(&vec![true; self.dims.len()])
    }

    /// New star schema containing only the fact rows in `idx` (all dimensions
    /// untouched). Used for train/validation/test splitting — dimension
    /// tables are metadata, not examples.
    pub fn gather_fact_rows(&self, idx: &[usize]) -> Result<StarSchema> {
        let fact = self.fact.gather_rows(idx)?;
        // Rows were only removed, so integrity still holds; revalidate anyway
        // to keep the constructor the single source of truth.
        StarSchema::new(fact, self.dims.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::CatColumn;
    use crate::domain::CatDomain;
    use crate::schema::{ColumnDef, TableSchema};
    use std::sync::Arc;

    fn two_dim_star() -> StarSchema {
        let k1 = CatDomain::synthetic("fk1", 2).into_shared();
        let k2 = CatDomain::synthetic("fk2", 3).into_shared();
        let bin = CatDomain::synthetic("bin", 2).into_shared();

        let fact = Table::new(
            TableSchema::new(
                "S",
                vec![
                    ColumnDef::new("y", ColumnRole::Target),
                    ColumnDef::new("xs", ColumnRole::HomeFeature),
                    ColumnDef::new("fk1", ColumnRole::ForeignKey { dim: 0 }),
                    ColumnDef::new("fk2", ColumnRole::ForeignKey { dim: 1 }),
                ],
            )
            .unwrap(),
            vec![
                CatColumn::new(Arc::clone(&bin), vec![0, 1, 1, 0, 1, 0]).unwrap(),
                CatColumn::new(Arc::clone(&bin), vec![0, 0, 1, 1, 0, 1]).unwrap(),
                CatColumn::new(Arc::clone(&k1), vec![0, 1, 0, 1, 0, 1]).unwrap(),
                CatColumn::new(Arc::clone(&k2), vec![0, 1, 2, 0, 1, 2]).unwrap(),
            ],
        )
        .unwrap();

        let r1 = Table::new(
            TableSchema::new(
                "R1",
                vec![
                    ColumnDef::new("rid", ColumnRole::Id),
                    ColumnDef::new("a", ColumnRole::HomeFeature),
                ],
            )
            .unwrap(),
            vec![
                CatColumn::new(Arc::clone(&k1), vec![0, 1]).unwrap(),
                CatColumn::new(Arc::clone(&bin), vec![1, 0]).unwrap(),
            ],
        )
        .unwrap();

        let r2 = Table::new(
            TableSchema::new(
                "R2",
                vec![
                    ColumnDef::new("rid", ColumnRole::Id),
                    ColumnDef::new("b", ColumnRole::HomeFeature),
                    ColumnDef::new("c", ColumnRole::HomeFeature),
                ],
            )
            .unwrap(),
            vec![
                CatColumn::new(Arc::clone(&k2), vec![0, 1, 2]).unwrap(),
                CatColumn::new(Arc::clone(&bin), vec![0, 1, 1]).unwrap(),
                CatColumn::new(Arc::clone(&bin), vec![1, 1, 0]).unwrap(),
            ],
        )
        .unwrap();

        StarSchema::new(
            fact,
            vec![
                Dimension::new(r1, "rid", "fk1"),
                Dimension::new(r2, "rid", "fk2"),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates_bindings() {
        let star = two_dim_star();
        assert_eq!(star.q(), 2);
        assert_eq!(star.tuple_ratio(0), 3.0);
        assert_eq!(star.tuple_ratio(1), 2.0);
    }

    #[test]
    fn fk_role_mismatch_rejected() {
        let star = two_dim_star();
        // Swap the dimension order so fk tags no longer line up.
        let dims: Vec<Dimension> = star.dims().iter().rev().cloned().collect();
        let err = StarSchema::new(star.fact().clone(), dims).unwrap_err();
        assert!(matches!(err, RelationError::InvalidSchema(_)));
    }

    #[test]
    fn materialize_selected_dimensions() {
        let star = two_dim_star();
        let all = star.materialize_all().unwrap();
        assert_eq!(all.width(), 4 + 1 + 2); // fact + a + (b, c)
        let only_r2 = star.materialize(&[false, true]).unwrap();
        assert!(only_r2.column("a").is_err());
        assert!(only_r2.column("b").is_ok());
        // FD check by hand: rows with equal fk2 codes share b and c.
        let fk2 = only_r2.column("fk2").unwrap().codes().to_vec();
        let b = only_r2.column("b").unwrap().codes().to_vec();
        for i in 0..fk2.len() {
            for j in 0..fk2.len() {
                if fk2[i] == fk2[j] {
                    assert_eq!(b[i], b[j]);
                }
            }
        }
    }

    #[test]
    fn stats_match_table1_convention() {
        let star = two_dim_star();
        let stats = star.stats(3); // pretend 3 training rows
        assert_eq!(stats[0].tuple_ratio, 1.5);
        assert_eq!(stats[1].d_features, 2);
        assert!(!stats[0].open_domain);
    }

    #[test]
    fn gather_fact_rows_preserves_star() {
        let star = two_dim_star();
        let sub = star.gather_fact_rows(&[0, 2, 4]).unwrap();
        assert_eq!(sub.fact().n_rows(), 3);
        assert_eq!(sub.q(), 2);
    }

    #[test]
    fn open_dimension_flag_propagates() {
        let star = two_dim_star();
        let mut dims = star.dims().to_vec();
        dims[1] = dims[1].clone().open();
        let star = StarSchema::new(star.fact().clone(), dims).unwrap();
        let stats = star.stats(6);
        assert!(stats[1].open_domain);
    }
}
