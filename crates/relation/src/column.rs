//! Dictionary-encoded categorical columns.

use std::sync::Arc;

use crate::domain::CatDomain;
use crate::error::{RelationError, Result};

/// A column of categorical codes with its shared domain.
///
/// Codes are validated against the domain at construction, so every consumer
/// may index dense per-code arrays without bounds anxiety.
#[derive(Debug, Clone)]
pub struct CatColumn {
    domain: Arc<CatDomain>,
    codes: Vec<u32>,
}

impl CatColumn {
    /// Builds a column, validating every code against the domain.
    pub fn new(domain: Arc<CatDomain>, codes: Vec<u32>) -> Result<Self> {
        let k = domain.cardinality();
        if let Some(&bad) = codes.iter().find(|&&c| c >= k) {
            return Err(RelationError::DomainViolation {
                column: domain.name().to_string(),
                code: bad,
                cardinality: k,
            });
        }
        Ok(Self { domain, codes })
    }

    /// Builds a column by encoding string labels (unknowns map to `Others`
    /// when the domain has that slot).
    pub fn from_labels<S: AsRef<str>>(domain: Arc<CatDomain>, labels: &[S]) -> Result<Self> {
        let mut codes = Vec::with_capacity(labels.len());
        for l in labels {
            let l = l.as_ref();
            match domain.encode(l) {
                Some(c) => codes.push(c),
                None => {
                    return Err(RelationError::Csv(format!(
                        "label `{l}` not in domain `{}`",
                        domain.name()
                    )))
                }
            }
        }
        Ok(Self { domain, codes })
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Code at a row.
    #[inline]
    pub fn get(&self, row: usize) -> u32 {
        self.codes[row]
    }

    /// Raw code slice.
    #[inline]
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// Shared domain.
    pub fn domain(&self) -> &Arc<CatDomain> {
        &self.domain
    }

    /// Domain cardinality (codes are `< cardinality`).
    pub fn cardinality(&self) -> u32 {
        self.domain.cardinality()
    }

    /// New column containing `rows[i] = self[idx[i]]`.
    pub fn gather(&self, idx: &[usize]) -> CatColumn {
        let codes = idx.iter().map(|&i| self.codes[i]).collect();
        Self {
            domain: Arc::clone(&self.domain),
            codes,
        }
    }

    /// Per-code occurrence counts (dense, length = cardinality).
    pub fn value_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.cardinality() as usize];
        for &c in &self.codes {
            counts[c as usize] += 1;
        }
        counts
    }

    /// Number of codes that actually occur at least once.
    pub fn distinct_present(&self) -> usize {
        self.value_counts().iter().filter(|&&c| c > 0).count()
    }

    /// Replaces the domain+codes through a total remapping `f: old -> new`.
    /// Used by FK domain compression. `new_domain.cardinality()` must bound
    /// the mapped codes.
    pub fn remap(&self, new_domain: Arc<CatDomain>, map: &[u32]) -> Result<CatColumn> {
        debug_assert_eq!(map.len(), self.cardinality() as usize);
        let codes: Vec<u32> = self.codes.iter().map(|&c| map[c as usize]).collect();
        CatColumn::new(new_domain, codes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dom(k: u32) -> Arc<CatDomain> {
        CatDomain::synthetic("d", k).into_shared()
    }

    #[test]
    fn construction_validates_codes() {
        let d = dom(3);
        assert!(CatColumn::new(Arc::clone(&d), vec![0, 1, 2, 1]).is_ok());
        let err = CatColumn::new(d, vec![0, 3]).unwrap_err();
        assert!(matches!(
            err,
            RelationError::DomainViolation { code: 3, .. }
        ));
    }

    #[test]
    fn from_labels_encodes() {
        let d = dom(3);
        let col = CatColumn::from_labels(Arc::clone(&d), &["v2", "v0"]).unwrap();
        assert_eq!(col.codes(), &[2, 0]);
        assert!(CatColumn::from_labels(d, &["bogus"]).is_err());
    }

    #[test]
    fn gather_reorders_rows() {
        let d = dom(4);
        let col = CatColumn::new(d, vec![3, 1, 0, 2]).unwrap();
        let g = col.gather(&[2, 0, 0]);
        assert_eq!(g.codes(), &[0, 3, 3]);
    }

    #[test]
    fn value_counts_dense() {
        let d = dom(4);
        let col = CatColumn::new(d, vec![1, 1, 3]).unwrap();
        assert_eq!(col.value_counts(), vec![0, 2, 0, 1]);
        assert_eq!(col.distinct_present(), 2);
    }

    #[test]
    fn remap_compresses_domain() {
        let d = dom(4);
        let col = CatColumn::new(d, vec![0, 1, 2, 3]).unwrap();
        let small = CatDomain::synthetic("small", 2).into_shared();
        let mapped = col.remap(small, &[0, 0, 1, 1]).unwrap();
        assert_eq!(mapped.codes(), &[0, 0, 1, 1]);
        assert_eq!(mapped.cardinality(), 2);
    }
}
