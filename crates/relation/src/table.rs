//! Immutable columnar tables of categorical data.

use crate::column::CatColumn;
use crate::error::{RelationError, Result};
use crate::schema::{ColumnDef, ColumnRole, TableSchema};

/// An immutable table: a schema plus one categorical column per definition.
///
/// All columns have identical length. Tables are cheap to project and gather
/// (columns share domains via `Arc`; codes are copied only when rows move).
#[derive(Debug, Clone)]
pub struct Table {
    schema: TableSchema,
    columns: Vec<CatColumn>,
    n_rows: usize,
}

impl Table {
    /// Builds a table, checking that column count and lengths agree with the
    /// schema.
    pub fn new(schema: TableSchema, columns: Vec<CatColumn>) -> Result<Self> {
        if schema.width() != columns.len() {
            return Err(RelationError::InvalidSchema(format!(
                "schema `{}` declares {} columns but {} were provided",
                schema.name(),
                schema.width(),
                columns.len()
            )));
        }
        let n_rows = columns.first().map_or(0, CatColumn::len);
        for c in &columns {
            if c.len() != n_rows {
                return Err(RelationError::LengthMismatch {
                    expected: n_rows,
                    got: c.len(),
                });
            }
        }
        Ok(Self {
            schema,
            columns,
            n_rows,
        })
    }

    /// Table schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Table name (from the schema).
    pub fn name(&self) -> &str {
        self.schema.name()
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Column by position.
    pub fn column_at(&self, i: usize) -> &CatColumn {
        &self.columns[i]
    }

    /// Column by name.
    pub fn column(&self, name: &str) -> Result<&CatColumn> {
        self.schema.index_of(name).map(|i| &self.columns[i])
    }

    /// All columns in schema order.
    pub fn columns(&self) -> &[CatColumn] {
        &self.columns
    }

    /// New table with a subset of columns (by index), preserving order given.
    pub fn project(&self, indices: &[usize]) -> Result<Table> {
        for &i in indices {
            if i >= self.columns.len() {
                return Err(RelationError::InvalidSchema(format!(
                    "projection index {i} out of bounds for width {}",
                    self.columns.len()
                )));
            }
        }
        let schema = self.schema.project(indices);
        let columns = indices.iter().map(|&i| self.columns[i].clone()).collect();
        Table::new(schema, columns)
    }

    /// New table with a subset of columns (by name).
    pub fn project_named(&self, names: &[&str]) -> Result<Table> {
        let indices = names
            .iter()
            .map(|n| self.schema.index_of(n))
            .collect::<Result<Vec<_>>>()?;
        self.project(&indices)
    }

    /// New table containing rows `idx[0], idx[1], ..` (duplicates allowed —
    /// this is the gather primitive joins and splits are built on).
    pub fn gather_rows(&self, idx: &[usize]) -> Result<Table> {
        if let Some(&bad) = idx.iter().find(|&&i| i >= self.n_rows) {
            return Err(RelationError::InvalidSchema(format!(
                "row index {bad} out of bounds for {} rows",
                self.n_rows
            )));
        }
        let columns = self.columns.iter().map(|c| c.gather(idx)).collect();
        Table::new(self.schema.clone(), columns)
    }

    /// Appends a column (e.g. foreign features during a join).
    pub fn with_column(&self, def: ColumnDef, column: CatColumn) -> Result<Table> {
        if column.len() != self.n_rows {
            return Err(RelationError::LengthMismatch {
                expected: self.n_rows,
                got: column.len(),
            });
        }
        let schema = self.schema.with_column(def)?;
        let mut columns = self.columns.clone();
        columns.push(column);
        Table::new(schema, columns)
    }

    /// Replaces the column at `i`, keeping its definition name/role unless a
    /// new definition is supplied.
    pub fn replace_column(&self, i: usize, column: CatColumn) -> Result<Table> {
        if i >= self.columns.len() {
            return Err(RelationError::InvalidSchema(format!(
                "column index {i} out of bounds"
            )));
        }
        if column.len() != self.n_rows {
            return Err(RelationError::LengthMismatch {
                expected: self.n_rows,
                got: column.len(),
            });
        }
        let mut columns = self.columns.clone();
        columns[i] = column;
        Table::new(self.schema.clone(), columns)
    }

    /// Extracts the target column as booleans (code 1 = positive). The paper
    /// binarises every task (§3.1), so targets are two-valued by convention.
    pub fn target_as_bool(&self) -> Result<Vec<bool>> {
        let idx = self
            .schema
            .target_index()
            .ok_or_else(|| RelationError::InvalidSchema("no target column".into()))?;
        let col = &self.columns[idx];
        if col.cardinality() != 2 {
            return Err(RelationError::InvalidSchema(format!(
                "target column must be binary, found cardinality {}",
                col.cardinality()
            )));
        }
        Ok(col.codes().iter().map(|&c| c == 1).collect())
    }

    /// Renames the table (used when materialized joins produce new tables).
    pub fn renamed(&self, name: impl Into<String>) -> Table {
        let schema = TableSchema::new(name, self.schema.columns().to_vec())
            .expect("existing schema column names are unique");
        Table {
            schema,
            columns: self.columns.clone(),
            n_rows: self.n_rows,
        }
    }

    /// Indices of feature columns, honouring role semantics.
    pub fn feature_indices(&self) -> Vec<usize> {
        self.schema.indices_where(ColumnRole::is_feature)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::CatDomain;
    use std::sync::Arc;

    fn toy() -> Table {
        let d2 = CatDomain::synthetic("b", 2).into_shared();
        let d4 = CatDomain::synthetic("f", 4).into_shared();
        let schema = TableSchema::new(
            "S",
            vec![
                ColumnDef::new("y", ColumnRole::Target),
                ColumnDef::new("xs", ColumnRole::HomeFeature),
                ColumnDef::new("fk", ColumnRole::ForeignKey { dim: 0 }),
            ],
        )
        .unwrap();
        Table::new(
            schema,
            vec![
                CatColumn::new(Arc::clone(&d2), vec![0, 1, 1, 0]).unwrap(),
                CatColumn::new(d2, vec![1, 1, 0, 0]).unwrap(),
                CatColumn::new(d4, vec![0, 1, 2, 3]).unwrap(),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_checks_lengths_and_width() {
        let d = CatDomain::synthetic("d", 2).into_shared();
        let schema = TableSchema::new(
            "t",
            vec![
                ColumnDef::new("a", ColumnRole::HomeFeature),
                ColumnDef::new("b", ColumnRole::HomeFeature),
            ],
        )
        .unwrap();
        let short = CatColumn::new(Arc::clone(&d), vec![0]).unwrap();
        let long = CatColumn::new(Arc::clone(&d), vec![0, 1]).unwrap();
        assert!(Table::new(schema.clone(), vec![long.clone(), short]).is_err());
        assert!(Table::new(schema.clone(), vec![long.clone()]).is_err());
        assert!(Table::new(schema, vec![long.clone(), long]).is_ok());
    }

    #[test]
    fn projection_and_gather() {
        let t = toy();
        let p = t.project_named(&["fk", "y"]).unwrap();
        assert_eq!(p.width(), 2);
        assert_eq!(p.column_at(0).codes(), &[0, 1, 2, 3]);

        let g = t.gather_rows(&[3, 3, 0]).unwrap();
        assert_eq!(g.n_rows(), 3);
        assert_eq!(g.column("fk").unwrap().codes(), &[3, 3, 0]);
        assert!(t.gather_rows(&[4]).is_err());
    }

    #[test]
    fn target_extraction() {
        let t = toy();
        assert_eq!(t.target_as_bool().unwrap(), vec![false, true, true, false]);
    }

    #[test]
    fn with_and_replace_column() {
        let t = toy();
        let d3 = CatDomain::synthetic("xr", 3).into_shared();
        let col = CatColumn::new(d3, vec![2, 2, 1, 0]).unwrap();
        let t2 = t
            .with_column(
                ColumnDef::new("xr", ColumnRole::ForeignFeature { dim: 0 }),
                col.clone(),
            )
            .unwrap();
        assert_eq!(t2.width(), 4);
        let t3 = t2.replace_column(3, col).unwrap();
        assert_eq!(t3.column("xr").unwrap().codes(), &[2, 2, 1, 0]);

        let short = CatColumn::new(CatDomain::synthetic("s", 2).into_shared(), vec![0]).unwrap();
        assert!(t
            .with_column(ColumnDef::new("s", ColumnRole::HomeFeature), short)
            .is_err());
    }

    #[test]
    fn feature_indices_skip_id_and_target() {
        let t = toy();
        assert_eq!(t.feature_indices(), vec![1, 2]);
    }
}
