//! Error type for the relational substrate.

use std::fmt;

/// Errors raised by table construction, joins and star-schema validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelationError {
    /// A column name was not found in a table schema.
    ColumnNotFound {
        /// Table whose schema was searched.
        table: String,
        /// Requested column name.
        column: String,
    },
    /// A categorical code is outside its domain's cardinality.
    DomainViolation {
        /// Offending column.
        column: String,
        /// Code found in the data.
        code: u32,
        /// Domain cardinality (codes must be `< cardinality`).
        cardinality: u32,
    },
    /// Two columns of the same table have different lengths.
    LengthMismatch {
        /// Expected number of rows.
        expected: usize,
        /// Actual number of rows found.
        got: usize,
    },
    /// A schema declares the same column name twice.
    DuplicateColumn(String),
    /// A fact-table foreign key value has no matching dimension row.
    ReferentialIntegrity {
        /// Foreign-key column in the fact table.
        fk_column: String,
        /// Dangling code.
        code: u32,
    },
    /// Joining columns draw from incompatible domains.
    DomainMismatch {
        /// Left (probe) column.
        left: String,
        /// Right (build) column.
        right: String,
    },
    /// The dimension table's key column is not a primary key (duplicates).
    NotAKey {
        /// Key column name.
        column: String,
        /// A code that appears more than once.
        code: u32,
    },
    /// Generic schema-level invariant violation.
    InvalidSchema(String),
    /// CSV parse failure.
    Csv(String),
    /// I/O failure (message only; `std::io::Error` is not `Clone`).
    Io(String),
}

impl fmt::Display for RelationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ColumnNotFound { table, column } => {
                write!(f, "column `{column}` not found in table `{table}`")
            }
            Self::DomainViolation {
                column,
                code,
                cardinality,
            } => write!(
                f,
                "code {code} out of domain for column `{column}` (cardinality {cardinality})"
            ),
            Self::LengthMismatch { expected, got } => {
                write!(f, "column length mismatch: expected {expected}, got {got}")
            }
            Self::DuplicateColumn(name) => write!(f, "duplicate column name `{name}`"),
            Self::ReferentialIntegrity { fk_column, code } => write!(
                f,
                "referential integrity violated: FK `{fk_column}` code {code} has no dimension row"
            ),
            Self::DomainMismatch { left, right } => {
                write!(f, "domain mismatch between `{left}` and `{right}`")
            }
            Self::NotAKey { column, code } => {
                write!(f, "column `{column}` is not a key: code {code} duplicated")
            }
            Self::InvalidSchema(msg) => write!(f, "invalid schema: {msg}"),
            Self::Csv(msg) => write!(f, "csv error: {msg}"),
            Self::Io(msg) => write!(f, "io error: {msg}"),
        }
    }
}

impl std::error::Error for RelationError {}

impl From<std::io::Error> for RelationError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e.to_string())
    }
}

/// Convenience result alias used throughout the substrate.
pub type Result<T> = std::result::Result<T, RelationError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = RelationError::ColumnNotFound {
            table: "S".into(),
            column: "FK1".into(),
        };
        assert!(e.to_string().contains("FK1"));
        assert!(e.to_string().contains('S'));

        let e = RelationError::DomainViolation {
            column: "c".into(),
            code: 9,
            cardinality: 4,
        };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('4'));

        let e = RelationError::ReferentialIntegrity {
            fk_column: "FK".into(),
            code: 3,
        };
        assert!(e.to_string().contains("FK"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: RelationError = io.into();
        assert!(matches!(e, RelationError::Io(_)));
        assert!(e.to_string().contains("gone"));
    }
}
