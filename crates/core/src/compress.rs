//! Foreign-key domain compression (§6.1).
//!
//! Large FK domains make trees unreadable. The paper evaluates two lossy
//! maps `f : [m] → [l]` for a user budget `l ≪ m`:
//!
//! - **Random** — the unsupervised hashing trick: hash each code into `[l]`.
//! - **Sort-based** — a supervised greedy method: sort the FK's codes by
//!   the conditional entropy `H(Y | FK = z)` estimated on the training
//!   split, compute adjacent differences, and cut at the top `l − 1` gaps,
//!   yielding an `l`-partition that groups codes with comparable label
//!   uncertainty.
//!
//! Maps are built on training data only and then applied to every split.

use hamlet_ml::dataset::CatDataset;
use hamlet_ml::error::{MlError, Result};

/// Compression method (Figure 10 compares the paper's two; `RateBased` is
/// this library's extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum CompressionMethod {
    /// Unsupervised random hashing into the budget.
    RandomHash {
        /// Hash seed (the paper averages five seeds).
        seed: u64,
    },
    /// Supervised sort-by-conditional-entropy grouping — the paper's §6.1
    /// method, verbatim. Note its blind spot: entropy is symmetric in the
    /// class, so a pure-positive and a pure-negative FK value have equal
    /// `H(Y|FK=z)` and can land in one group, cancelling out.
    SortBased,
    /// Extension: sort by the *positive rate* `P(Y=1 | FK = z)` instead of
    /// its entropy. Same greedy top-gap cuts, but sign-aware, so groups
    /// never mix opposing codes. Strictly dominates `SortBased` when the FK
    /// is the signal carrier (see the `fk_compression` example and the
    /// fig10 ablation column).
    RateBased,
}

/// A total map from an FK's old codes onto `0..budget`.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FkCompression {
    /// Feature index the map applies to.
    pub feature: usize,
    /// `map[old_code] = new_code < budget`.
    pub map: Vec<u32>,
    /// New domain size.
    pub budget: u32,
}

/// SplitMix64 — cheap, seedable, and good enough for the hashing trick.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Builds a compression map for feature `feature` of the training split.
pub fn build_compression(
    train: &CatDataset,
    feature: usize,
    budget: u32,
    method: CompressionMethod,
) -> Result<FkCompression> {
    if feature >= train.n_features() {
        return Err(MlError::Invalid(format!(
            "feature index {feature} out of range"
        )));
    }
    if budget == 0 {
        return Err(MlError::Invalid("budget must be positive".into()));
    }
    let m = train.feature(feature).cardinality;
    if budget >= m {
        // Nothing to compress: identity map.
        return Ok(FkCompression {
            feature,
            map: (0..m).collect(),
            budget: m,
        });
    }

    let map = match method {
        CompressionMethod::RandomHash { seed } => (0..m)
            .map(|code| (splitmix64(seed ^ u64::from(code)) % u64::from(budget)) as u32)
            .collect(),
        CompressionMethod::SortBased | CompressionMethod::RateBased => {
            // Per-code label counts on the training split.
            let codes = train.column(feature);
            let mut counts = vec![(0usize, 0usize); m as usize];
            for (&c, &y) in codes.iter().zip(train.labels()) {
                counts[c as usize].0 += 1;
                counts[c as usize].1 += usize::from(y);
            }
            let entropy = |n: usize, pos: usize| -> f64 {
                if n == 0 || pos == 0 || pos == n {
                    return 0.0;
                }
                let p = pos as f64 / n as f64;
                -(p * p.log2() + (1.0 - p) * (1.0 - p).log2())
            };
            // Sort key: H(Y|FK=z) for the paper's method, P(Y=1|FK=z) for
            // the rate-based extension.
            let key = |c: u32| -> f64 {
                let (n, pos) = counts[c as usize];
                match method {
                    CompressionMethod::SortBased => entropy(n, pos),
                    CompressionMethod::RateBased => pos as f64 / n.max(1) as f64,
                    CompressionMethod::RandomHash { .. } => unreachable!(),
                }
            };
            // Seen codes sorted by the key (ties by code for determinism;
            // the paper breaks ties randomly).
            let mut seen: Vec<u32> = (0..m).filter(|&c| counts[c as usize].0 > 0).collect();
            seen.sort_by(|&a, &b| {
                key(a)
                    .partial_cmp(&key(b))
                    .expect("sort keys are finite")
                    .then(a.cmp(&b))
            });

            let mut map = vec![0u32; m as usize];
            if seen.len() <= budget as usize {
                // Each seen code gets its own group.
                for (g, &c) in seen.iter().enumerate() {
                    map[c as usize] = g as u32;
                }
                let spill = (seen.len() as u32).saturating_sub(1);
                for c in 0..m {
                    if counts[c as usize].0 == 0 {
                        map[c as usize] = spill; // unseen codes share the
                                                 // last (least certain) group
                    }
                }
            } else {
                // Top (budget − 1) adjacent key gaps become boundaries.
                let gaps: Vec<(f64, usize)> = seen
                    .windows(2)
                    .enumerate()
                    .map(|(i, w)| ((key(w[1]) - key(w[0])).abs(), i))
                    .collect();
                let mut by_gap = gaps.clone();
                by_gap.sort_by(|a, b| {
                    b.0.partial_cmp(&a.0)
                        .expect("gaps are finite")
                        .then(a.1.cmp(&b.1))
                });
                let mut boundaries: Vec<usize> = by_gap[..(budget as usize - 1)]
                    .iter()
                    .map(|&(_, i)| i)
                    .collect();
                boundaries.sort_unstable();

                let mut group = 0u32;
                let mut next_boundary = 0usize;
                for (pos, &c) in seen.iter().enumerate() {
                    map[c as usize] = group;
                    if next_boundary < boundaries.len() && pos == boundaries[next_boundary] {
                        group += 1;
                        next_boundary += 1;
                    }
                }
                // Unseen codes join the final group: we know nothing about
                // them, so they belong with the least informative codes.
                for c in 0..m {
                    if counts[c as usize].0 == 0 {
                        map[c as usize] = group;
                    }
                }
            }
            map
        }
    };
    // New domain size: highest group id actually assigned (≤ budget).
    let budget_used = map.iter().copied().max().unwrap_or(0) + 1;
    Ok(FkCompression {
        feature,
        map,
        budget: budget_used,
    })
}

impl FkCompression {
    /// Applies the map to a dataset (any split), rewriting the FK column and
    /// shrinking its cardinality.
    pub fn apply(&self, ds: &CatDataset) -> Result<CatDataset> {
        let codes = ds.column(self.feature);
        let mapped: Vec<u32> = codes.iter().map(|&c| self.map[c as usize]).collect();
        ds.replace_column(self.feature, mapped, self.budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hamlet_ml::dataset::{FeatureMeta, Provenance};

    fn fk_dataset(m: u32, n_per_code: usize) -> CatDataset {
        // Deterministic labels: codes < m/2 are mostly positive.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for c in 0..m {
            for i in 0..n_per_code {
                rows.push(c);
                let pos = c < m / 2;
                labels.push(if i % 5 == 0 { !pos } else { pos });
            }
        }
        CatDataset::new(
            vec![FeatureMeta::new("fk", m, Provenance::ForeignKey { dim: 0 })],
            rows,
            labels,
        )
        .unwrap()
    }

    #[test]
    fn random_hash_respects_budget_and_is_total() {
        let ds = fk_dataset(64, 4);
        let c = build_compression(&ds, 0, 8, CompressionMethod::RandomHash { seed: 7 }).unwrap();
        assert_eq!(c.map.len(), 64);
        assert!(c.map.iter().all(|&g| g < 8));
        let applied = c.apply(&ds).unwrap();
        assert!(applied.feature(0).cardinality <= 8);
    }

    #[test]
    fn random_hash_is_seed_deterministic() {
        let ds = fk_dataset(32, 2);
        let a = build_compression(&ds, 0, 4, CompressionMethod::RandomHash { seed: 1 }).unwrap();
        let b = build_compression(&ds, 0, 4, CompressionMethod::RandomHash { seed: 1 }).unwrap();
        assert_eq!(a.map, b.map);
        let c = build_compression(&ds, 0, 4, CompressionMethod::RandomHash { seed: 2 }).unwrap();
        assert_ne!(a.map, c.map);
    }

    #[test]
    fn sort_based_groups_by_entropy() {
        let ds = fk_dataset(20, 10);
        let c = build_compression(&ds, 0, 4, CompressionMethod::SortBased).unwrap();
        assert!(c.map.iter().all(|&g| g < 4));
        // All codes in this dataset have identical conditional entropy
        // (same 4:1 mix), so sort order is by code and groups are contiguous
        // runs — check the map is a valid partition either way.
        let applied = c.apply(&ds).unwrap();
        assert!(applied.feature(0).cardinality <= 4);
    }

    #[test]
    fn sort_based_separates_pure_from_noisy_codes() {
        // Codes 0..4 pure positive (H=0); codes 4..8 50/50 (H=1). With
        // budget 2 the cut must land between the pure and noisy groups.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for c in 0..8u32 {
            for i in 0..10 {
                rows.push(c);
                labels.push(if c < 4 { true } else { i % 2 == 0 });
            }
        }
        let ds = CatDataset::new(
            vec![FeatureMeta::new("fk", 8, Provenance::ForeignKey { dim: 0 })],
            rows,
            labels,
        )
        .unwrap();
        let c = build_compression(&ds, 0, 2, CompressionMethod::SortBased).unwrap();
        let pure_group = c.map[0];
        for code in 0..4 {
            assert_eq!(c.map[code], pure_group);
        }
        for code in 4..8 {
            assert_ne!(c.map[code], pure_group);
        }
    }

    #[test]
    fn rate_based_never_mixes_opposing_pure_codes() {
        // Codes 0..4 pure positive, 4..8 pure negative. Entropy sorting sees
        // them as identical (H = 0) and may merge them; rate sorting puts a
        // clean boundary between the two signs.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for c in 0..8u32 {
            for _ in 0..6 {
                rows.push(c);
                labels.push(c < 4);
            }
        }
        let ds = CatDataset::new(
            vec![FeatureMeta::new("fk", 8, Provenance::ForeignKey { dim: 0 })],
            rows,
            labels,
        )
        .unwrap();
        let c = build_compression(&ds, 0, 2, CompressionMethod::RateBased).unwrap();
        // Negative codes (rate 0) sort first → group 0; positives → group 1.
        for code in 0..4 {
            assert_eq!(c.map[code + 4], 0, "negative codes share a group");
            assert_eq!(c.map[code], 1, "positive codes share a group");
        }
    }

    #[test]
    fn budget_at_least_domain_is_identity() {
        let ds = fk_dataset(8, 2);
        let c = build_compression(&ds, 0, 100, CompressionMethod::SortBased).unwrap();
        assert_eq!(c.map, (0..8).collect::<Vec<u32>>());
    }

    #[test]
    fn zero_budget_rejected() {
        let ds = fk_dataset(8, 2);
        assert!(build_compression(&ds, 0, 0, CompressionMethod::SortBased).is_err());
        assert!(build_compression(&ds, 5, 2, CompressionMethod::SortBased).is_err());
    }

    #[test]
    fn unseen_codes_get_a_group() {
        // Cardinality 10 but only codes 0..3 appear.
        let ds = CatDataset::new(
            vec![FeatureMeta::new(
                "fk",
                10,
                Provenance::ForeignKey { dim: 0 },
            )],
            vec![0, 1, 2, 0, 1, 2],
            vec![true, false, true, true, false, true],
        )
        .unwrap();
        let c = build_compression(&ds, 0, 2, CompressionMethod::SortBased).unwrap();
        for code in 0..10 {
            assert!(c.map[code] < 2);
        }
    }
}
