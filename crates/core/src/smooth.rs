//! Foreign-key smoothing for values unseen in training (§6.2).
//!
//! With a large `|D_FK|`, some FK values in `D_FK` never appear among the
//! training examples but do appear at test/deployment time (this is *not*
//! cold start — the values are in the known domain). Popular R tree
//! implementations simply crash. The paper evaluates two lightweight
//! reassignment schemes, applied before prediction:
//!
//! - **Random** — map each unseen FK value to a uniformly random seen one.
//! - **X_R-based** — use the dimension table as *side information*: map an
//!   unseen FK value to the seen FK value whose foreign-feature vector has
//!   minimum `l0` (Hamming) distance. Available whenever the dimension
//!   table exists, even under NoJoin — the features guide smoothing without
//!   ever being model inputs ("best of both worlds", §6.2).

use hamlet_ml::dataset::CatDataset;
use hamlet_ml::error::{MlError, Result};
use hamlet_relation::table::Table;
use rand::Rng;
use rand::SeedableRng;

/// Smoothing method (Figure 11 compares the two).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum SmoothingMethod {
    /// Uniform random reassignment among seen codes.
    Random {
        /// RNG seed.
        seed: u64,
    },
    /// Minimum-l0 match on the dimension's feature vectors.
    XrBased,
}

/// A total FK-code rewrite: seen codes map to themselves, unseen codes map
/// to a chosen seen code.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FkSmoothing {
    /// Feature index the map applies to.
    pub feature: usize,
    /// `map[code] = reassigned code` (identity for seen codes).
    pub map: Vec<u32>,
    /// How many codes were unseen (and thus reassigned).
    pub n_unseen: usize,
}

/// Which codes of feature `feature` appear in the training split.
pub fn seen_mask(train: &CatDataset, feature: usize) -> Vec<bool> {
    let m = train.feature(feature).cardinality as usize;
    let mut seen = vec![false; m];
    for code in train.column(feature) {
        seen[code as usize] = true;
    }
    seen
}

/// Builds a smoothing map for the FK at `feature`.
///
/// For [`SmoothingMethod::XrBased`], pass the dimension table; its row order
/// must align with FK codes (row `r` describes FK code `r`), which is how
/// every generator in `hamlet-datagen` lays dimensions out.
pub fn build_smoothing(
    train: &CatDataset,
    feature: usize,
    method: SmoothingMethod,
    dimension: Option<&Table>,
) -> Result<FkSmoothing> {
    if feature >= train.n_features() {
        return Err(MlError::Invalid(format!(
            "feature index {feature} out of range"
        )));
    }
    let seen = seen_mask(train, feature);
    let seen_codes: Vec<u32> = (0..seen.len() as u32)
        .filter(|&c| seen[c as usize])
        .collect();
    if seen_codes.is_empty() {
        return Err(MlError::Invalid("no FK codes seen in training".into()));
    }
    let mut map: Vec<u32> = (0..seen.len() as u32).collect();
    let mut n_unseen = 0usize;

    match method {
        SmoothingMethod::Random { seed } => {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            for code in 0..seen.len() {
                if !seen[code] {
                    map[code] = seen_codes[rng.gen_range(0..seen_codes.len())];
                    n_unseen += 1;
                }
            }
        }
        SmoothingMethod::XrBased => {
            let dim = dimension.ok_or_else(|| {
                MlError::Invalid("X_R-based smoothing needs the dimension table".into())
            })?;
            if dim.n_rows() < seen.len() {
                return Err(MlError::Shape {
                    detail: format!(
                        "dimension has {} rows but the FK domain has {}",
                        dim.n_rows(),
                        seen.len()
                    ),
                });
            }
            // Feature columns of the dimension (everything but the key).
            let cols: Vec<&[u32]> = dim
                .schema()
                .columns()
                .iter()
                .enumerate()
                .filter(|(_, def)| def.role != hamlet_relation::schema::ColumnRole::Id)
                .map(|(i, _)| dim.column_at(i).codes())
                .collect();
            for code in 0..seen.len() {
                if seen[code] {
                    continue;
                }
                n_unseen += 1;
                // Minimum-l0 seen code (ties → lowest code, the
                // deterministic stand-in for the paper's random tie-break).
                let mut best = seen_codes[0];
                let mut best_dist = usize::MAX;
                for &cand in &seen_codes {
                    let dist = cols
                        .iter()
                        .filter(|col| col[code] != col[cand as usize])
                        .count();
                    if dist < best_dist {
                        best_dist = dist;
                        best = cand;
                        if dist == 0 {
                            break;
                        }
                    }
                }
                map[code] = best;
            }
        }
    }
    Ok(FkSmoothing {
        feature,
        map,
        n_unseen,
    })
}

impl FkSmoothing {
    /// Applies the rewrite to a dataset split (typically validation/test).
    /// Cardinality is unchanged — smoothing only redirects codes.
    pub fn apply(&self, ds: &CatDataset) -> Result<CatDataset> {
        let card = ds.feature(self.feature).cardinality;
        let codes = ds.column(self.feature);
        let mapped: Vec<u32> = codes.iter().map(|&c| self.map[c as usize]).collect();
        ds.replace_column(self.feature, mapped, card)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hamlet_ml::dataset::{FeatureMeta, Provenance};
    use hamlet_relation::prelude::*;
    use std::sync::Arc;

    fn train_with_seen(seen: &[u32], m: u32) -> CatDataset {
        CatDataset::new(
            vec![FeatureMeta::new("fk", m, Provenance::ForeignKey { dim: 0 })],
            seen.to_vec(),
            vec![true; seen.len()],
        )
        .unwrap()
    }

    fn dimension(xr: Vec<Vec<u32>>) -> Table {
        let n = xr[0].len();
        let key = CatDomain::synthetic("rid", n as u32).into_shared();
        let bin = CatDomain::synthetic("b", 4).into_shared();
        let mut defs = vec![ColumnDef::new("rid", ColumnRole::Id)];
        let mut cols = vec![CatColumn::new(key, (0..n as u32).collect()).unwrap()];
        for (j, codes) in xr.into_iter().enumerate() {
            defs.push(ColumnDef::new(format!("xr{j}"), ColumnRole::HomeFeature));
            cols.push(CatColumn::new(Arc::clone(&bin), codes).unwrap());
        }
        Table::new(TableSchema::new("r", defs).unwrap(), cols).unwrap()
    }

    #[test]
    fn seen_mask_reflects_training() {
        let train = train_with_seen(&[0, 2, 2], 4);
        assert_eq!(seen_mask(&train, 0), vec![true, false, true, false]);
    }

    #[test]
    fn random_smoothing_targets_seen_codes_only() {
        let train = train_with_seen(&[0, 2], 6);
        let s = build_smoothing(&train, 0, SmoothingMethod::Random { seed: 3 }, None).unwrap();
        assert_eq!(s.n_unseen, 4);
        for code in [1usize, 3, 4, 5] {
            assert!(matches!(s.map[code], 0 | 2));
        }
        assert_eq!(s.map[0], 0);
        assert_eq!(s.map[2], 2);
    }

    #[test]
    fn xr_smoothing_picks_nearest_feature_vector() {
        // Codes 0,1 seen. Code 2's features equal code 1's; code 3's equal
        // code 0's.
        let train = train_with_seen(&[0, 1], 4);
        let dim = dimension(vec![
            vec![0, 1, 1, 0], // xr0 per rid
            vec![2, 3, 3, 2], // xr1 per rid
        ]);
        let s = build_smoothing(&train, 0, SmoothingMethod::XrBased, Some(&dim)).unwrap();
        assert_eq!(s.map[2], 1);
        assert_eq!(s.map[3], 0);
    }

    #[test]
    fn xr_smoothing_requires_dimension() {
        let train = train_with_seen(&[0, 1], 4);
        assert!(build_smoothing(&train, 0, SmoothingMethod::XrBased, None).is_err());
    }

    #[test]
    fn apply_rewrites_only_unseen() {
        let train = train_with_seen(&[0, 1], 4);
        let s = build_smoothing(&train, 0, SmoothingMethod::Random { seed: 1 }, None).unwrap();
        let test = train_with_seen(&[3, 1, 2, 0], 4);
        let smoothed = s.apply(&test).unwrap();
        let codes = smoothed.column(0);
        assert!(codes[0] < 2); // 3 reassigned to a seen code
        assert_eq!(codes[1], 1);
        assert!(codes[2] < 2);
        assert_eq!(codes[3], 0);
    }

    #[test]
    fn no_unseen_codes_is_an_identity() {
        let train = train_with_seen(&[0, 1, 2, 3], 4);
        let s = build_smoothing(&train, 0, SmoothingMethod::Random { seed: 1 }, None).unwrap();
        assert_eq!(s.n_unseen, 0);
        assert_eq!(s.map, vec![0, 1, 2, 3]);
    }
}
