//! # hamlet-core
//!
//! The primary contribution of "Are Key-Foreign Key Joins Safe to Avoid
//! when Learning High-Capacity Classifiers?" (Shah, Kumar, Zhu; VLDB 2017)
//! as a reusable Rust library: everything a practitioner needs to decide —
//! from schema information alone — whether to source and join a dimension
//! table before training a classifier, plus the paper's analysis machinery.
//!
//! - [`feature_config`] — the JoinAll / NoJoin / NoFK / NoR_i feature sets
//!   over a star schema, with open-domain FK rules;
//! - [`advisor`] — the tuple-ratio decision rule with the per-family
//!   thresholds the study establishes (3× trees/ANN, 6× RBF-SVM, 20×
//!   linear);
//! - [`model_zoo`] — all ten classifiers behind one tuned-fit interface
//!   with the paper's hyper-parameter grids;
//! - [`experiment`] — end-to-end runner (join → tune → train → test) with
//!   Figure 1's timing convention;
//! - [`bias_variance`] — Domingos 0/1-loss decomposition (average test
//!   error and net variance, the simulation study's metrics);
//! - [`compress`] — FK domain compression: random hashing vs. supervised
//!   sort-based grouping (§6.1);
//! - [`smooth`] — unseen-FK smoothing: random vs. X_R-based reassignment
//!   (§6.2).
//!
//! ```
//! use hamlet_core::prelude::*;
//! use hamlet_datagen::prelude::*;
//!
//! // Generate a star schema (Yelp-shaped) and ask the advisor.
//! let g = EmulatorSpec::yelp().generate_scaled(2000, 42);
//! let report = advise(&g.star, g.n_train, ModelFamily::TreeOrAnn);
//! // The users dimension (tuple ratio ≈ 2.5) must be retained...
//! assert_eq!(report.retained(), vec!["users"]);
//! // ...while the businesses dimension (≈ 9.4) is safe to avoid.
//! assert_eq!(report.dimensions[0].advice, Advice::AvoidJoin);
//! ```

pub mod advisor;
pub mod bias_variance;
pub mod compress;
pub mod experiment;
pub mod feature_config;
pub mod model_zoo;
pub mod montecarlo;
pub mod smooth;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::advisor::{
        advise, advise_dims, sourcing_plan, threshold, Advice, AdvisorReport, DimStats,
        DimensionAdvice, SourcingPlan,
    };
    pub use crate::bias_variance::{decompose, BiasVariance};
    pub use crate::compress::{build_compression, CompressionMethod, FkCompression};
    pub use crate::experiment::{
        run_configs, run_experiment, run_experiment_with_model, RunResult, TrainedExperiment,
    };
    pub use crate::feature_config::{build_dataset, build_splits, ExperimentData, FeatureConfig};
    pub use crate::model_zoo::{Budget, ModelFamily, ModelSpec, TunedModel};
    pub use crate::montecarlo::{onexr_bayes, run_monte_carlo, xsxr_bayes, MonteCarloPoint};
    pub use crate::smooth::{build_smoothing, seen_mask, FkSmoothing, SmoothingMethod};
}
