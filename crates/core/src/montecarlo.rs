//! Monte-Carlo simulation harness (§4): average test error and net
//! variance over repeated training sets drawn from a fixed distribution.
//!
//! The paper's protocol: fix the true distribution (the dimension table /
//! TPT — the generators' `dist_seed`), draw `runs` independent training
//! datasets, tune + fit the model on each, evaluate every fitted model on
//! one *shared* test sample, and decompose the error per Domingos
//! ([`crate::bias_variance`]). The paper uses 100 runs; the harness takes
//! the count as a parameter (benches honour `HAMLET_RUNS`).

use hamlet_datagen::sim::GeneratedStar;
use hamlet_ml::error::Result;
use hamlet_ml::model::Classifier;

use crate::bias_variance::{decompose, BiasVariance};
use crate::feature_config::{build_dataset, build_splits, FeatureConfig};
use crate::model_zoo::{Budget, ModelSpec};

/// One scenario point: the decomposition for a (model, config) pair.
#[derive(Debug, Clone, serde::Serialize)]
pub struct MonteCarloPoint {
    /// Feature configuration evaluated.
    pub config: String,
    /// Model evaluated.
    pub model: String,
    /// The Domingos decomposition across runs.
    pub result: BiasVariance,
}

/// Runs the Monte-Carlo protocol for one (model, config) pair.
///
/// * `generate(sample_seed)` — produces a [`GeneratedStar`] whose *example
///   sampling* depends on the seed while the true distribution stays fixed
///   (use the generators' `dist_seed` for that).
/// * `bayes` — optional Bayes-optimal predictions for the shared star's
///   *test rows* (simulations know the true distribution; see
///   [`onexr_bayes`] / [`xsxr_bayes`]).
pub fn run_monte_carlo<G, B>(
    generate: G,
    bayes: B,
    runs: usize,
    spec: ModelSpec,
    config: &FeatureConfig,
    budget: &Budget,
    base_seed: u64,
) -> Result<MonteCarloPoint>
where
    G: Fn(u64) -> GeneratedStar,
    B: Fn(&GeneratedStar) -> Option<Vec<bool>>,
{
    // Shared evaluation sample (its own seed, never reused for training).
    let eval_star = generate(base_seed ^ 0x7E57_7E57);
    let eval_full = build_dataset(&eval_star.star, config)?;
    let eval_test = eval_full.subset(&eval_star.test_idx());
    let optimal = bayes(&eval_star);

    let mut predictions = Vec::with_capacity(runs);
    for k in 0..runs {
        let star_k = generate(base_seed.wrapping_add(1 + k as u64));
        let data = build_splits(&star_k, config)?;
        let tuned = spec.fit_tuned(&data.train, &data.val, budget)?;
        predictions.push(tuned.model.predict(&eval_test));
    }
    let result = decompose(&predictions, eval_test.labels(), optimal.as_deref())?;
    Ok(MonteCarloPoint {
        config: config.name(),
        model: spec.name().to_string(),
        result,
    })
}

/// Bayes-optimal predictions for `OneXr`/`RepOneXr` test rows: the label
/// preferred by `X_r` under flip-noise `p` (`P(Y=1 | X_r = v) = p` for odd
/// `v`, `1 − p` for even `v`).
pub fn onexr_bayes(gs: &GeneratedStar, p: f64) -> Option<Vec<bool>> {
    let joined = gs.star.materialize_all().ok()?;
    let xr = joined.column("xr0").ok()?.codes().to_vec();
    let preds = gs
        .test_idx()
        .into_iter()
        .map(|i| {
            let v = xr[i];
            let p_pos = if v % 2 == 1 { p } else { 1.0 - p };
            p_pos >= 0.5
        })
        .collect();
    Some(preds)
}

/// Bayes-optimal predictions for `XSXR` test rows: the scenario is
/// noise-free (`H(Y|X) = 0`), so the observed labels *are* optimal.
pub fn xsxr_bayes(gs: &GeneratedStar) -> Option<Vec<bool>> {
    let y = gs.star.fact().target_as_bool().ok()?;
    Some(gs.test_idx().into_iter().map(|i| y[i]).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hamlet_datagen::prelude::*;

    fn onexr_gen(n_s: usize) -> impl Fn(u64) -> GeneratedStar {
        move |seed| {
            onexr::generate(OneXrParams {
                n_s,
                seed,
                ..Default::default()
            })
        }
    }

    #[test]
    fn tree_nojoin_tracks_joinall_on_onexr() {
        // The headline simulation finding (Figure 2): with a healthy tuple
        // ratio (1000/40 = 25), the tree's NoJoin error ≈ JoinAll error ≈
        // Bayes error (0.1).
        let budget = Budget::quick();
        let p = 0.1;
        let joinall = run_monte_carlo(
            onexr_gen(600),
            |gs| onexr_bayes(gs, p),
            8,
            ModelSpec::TreeGini,
            &FeatureConfig::JoinAll,
            &budget,
            77,
        )
        .unwrap();
        let nojoin = run_monte_carlo(
            onexr_gen(600),
            |gs| onexr_bayes(gs, p),
            8,
            ModelSpec::TreeGini,
            &FeatureConfig::NoJoin,
            &budget,
            77,
        )
        .unwrap();
        assert!(
            (joinall.result.avg_error - nojoin.result.avg_error).abs() < 0.05,
            "JoinAll {} vs NoJoin {}",
            joinall.result.avg_error,
            nojoin.result.avg_error
        );
        assert!(
            nojoin.result.avg_error < 0.25,
            "{}",
            nojoin.result.avg_error
        );
    }

    #[test]
    fn decomposition_identity_without_label_noise() {
        // XSXR is noise-free: error = bias + net variance must hold exactly.
        let budget = Budget::quick();
        let point = run_monte_carlo(
            |seed| {
                xsxr::generate(XsXrParams {
                    n_s: 400,
                    seed,
                    ..Default::default()
                })
            },
            xsxr_bayes,
            6,
            ModelSpec::TreeGini,
            &FeatureConfig::JoinAll,
            &budget,
            13,
        )
        .unwrap();
        let r = point.result;
        assert!(
            (r.avg_error - (r.bias + r.net_variance)).abs() < 1e-9,
            "identity violated: {r:?}"
        );
    }

    #[test]
    fn bayes_helpers_align_with_test_rows() {
        let g = onexr::generate(OneXrParams {
            n_s: 200,
            ..Default::default()
        });
        let preds = onexr_bayes(&g, 0.1).unwrap();
        assert_eq!(preds.len(), g.n_test);
        let g2 = xsxr::generate(XsXrParams {
            n_s: 200,
            ..Default::default()
        });
        let preds2 = xsxr_bayes(&g2).unwrap();
        assert_eq!(preds2.len(), g2.n_test);
    }
}
