//! The ten classifiers of the study behind one uniform interface.
//!
//! [`ModelSpec`] enumerates every model of §3 with the paper's §3.2
//! hyper-parameter grids; [`ModelSpec::fit_tuned`] runs the full
//! tune-on-validation pipeline and returns a boxed [`Classifier`]. A
//! [`Budget`] throttles grid sizes and training-set sizes so the same code
//! drives quick CI runs, simulations and full-fidelity reproductions.

use hamlet_ml::ann::{AnnParams, Mlp};
use hamlet_ml::any::{AnyClassifier, SubsetModel};
use hamlet_ml::contract::FeatureContract;
use hamlet_ml::dataset::CatDataset;
use hamlet_ml::error::{MlError, Result};
use hamlet_ml::feature_selection::backward_selection;
use hamlet_ml::knn::OneNearestNeighbor;
use hamlet_ml::logreg::{LogRegL1, LogRegParams};
use hamlet_ml::model::Classifier;
use hamlet_ml::naive_bayes::NaiveBayes;
use hamlet_ml::svm::{KernelKind, MatchMatrix, SvmModel, SvmParams};
use hamlet_ml::tree::{CategoricalSplit, DecisionTree, SplitCriterion, TreeParams};
use hamlet_ml::tuning::grid_search;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Model families by capacity, for the tuple-ratio advisor thresholds the
/// paper derives (§3.3): trees & ANN ≈ 3×, RBF-SVM ≈ 6×, linear ≈ 20×.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ModelFamily {
    /// Decision trees and the ANN (threshold ≈ 3×). 1-NN rides along here
    /// for classification purposes, though it is far less stable.
    TreeOrAnn,
    /// Kernel SVMs (threshold ≈ 6×).
    KernelSvm,
    /// Linear-capacity models (threshold ≈ 20×).
    Linear,
}

/// Every classifier evaluated in Tables 2 and 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum ModelSpec {
    /// CART with gini (rpart default).
    TreeGini,
    /// CART with information gain.
    TreeInfoGain,
    /// CART with gain ratio (CORElearn).
    TreeGainRatio,
    /// 1-nearest neighbour (RWeka IBk, k=1).
    OneNN,
    /// Linear-kernel SVM.
    SvmLinear,
    /// Quadratic-kernel SVM.
    SvmQuadratic,
    /// RBF-kernel SVM.
    SvmRbf,
    /// Multi-layer perceptron (Keras/TensorFlow architecture).
    Ann,
    /// Naive Bayes with backward feature selection.
    NaiveBayesBfs,
    /// Logistic regression with L1 (glmnet).
    LogRegL1,
}

impl ModelSpec {
    /// All ten models in the tables' order (Table 2 block then Table 3).
    pub fn all() -> Vec<ModelSpec> {
        vec![
            Self::TreeGini,
            Self::TreeInfoGain,
            Self::TreeGainRatio,
            Self::OneNN,
            Self::SvmLinear,
            Self::SvmQuadratic,
            Self::SvmRbf,
            Self::Ann,
            Self::NaiveBayesBfs,
            Self::LogRegL1,
        ]
    }

    /// Display name as used in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Self::TreeGini => "DT-Gini",
            Self::TreeInfoGain => "DT-InfoGain",
            Self::TreeGainRatio => "DT-GainRatio",
            Self::OneNN => "1-NN",
            Self::SvmLinear => "SVM-Linear",
            Self::SvmQuadratic => "SVM-Quadratic",
            Self::SvmRbf => "SVM-RBF",
            Self::Ann => "ANN",
            Self::NaiveBayesBfs => "NB-BFS",
            Self::LogRegL1 => "LogReg-L1",
        }
    }

    /// Capacity family (drives the advisor threshold).
    pub fn family(&self) -> ModelFamily {
        match self {
            Self::TreeGini | Self::TreeInfoGain | Self::TreeGainRatio | Self::Ann | Self::OneNN => {
                ModelFamily::TreeOrAnn
            }
            Self::SvmRbf | Self::SvmQuadratic => ModelFamily::KernelSvm,
            Self::SvmLinear | Self::NaiveBayesBfs | Self::LogRegL1 => ModelFamily::Linear,
        }
    }

    /// Whether the paper counts this model as high-capacity.
    pub fn is_high_capacity(&self) -> bool {
        !matches!(self, Self::SvmLinear | Self::NaiveBayesBfs | Self::LogRegL1)
    }
}

/// Resource throttles for tuning. `Budget::paper()` reproduces §3.2
/// faithfully; `Budget::quick()` shrinks grids and sample caps for tests
/// and simulations (same code path, smaller constants).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Budget {
    /// Use the full §3.2 grids when `true`.
    pub full_grids: bool,
    /// Subsample cap on training rows for kernel SVMs (the O(n²)-training
    /// models). `usize::MAX` disables.
    pub max_kernel_rows: usize,
    /// Subsample cap for 1-NN (training is free; prediction is O(n·d) per
    /// row, so it tolerates a much larger cap than the SVMs — and FK
    /// memorization *needs* domain coverage).
    pub max_knn_rows: usize,
    /// Subsample cap for the ANN.
    pub max_ann_rows: usize,
    /// ANN epochs.
    pub ann_epochs: usize,
    /// Use the small ANN architecture (32×16) instead of 256×64.
    pub small_ann: bool,
    /// Lambda-path length for logistic regression.
    pub logreg_nlambda: usize,
    /// Categorical partition style for trees. `SubsetPartition` (Breiman's
    /// optimal subset cuts — rpart's mechanics) is the default everywhere;
    /// `OneVsRest` emulates a tree over one-hot-encoded inputs and is kept
    /// as an ablation (see EXPERIMENTS.md on Table 4).
    pub tree_categorical: CategoricalSplit,
    /// Seed for subsampling.
    pub seed: u64,
}

impl Budget {
    /// Full paper fidelity (§3.2 grids; big ANN; 100-point lambda path).
    pub fn paper() -> Self {
        Self {
            full_grids: true,
            max_kernel_rows: 4000,
            max_knn_rows: 100_000,
            max_ann_rows: 20_000,
            ann_epochs: 15,
            small_ann: false,
            logreg_nlambda: 100,
            tree_categorical: CategoricalSplit::SubsetPartition,
            seed: 0xB4D6E7,
        }
    }

    /// Reduced grids for tests and Monte-Carlo simulations.
    pub fn quick() -> Self {
        Self {
            full_grids: false,
            max_kernel_rows: 1500,
            max_knn_rows: 20_000,
            max_ann_rows: 3000,
            ann_epochs: 25,
            small_ann: true,
            logreg_nlambda: 10,
            tree_categorical: CategoricalSplit::SubsetPartition,
            seed: 0xB4D6E7,
        }
    }

    fn subsample(&self, ds: &CatDataset, cap: usize) -> CatDataset {
        if ds.n_rows() <= cap {
            return ds.clone();
        }
        let mut idx: Vec<usize> = (0..ds.n_rows()).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
        idx.shuffle(&mut rng);
        idx.truncate(cap);
        ds.subset(&idx)
    }
}

/// A tuned classifier plus a description of the winning cell.
///
/// The model is a concrete [`AnyClassifier`] (not `Box<dyn Classifier>`), so
/// it can be persisted, registered and served — see `hamlet-serve` — while
/// still predicting through the [`Classifier`] trait everywhere else. The
/// [`FeatureContract`] of the training data rides along: it is the model's
/// input schema (names, provenance, label↔code dictionaries) and what the
/// serving layer embeds into persisted artifacts so clients can send raw
/// label strings.
pub struct TunedModel {
    /// The fitted model.
    pub model: AnyClassifier,
    /// Human-readable winning hyper-parameters.
    pub description: String,
    /// Validation accuracy of the winner.
    pub val_accuracy: f64,
    /// Input contract of the training dataset.
    pub contract: FeatureContract,
}

impl TunedModel {
    /// Wraps a fitted model with the training data's contract, verifying
    /// that the model can actually consume rows of that shape.
    fn contracted(
        model: AnyClassifier,
        description: String,
        val_accuracy: f64,
        train: &CatDataset,
    ) -> Result<TunedModel> {
        let contract = train.contract();
        model.check_contract(&contract)?;
        Ok(TunedModel {
            model,
            description,
            val_accuracy,
            contract,
        })
    }
}

impl ModelSpec {
    /// Fits this model with its paper grid (or the budget's reduced grid),
    /// tuning on `val`, and returns the winner.
    pub fn fit_tuned(
        &self,
        train: &CatDataset,
        val: &CatDataset,
        budget: &Budget,
    ) -> Result<TunedModel> {
        match self {
            Self::TreeGini => fit_tree(SplitCriterion::Gini, train, val, budget),
            Self::TreeInfoGain => fit_tree(SplitCriterion::InfoGain, train, val, budget),
            Self::TreeGainRatio => fit_tree(SplitCriterion::GainRatio, train, val, budget),
            Self::OneNN => {
                let sub = budget.subsample(train, budget.max_knn_rows);
                let model = OneNearestNeighbor::fit(&sub)?;
                let val_accuracy = model.accuracy(val);
                TunedModel::contracted(
                    model.into(),
                    "1-NN (no hyper-parameters)".into(),
                    val_accuracy,
                    train,
                )
            }
            Self::SvmLinear => fit_svm(
                if budget.full_grids {
                    SvmParams::paper_grid_linear()
                } else {
                    vec![
                        SvmParams::new(KernelKind::Linear, 1.0),
                        SvmParams::new(KernelKind::Linear, 100.0),
                    ]
                },
                train,
                val,
                budget,
            ),
            Self::SvmQuadratic => fit_svm(
                if budget.full_grids {
                    SvmParams::paper_grid_quadratic()
                } else {
                    quick_kernel_grid(|gamma| KernelKind::Quadratic { gamma })
                },
                train,
                val,
                budget,
            ),
            Self::SvmRbf => fit_svm(
                if budget.full_grids {
                    SvmParams::paper_grid_rbf()
                } else {
                    quick_kernel_grid(|gamma| KernelKind::Rbf { gamma })
                },
                train,
                val,
                budget,
            ),
            Self::Ann => {
                let sub = budget.subsample(train, budget.max_ann_rows);
                let grid: Vec<AnnParams> = if budget.full_grids {
                    AnnParams::paper_grid()
                } else {
                    vec![AnnParams::small(1e-4, 0.01), AnnParams::small(1e-3, 0.01)]
                }
                .into_iter()
                .map(|mut p| {
                    p.epochs = budget.ann_epochs;
                    if budget.small_ann {
                        p.hidden1 = p.hidden1.min(32);
                        p.hidden2 = p.hidden2.min(16);
                    }
                    p
                })
                .collect();
                let out = grid_search(&grid, &sub, val, |p, t| Mlp::fit(t, *p))?;
                TunedModel::contracted(
                    out.model.into(),
                    format!("ANN l2={} lr={}", out.params.l2, out.params.lr),
                    out.val_accuracy,
                    train,
                )
            }
            Self::NaiveBayesBfs => {
                let outcome = backward_selection(train, val, NaiveBayes::fit)?;
                let keep = outcome.selected.clone();
                let sub_train = train.select_features(&keep)?;
                let inner = NaiveBayes::fit(&sub_train)?;
                TunedModel::contracted(
                    SubsetModel {
                        keep,
                        inner: Box::new(inner.into()),
                    }
                    .into(),
                    format!(
                        "NB-BFS kept {} of {} features",
                        outcome.selected.len(),
                        train.n_features()
                    ),
                    outcome.val_accuracy,
                    train,
                )
            }
            Self::LogRegL1 => {
                let params = LogRegParams {
                    nlambda: budget.logreg_nlambda,
                    ..if budget.full_grids {
                        LogRegParams::paper()
                    } else {
                        LogRegParams::default()
                    }
                };
                let model = LogRegL1::fit_path(train, val, params)?;
                let val_accuracy = model.accuracy(val);
                TunedModel::contracted(
                    model.into(),
                    "LogReg-L1 (validation-selected lambda)".into(),
                    val_accuracy,
                    train,
                )
            }
        }
    }
}

fn quick_kernel_grid(make: impl Fn(f64) -> KernelKind) -> Vec<SvmParams> {
    let mut grid = Vec::with_capacity(6);
    for &c in &[1.0, 100.0] {
        for &gamma in &[0.01, 0.1, 1.0] {
            grid.push(SvmParams::new(make(gamma), c));
        }
    }
    grid
}

fn fit_tree(
    criterion: SplitCriterion,
    train: &CatDataset,
    val: &CatDataset,
    budget: &Budget,
) -> Result<TunedModel> {
    let cat = budget.tree_categorical;
    let grid: Vec<TreeParams> = if budget.full_grids {
        TreeParams::paper_grid_with(criterion, cat)
    } else {
        vec![
            TreeParams::new(criterion)
                .with_minsplit(1)
                .with_cp(1e-3)
                .with_categorical(cat),
            TreeParams::new(criterion)
                .with_minsplit(10)
                .with_cp(1e-3)
                .with_categorical(cat),
            TreeParams::new(criterion)
                .with_minsplit(10)
                .with_cp(0.01)
                .with_categorical(cat),
            TreeParams::new(criterion)
                .with_minsplit(100)
                .with_cp(1e-4)
                .with_categorical(cat),
        ]
    };
    let out = grid_search(&grid, train, val, |p, t| DecisionTree::fit(t, *p))?;
    TunedModel::contracted(
        out.model.into(),
        format!(
            "{criterion:?} minsplit={} cp={}",
            out.params.minsplit, out.params.cp
        ),
        out.val_accuracy,
        train,
    )
}

fn fit_svm(
    grid: Vec<SvmParams>,
    train: &CatDataset,
    val: &CatDataset,
    budget: &Budget,
) -> Result<TunedModel> {
    if grid.is_empty() {
        return Err(MlError::Invalid("empty SVM grid".into()));
    }
    let sub = budget.subsample(train, budget.max_kernel_rows);
    let mm = MatchMatrix::compute(&sub);
    let out = grid_search(&grid, &sub, val, |p, t| {
        SvmModel::fit_precomputed(t, &mm, *p)
    })?;
    TunedModel::contracted(
        out.model.into(),
        format!("{:?} C={}", out.params.kernel, out.params.c),
        out.val_accuracy,
        train,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature_config::{build_splits, FeatureConfig};
    use hamlet_datagen::prelude::*;

    fn quick_data() -> crate::feature_config::ExperimentData {
        let g = onexr::generate(OneXrParams {
            n_s: 400,
            ..Default::default()
        });
        build_splits(&g, &FeatureConfig::JoinAll).unwrap()
    }

    #[test]
    fn every_model_fits_and_beats_chance_on_onexr() {
        let data = quick_data();
        let budget = Budget::quick();
        for spec in ModelSpec::all() {
            let tuned = spec.fit_tuned(&data.train, &data.val, &budget).unwrap();
            let acc = tuned.model.accuracy(&data.test);
            // OneXr with p=0.1 has Bayes accuracy 0.9; all models should
            // clear 0.6 with JoinAll (Xr is directly visible).
            assert!(acc > 0.6, "{} scored {}", spec.name(), acc);
        }
    }

    #[test]
    fn model_list_covers_tables_2_and_3() {
        let all = ModelSpec::all();
        assert_eq!(all.len(), 10);
        assert_eq!(all.iter().filter(|m| m.is_high_capacity()).count(), 7);
    }

    #[test]
    fn families_match_paper_thresholds() {
        assert_eq!(ModelSpec::TreeGini.family(), ModelFamily::TreeOrAnn);
        assert_eq!(ModelSpec::Ann.family(), ModelFamily::TreeOrAnn);
        assert_eq!(ModelSpec::SvmRbf.family(), ModelFamily::KernelSvm);
        assert_eq!(ModelSpec::NaiveBayesBfs.family(), ModelFamily::Linear);
        assert_eq!(ModelSpec::SvmLinear.family(), ModelFamily::Linear);
    }

    #[test]
    fn budget_subsampling_caps_rows() {
        let data = quick_data();
        let mut budget = Budget::quick();
        budget.max_kernel_rows = 50;
        let sub = budget.subsample(&data.train, budget.max_kernel_rows);
        assert_eq!(sub.n_rows(), 50);
        let same = budget.subsample(&sub, 100);
        assert_eq!(same.n_rows(), 50);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(ModelSpec::TreeGini.name(), "DT-Gini");
        assert_eq!(ModelSpec::SvmRbf.name(), "SVM-RBF");
        assert_eq!(ModelSpec::NaiveBayesBfs.name(), "NB-BFS");
    }
}
