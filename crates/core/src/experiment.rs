//! One-stop experiment runner: (generated star, model, feature config) →
//! tuned model + train/validation/test accuracies + end-to-end wall-clock.
//!
//! The timing convention follows Figure 1: the clock covers *everything
//! downstream of the raw tables* — materializing whichever joins the config
//! needs, splitting, grid-search tuning, final training and testing. That
//! is exactly the work NoJoin saves.

use std::time::Instant;

use hamlet_datagen::sim::GeneratedStar;
use hamlet_ml::any::AnyClassifier;
use hamlet_ml::contract::FeatureContract;
use hamlet_ml::error::Result;
use hamlet_ml::model::Classifier;

use crate::feature_config::{build_splits, FeatureConfig};
use crate::model_zoo::{Budget, ModelSpec};

/// Outcome of one (dataset, model, config) run.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct RunResult {
    /// Model display name.
    pub model: String,
    /// Feature-config display name.
    pub config: String,
    /// Accuracy on the training split (Tables 5/6).
    pub train_accuracy: f64,
    /// Accuracy on the validation split (tuning objective).
    pub val_accuracy: f64,
    /// Accuracy on the holdout split (Tables 2/3).
    pub test_accuracy: f64,
    /// End-to-end seconds: join materialization + tuning + train + test.
    pub seconds: f64,
    /// Winning hyper-parameters.
    pub winner: String,
}

/// A finished experiment that also keeps the trained model — the input to
/// artifact persistence in `hamlet-serve`.
#[derive(Debug, Clone)]
pub struct TrainedExperiment {
    /// Metrics and provenance of the run.
    pub result: RunResult,
    /// The tuned, servable model.
    pub model: AnyClassifier,
    /// The model's input contract: per-feature name, cardinality,
    /// provenance and label↔code dictionary of the dataset the config built
    /// (what persisted artifacts validate and dictionary-encode prediction
    /// rows against).
    pub contract: FeatureContract,
}

/// Runs one experiment end to end.
pub fn run_experiment(
    gs: &GeneratedStar,
    spec: ModelSpec,
    config: &FeatureConfig,
    budget: &Budget,
) -> Result<RunResult> {
    run_experiment_with_model(gs, spec, config, budget).map(|t| t.result)
}

/// Runs one experiment end to end, returning the trained model alongside
/// the metrics so callers can persist and serve it.
pub fn run_experiment_with_model(
    gs: &GeneratedStar,
    spec: ModelSpec,
    config: &FeatureConfig,
    budget: &Budget,
) -> Result<TrainedExperiment> {
    let start = Instant::now();
    let data = build_splits(gs, config)?;
    let tuned = spec.fit_tuned(&data.train, &data.val, budget)?;
    let train_accuracy = tuned.model.accuracy(&data.train);
    let test_accuracy = tuned.model.accuracy(&data.test);
    let seconds = start.elapsed().as_secs_f64();
    Ok(TrainedExperiment {
        result: RunResult {
            model: spec.name().to_string(),
            config: config.name(),
            train_accuracy,
            val_accuracy: tuned.val_accuracy,
            test_accuracy,
            seconds,
            winner: tuned.description,
        },
        model: tuned.model,
        contract: tuned.contract,
    })
}

/// Runs a batch of configs for one model, reusing nothing across configs —
/// by design, so the measured runtimes include each config's own join work.
pub fn run_configs(
    gs: &GeneratedStar,
    spec: ModelSpec,
    configs: &[FeatureConfig],
    budget: &Budget,
) -> Result<Vec<RunResult>> {
    configs
        .iter()
        .map(|c| run_experiment(gs, spec, c, budget))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hamlet_datagen::prelude::*;

    #[test]
    fn tree_runs_under_all_three_configs() {
        let g = onexr::generate(OneXrParams {
            n_s: 400,
            ..Default::default()
        });
        let budget = Budget::quick();
        let results = run_configs(
            &g,
            ModelSpec::TreeGini,
            &[
                FeatureConfig::JoinAll,
                FeatureConfig::NoJoin,
                FeatureConfig::NoFK,
            ],
            &budget,
        )
        .unwrap();
        assert_eq!(results.len(), 3);
        for r in &results {
            assert!(r.test_accuracy > 0.5, "{}: {}", r.config, r.test_accuracy);
            assert!(r.seconds > 0.0);
            assert!(r.train_accuracy >= r.test_accuracy - 0.15);
        }
        // The headline claim on this scenario: NoJoin tracks JoinAll.
        let join_all = results[0].test_accuracy;
        let no_join = results[1].test_accuracy;
        assert!(
            (join_all - no_join).abs() < 0.06,
            "JoinAll {join_all} vs NoJoin {no_join}"
        );
    }

    #[test]
    fn results_serialize_to_json() {
        let g = onexr::generate(OneXrParams {
            n_s: 200,
            ..Default::default()
        });
        let r = run_experiment(
            &g,
            ModelSpec::NaiveBayesBfs,
            &FeatureConfig::NoJoin,
            &Budget::quick(),
        )
        .unwrap();
        let json = serde_json::to_string(&r).unwrap();
        assert!(json.contains("NoJoin"));
        assert!(json.contains("NB-BFS"));
    }
}
