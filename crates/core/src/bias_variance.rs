//! Domingos (ICML 2000) bias–variance decomposition for 0/1 loss.
//!
//! The simulation study (§4) reports *average test error* and *average net
//! variance* over 100 Monte-Carlo training sets. For binary 0/1 loss the
//! decomposition is:
//!
//! - **main prediction** `y_m(x)`: the majority vote across runs;
//! - **bias** `B(x) = 1[y_m(x) ≠ y*(x)]` against the optimal (Bayes)
//!   prediction `y*`;
//! - **variance** `V(x) = P_D(pred ≠ y_m(x))`;
//! - **net variance** `E_x[V(x)·1(B=0) − V(x)·1(B=1)]` — variance hurts on
//!   unbiased points and (for binary 0/1 loss) *helps* on biased ones.
//!
//! In the noise-free binary case the identity
//! `E[error] = bias + net variance` holds exactly; with label noise the
//! remainder is the noise-interaction term. The unit tests pin both facts.

use hamlet_ml::error::{MlError, Result};

/// Aggregate decomposition over a test set.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BiasVariance {
    /// Mean 0/1 test error across runs and test points.
    pub avg_error: f64,
    /// Mean bias `E_x[B(x)]`.
    pub bias: f64,
    /// Mean unbiased variance `E_x[V(x)·1(B=0)]`.
    pub unbiased_variance: f64,
    /// Mean biased variance `E_x[V(x)·1(B=1)]`.
    pub biased_variance: f64,
    /// `unbiased − biased` (the paper's "net variance").
    pub net_variance: f64,
    /// Number of Monte-Carlo runs aggregated.
    pub runs: usize,
}

/// Decomposes error given per-run predictions on a shared test set.
///
/// * `predictions[k]` — run `k`'s predicted labels (all runs must cover the
///   same test rows);
/// * `test_labels` — the observed (possibly noisy) test labels;
/// * `optimal` — the Bayes-optimal predictions when the true distribution
///   is known (simulations know it); pass `None` to fall back to the
///   observed labels (then noise is folded into bias, which is the standard
///   estimator when `y*` is unknown).
pub fn decompose(
    predictions: &[Vec<bool>],
    test_labels: &[bool],
    optimal: Option<&[bool]>,
) -> Result<BiasVariance> {
    let runs = predictions.len();
    if runs == 0 {
        return Err(MlError::Invalid("need at least one run".into()));
    }
    let n = test_labels.len();
    if n == 0 {
        return Err(MlError::Invalid("empty test set".into()));
    }
    for (k, p) in predictions.iter().enumerate() {
        if p.len() != n {
            return Err(MlError::Shape {
                detail: format!("run {k} predicted {} labels, expected {n}", p.len()),
            });
        }
    }
    if let Some(o) = optimal {
        if o.len() != n {
            return Err(MlError::Shape {
                detail: "optimal labels length mismatch".into(),
            });
        }
    }

    let mut err_sum = 0.0f64;
    let mut bias_sum = 0.0f64;
    let mut vu_sum = 0.0f64;
    let mut vb_sum = 0.0f64;
    for i in 0..n {
        let votes_pos = predictions.iter().filter(|p| p[i]).count();
        let main = 2 * votes_pos >= runs;
        let y_star = optimal.map_or(test_labels[i], |o| o[i]);
        let biased = main != y_star;
        let variance = predictions.iter().filter(|p| p[i] != main).count() as f64 / runs as f64;
        let err = predictions
            .iter()
            .filter(|p| p[i] != test_labels[i])
            .count() as f64
            / runs as f64;

        err_sum += err;
        bias_sum += f64::from(u8::from(biased));
        if biased {
            vb_sum += variance;
        } else {
            vu_sum += variance;
        }
    }
    let n = n as f64;
    let unbiased_variance = vu_sum / n;
    let biased_variance = vb_sum / n;
    Ok(BiasVariance {
        avg_error: err_sum / n,
        bias: bias_sum / n,
        unbiased_variance,
        biased_variance,
        net_variance: unbiased_variance - biased_variance,
        runs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unanimous_correct_predictions_have_no_error() {
        let truth = vec![true, false, true];
        let preds = vec![truth.clone(), truth.clone(), truth.clone()];
        let bv = decompose(&preds, &truth, Some(&truth)).unwrap();
        assert_eq!(bv.avg_error, 0.0);
        assert_eq!(bv.bias, 0.0);
        assert_eq!(bv.net_variance, 0.0);
        assert_eq!(bv.runs, 3);
    }

    #[test]
    fn systematic_mistake_is_pure_bias() {
        let truth = vec![true, true];
        let wrong = vec![false, false];
        let preds = vec![wrong.clone(), wrong.clone()];
        let bv = decompose(&preds, &truth, Some(&truth)).unwrap();
        assert_eq!(bv.avg_error, 1.0);
        assert_eq!(bv.bias, 1.0);
        assert_eq!(bv.net_variance, 0.0);
    }

    #[test]
    fn disagreement_is_variance() {
        // 4 runs on 1 point: 3 correct, 1 wrong → main correct, V = 0.25.
        let truth = vec![true];
        let preds = vec![vec![true], vec![true], vec![true], vec![false]];
        let bv = decompose(&preds, &truth, Some(&truth)).unwrap();
        assert!((bv.avg_error - 0.25).abs() < 1e-12);
        assert_eq!(bv.bias, 0.0);
        assert!((bv.unbiased_variance - 0.25).abs() < 1e-12);
        assert!((bv.net_variance - 0.25).abs() < 1e-12);
    }

    #[test]
    fn biased_variance_reduces_error() {
        // Main prediction wrong; the dissenting run is the correct one.
        // error = 0.75 = bias (1.0) − biased variance (0.25).
        let truth = vec![true];
        let preds = vec![vec![false], vec![false], vec![false], vec![true]];
        let bv = decompose(&preds, &truth, Some(&truth)).unwrap();
        assert!((bv.avg_error - 0.75).abs() < 1e-12);
        assert_eq!(bv.bias, 1.0);
        assert!((bv.biased_variance - 0.25).abs() < 1e-12);
        assert!((bv.net_variance + 0.25).abs() < 1e-12);
    }

    #[test]
    fn noise_free_identity_error_equals_bias_plus_net_variance() {
        // Random-ish prediction pattern over 5 points, 7 runs; labels equal
        // the Bayes predictions (noise-free), so the identity is exact.
        let truth = vec![true, false, true, true, false];
        let preds: Vec<Vec<bool>> = (0..7)
            .map(|k| {
                (0..5)
                    .map(|i| ((i * 3 + k * 5 + (i & k)) % 4) != 0)
                    .collect()
            })
            .collect();
        let bv = decompose(&preds, &truth, Some(&truth)).unwrap();
        assert!(
            (bv.avg_error - (bv.bias + bv.net_variance)).abs() < 1e-12,
            "identity violated: {bv:?}"
        );
    }

    #[test]
    fn shape_errors_rejected() {
        assert!(decompose(&[], &[true], None).is_err());
        assert!(decompose(&[vec![true]], &[], None).is_err());
        assert!(decompose(&[vec![true, false]], &[true], None).is_err());
        assert!(decompose(&[vec![true]], &[true], Some(&[true, false])).is_err());
    }

    #[test]
    fn without_optimal_noise_folds_into_bias() {
        // Model always predicts true; labels are true. With optimal = false
        // (hypothetically), bias = 1; without optimal info, bias = 0.
        let truth = vec![true];
        let preds = vec![vec![true], vec![true]];
        let with = decompose(&preds, &truth, Some(&[false])).unwrap();
        assert_eq!(with.bias, 1.0);
        let without = decompose(&preds, &truth, None).unwrap();
        assert_eq!(without.bias, 0.0);
    }
}
