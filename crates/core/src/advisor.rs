//! The tuple-ratio advisor: decide *before sourcing a table* whether its
//! join can be safely avoided.
//!
//! The practical deliverable of the paper: given only the dimension table's
//! **cardinality** (no contents needed!), compare the tuple ratio
//! `n_train / n_R` against a per-model-family threshold:
//!
//! | family | threshold | provenance |
//! |---|---|---|
//! | decision trees & ANN | ≈ 3× | §3.3 ("the tuple ratio threshold being only about 3x") |
//! | RBF-SVM | ≈ 6× | §3.3 ("about 6x") |
//! | linear models | ≈ 20× | §3.3 / prior SIGMOD'16 work |
//!
//! The advisor is deliberately *conservative*: a ratio below threshold means
//! "the error is at risk of rising", not that it certainly will (the paper's
//! Books dataset stays safe at ratio 2.6 — §3.3, footnote 8).

use hamlet_relation::star::StarSchema;

use crate::model_zoo::ModelFamily;

/// Advisor thresholds established by the paper's empirical study.
pub fn threshold(family: ModelFamily) -> f64 {
    match family {
        ModelFamily::TreeOrAnn => 3.0,
        ModelFamily::KernelSvm => 6.0,
        ModelFamily::Linear => 20.0,
    }
}

/// The minimal per-dimension information the advisor needs — pure schema
/// statistics, no table contents. This is the request shape served over
/// `POST /v1/advise` in `hamlet-serve`: a client describes its star schema
/// in a few numbers and gets a sourcing verdict without shipping any data.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct DimStats {
    /// Dimension table name (reporting only).
    pub name: String,
    /// `n_R`: dimension row count = FK domain size.
    pub n_rows: usize,
    /// Whether the FK's domain is open (Table 1 "N/A" rows).
    pub open_domain: bool,
}

impl DimStats {
    /// Stats for a closed-domain dimension.
    pub fn closed(name: impl Into<String>, n_rows: usize) -> Self {
        DimStats {
            name: name.into(),
            n_rows,
            open_domain: false,
        }
    }
}

/// The advisor's verdict for one dimension table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Advice {
    /// Tuple ratio clears the threshold: skip the join, learn on the FK.
    AvoidJoin,
    /// Tuple ratio is below threshold: source and join the table.
    RetainJoin,
    /// Open-domain FK: the table can never be discarded (Table 1 "N/A").
    CannotDiscard,
}

/// Per-dimension advisor output.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct DimensionAdvice {
    /// Dimension table name.
    pub dimension: String,
    /// Tuple ratio `n_train / n_R`.
    pub tuple_ratio: f64,
    /// Threshold applied.
    pub threshold: f64,
    /// The verdict.
    pub advice: Advice,
}

/// Full advisor report for a star schema under one model family.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct AdvisorReport {
    /// Model family the report was computed for.
    pub family: ModelFamily,
    /// Number of training examples used for the ratios.
    pub n_train: usize,
    /// One verdict per dimension, in schema order.
    pub dimensions: Vec<DimensionAdvice>,
}

impl AdvisorReport {
    /// Whether every closed-domain dimension can be avoided.
    pub fn all_avoidable(&self) -> bool {
        self.dimensions
            .iter()
            .all(|d| d.advice != Advice::RetainJoin)
    }

    /// Names of dimensions that must be retained (joined).
    pub fn retained(&self) -> Vec<&str> {
        self.dimensions
            .iter()
            .filter(|d| d.advice == Advice::RetainJoin)
            .map(|d| d.dimension.as_str())
            .collect()
    }
}

/// A concrete data-sourcing plan derived from an [`AdvisorReport`] — the
/// paper's "automated advisor for data sourcing" future-work item (§8) in
/// its simplest useful form: which tables to procure, which to skip, and
/// how many more labelled examples would unlock skipping the rest.
#[derive(Debug, Clone, serde::Serialize)]
pub struct SourcingPlan {
    /// Dimension tables worth procuring and joining.
    pub procure: Vec<String>,
    /// Dimension tables to skip (learn on their FKs instead).
    pub skip: Vec<String>,
    /// Dimension tables that must always be joined (open-domain FKs).
    pub always_join: Vec<String>,
    /// If every `procure` entry should instead be skipped, this many
    /// training examples would be needed (max over retained dimensions of
    /// `threshold × n_R`). `None` when nothing is retained.
    pub n_train_to_skip_all: Option<usize>,
}

/// Derives a sourcing plan for a model family. The interesting output for
/// a data scientist who has *not yet procured* the dimension tables: the
/// `skip` list says which access requests never need to be filed, and
/// `n_train_to_skip_all` quantifies the label-collection alternative.
pub fn sourcing_plan(star: &StarSchema, n_train: usize, family: ModelFamily) -> SourcingPlan {
    let report = advise(star, n_train, family);
    let thr = threshold(family);
    let mut procure = Vec::new();
    let mut skip = Vec::new();
    let mut always_join = Vec::new();
    let mut needed: Option<usize> = None;
    for (d, dim) in report.dimensions.iter().zip(star.dims()) {
        match d.advice {
            Advice::AvoidJoin => skip.push(d.dimension.clone()),
            Advice::CannotDiscard => always_join.push(d.dimension.clone()),
            Advice::RetainJoin => {
                procure.push(d.dimension.clone());
                let req = (thr * dim.n_rows() as f64).ceil() as usize;
                needed = Some(needed.map_or(req, |n| n.max(req)));
            }
        }
    }
    SourcingPlan {
        procure,
        skip,
        always_join,
        n_train_to_skip_all: needed,
    }
}

/// Runs the advisor: needs only the schema, the training-set size and each
/// dimension's cardinality — never the dimension's contents.
pub fn advise(star: &StarSchema, n_train: usize, family: ModelFamily) -> AdvisorReport {
    let dims: Vec<DimStats> = star
        .dims()
        .iter()
        .map(|d| DimStats {
            name: d.table.name().to_string(),
            n_rows: d.n_rows(),
            open_domain: d.open_domain,
        })
        .collect();
    advise_dims(&dims, n_train, family)
}

/// The advisor on raw dimension statistics — the request-time entry point:
/// no table, no star, just the numbers the decision rule consumes. `advise`
/// delegates here, so the two paths can never diverge.
pub fn advise_dims(dims: &[DimStats], n_train: usize, family: ModelFamily) -> AdvisorReport {
    let thr = threshold(family);
    let dimensions = dims
        .iter()
        .map(|d| {
            // A zero-row dimension yields ratio = +inf and AvoidJoin: an
            // empty table carries no signal and is always discardable.
            let ratio = n_train as f64 / d.n_rows as f64;
            let advice = if d.open_domain {
                Advice::CannotDiscard
            } else if ratio >= thr {
                Advice::AvoidJoin
            } else {
                Advice::RetainJoin
            };
            DimensionAdvice {
                dimension: d.name.clone(),
                tuple_ratio: ratio,
                threshold: thr,
                advice,
            }
        })
        .collect();
    AdvisorReport {
        family,
        n_train,
        dimensions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hamlet_datagen::prelude::*;

    #[test]
    fn thresholds_match_paper() {
        assert_eq!(threshold(ModelFamily::TreeOrAnn), 3.0);
        assert_eq!(threshold(ModelFamily::KernelSvm), 6.0);
        assert_eq!(threshold(ModelFamily::Linear), 20.0);
    }

    #[test]
    fn yelp_users_flagged_for_every_family() {
        // Yelp R2 tuple ratio ≈ 2.5: below even the tree threshold.
        let g = EmulatorSpec::yelp().generate_scaled(8000, 1);
        for family in [
            ModelFamily::TreeOrAnn,
            ModelFamily::KernelSvm,
            ModelFamily::Linear,
        ] {
            let report = advise(&g.star, g.n_train, family);
            assert_eq!(
                report.dimensions[1].advice,
                Advice::RetainJoin,
                "{family:?}"
            );
            assert!(!report.all_avoidable());
            assert!(report.retained().contains(&"users"));
        }
        // High-capacity families retain only the users table; linear models
        // (threshold 20×) must additionally retain businesses (ratio ≈ 9.4).
        let tree = advise(&g.star, g.n_train, ModelFamily::TreeOrAnn);
        assert_eq!(tree.retained(), vec!["users"]);
        let linear = advise(&g.star, g.n_train, ModelFamily::Linear);
        assert_eq!(linear.retained(), vec!["businesses", "users"]);
    }

    #[test]
    fn high_ratio_dimensions_avoidable_for_trees_only_sometimes() {
        // Yelp R1 ratio ≈ 9.4: avoidable for trees (3) and RBF (6), not
        // for linear models (20).
        let g = EmulatorSpec::yelp().generate_scaled(8000, 2);
        let tree = advise(&g.star, g.n_train, ModelFamily::TreeOrAnn);
        assert_eq!(tree.dimensions[0].advice, Advice::AvoidJoin);
        let svm = advise(&g.star, g.n_train, ModelFamily::KernelSvm);
        assert_eq!(svm.dimensions[0].advice, Advice::AvoidJoin);
        let lin = advise(&g.star, g.n_train, ModelFamily::Linear);
        assert_eq!(lin.dimensions[0].advice, Advice::RetainJoin);
    }

    #[test]
    fn open_domain_cannot_be_discarded() {
        let g = EmulatorSpec::expedia().generate_scaled(6000, 3);
        let report = advise(&g.star, g.n_train, ModelFamily::TreeOrAnn);
        assert_eq!(report.dimensions[1].advice, Advice::CannotDiscard);
        // CannotDiscard is not "retain" in the report's retained() sense —
        // there is no join-avoidance decision to make.
        assert!(report.retained().is_empty() || report.retained() != vec!["searches"]);
    }

    #[test]
    fn sourcing_plan_splits_tables_and_quantifies_labels() {
        let g = EmulatorSpec::yelp().generate_scaled(8000, 7);
        let plan = sourcing_plan(&g.star, g.n_train, ModelFamily::TreeOrAnn);
        assert_eq!(plan.skip, vec!["businesses"]);
        assert_eq!(plan.procure, vec!["users"]);
        assert!(plan.always_join.is_empty());
        // Skipping users instead requires 3 × n_R(users) training examples.
        let users_rows = g.star.dims()[1].n_rows();
        assert_eq!(plan.n_train_to_skip_all, Some(3 * users_rows));

        // Walmart: nothing to procure, nothing needed.
        let g = EmulatorSpec::walmart().generate_scaled(8000, 7);
        let plan = sourcing_plan(&g.star, g.n_train, ModelFamily::TreeOrAnn);
        assert!(plan.procure.is_empty());
        assert_eq!(plan.n_train_to_skip_all, None);

        // Expedia: searches can never be skipped.
        let g = EmulatorSpec::expedia().generate_scaled(8000, 7);
        let plan = sourcing_plan(&g.star, g.n_train, ModelFamily::TreeOrAnn);
        assert_eq!(plan.always_join, vec!["searches"]);
    }

    #[test]
    fn walmart_stores_trivially_avoidable() {
        // Walmart R2 ratio ≈ 4684: avoidable for everything.
        let g = EmulatorSpec::walmart().generate_scaled(8000, 4);
        let report = advise(&g.star, g.n_train, ModelFamily::Linear);
        assert_eq!(report.dimensions[1].advice, Advice::AvoidJoin);
    }
}
