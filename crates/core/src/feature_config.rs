//! Feature configurations: which star-schema columns a model gets to see.
//!
//! This is the heart of "avoiding joins safely" (§3.2): the *same* learning
//! pipeline is run under different schema-derived feature sets —
//!
//! - **JoinAll** — `[X_S, FK₁..FK_q, X_R1..X_Rq]`: join everything (current
//!   widespread practice);
//! - **NoJoin** — `[X_S, FK₁..FK_q]`: discard every dimension table *a
//!   priori*, without looking at its contents;
//! - **NoFK** — `[X_S, X_R1..X_Rq]`: join but drop the foreign keys;
//! - **Custom** — Table 4's robustness study: drop any subset of dimensions.
//!
//! Open-domain FKs (Expedia's search id) are never usable as features and
//! their dimensions can never be discarded (Table 1 "N/A"); those rules are
//! enforced here for every configuration.

use hamlet_datagen::sim::GeneratedStar;
use hamlet_ml::dataset::{CatDataset, Provenance};
use hamlet_ml::error::{MlError, Result};
use hamlet_relation::star::StarSchema;

/// A feature-set selection over a star schema.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum FeatureConfig {
    /// Join all dimension tables; use home features, FKs and foreign
    /// features.
    JoinAll,
    /// Avoid every join; use home features and FKs only.
    NoJoin,
    /// Join all dimension tables but drop every FK feature.
    NoFK,
    /// Drop the foreign features of the selected dimensions (keeping their
    /// FKs) — the paper's `NoR_i` robustness configurations.
    DropDims(Vec<usize>),
    /// Keep only the first `keep[i]` foreign features of each dimension
    /// (plus all FKs) — the trade-off space the paper's §5.2 poses as an
    /// open question: "foreign features can be divided into arbitrary
    /// subsets before being avoided", interpolating between JoinAll
    /// (`keep[i] = d_R`) and NoJoin (`keep[i] = 0`).
    PartialForeign(Vec<usize>),
}

impl FeatureConfig {
    /// Short display name matching the paper's tables.
    pub fn name(&self) -> String {
        match self {
            Self::JoinAll => "JoinAll".into(),
            Self::NoJoin => "NoJoin".into(),
            Self::NoFK => "NoFK".into(),
            Self::DropDims(dims) => {
                let tags: Vec<String> = dims.iter().map(|d| format!("R{}", d + 1)).collect();
                format!("No{}", tags.join(","))
            }
            Self::PartialForeign(keep) => {
                let tags: Vec<String> = keep.iter().map(ToString::to_string).collect();
                format!("Partial[{}]", tags.join(","))
            }
        }
    }

    /// Whether dimension `i`'s foreign features are part of this config.
    /// Open-domain dimensions are always included (they cannot be
    /// discarded — their FK is unusable, so the features are the only
    /// signal path).
    pub fn includes_foreign(&self, dim: usize, open_domain: bool) -> bool {
        if open_domain {
            return true;
        }
        match self {
            Self::JoinAll | Self::NoFK => true,
            Self::NoJoin => false,
            Self::DropDims(dims) => !dims.contains(&dim),
            Self::PartialForeign(keep) => keep.get(dim).copied().unwrap_or(0) > 0,
        }
    }

    /// How many of dimension `i`'s foreign features this config keeps
    /// (`usize::MAX` = all).
    fn foreign_keep_count(&self, dim: usize, open_domain: bool) -> usize {
        if !self.includes_foreign(dim, open_domain) {
            return 0;
        }
        match self {
            Self::PartialForeign(keep) if !open_domain => {
                keep.get(dim).copied().unwrap_or(usize::MAX)
            }
            _ => usize::MAX,
        }
    }

    /// Whether dimension `i`'s FK is part of this config. Open-domain FKs
    /// are never features.
    pub fn includes_fk(&self, _dim: usize, open_domain: bool) -> bool {
        if open_domain {
            return false;
        }
        !matches!(self, Self::NoFK)
    }
}

/// Materializes exactly the dimensions this config needs and assembles the
/// model-facing dataset. NoJoin never touches a closed-domain dimension
/// table — that is the entire runtime win the paper measures in Figure 1.
pub fn build_dataset(star: &StarSchema, config: &FeatureConfig) -> Result<CatDataset> {
    let include: Vec<bool> = star
        .dims()
        .iter()
        .enumerate()
        .map(|(i, d)| config.includes_foreign(i, d.open_domain))
        .collect();
    let table = star.materialize(&include)?;
    let full = CatDataset::from_table(&table)?;

    // Filter features by provenance according to the config. Foreign
    // features of a dimension arrive in the dimension's column order, so a
    // per-dimension counter implements the PartialForeign prefix rule.
    let mut foreign_seen = vec![0usize; star.q()];
    let keep: Vec<usize> = full
        .features()
        .iter()
        .enumerate()
        .filter(|(_, f)| match f.provenance {
            Provenance::Home => true,
            Provenance::ForeignKey { dim } => config.includes_fk(dim, star.dims()[dim].open_domain),
            Provenance::Foreign { dim } => {
                let quota = config.foreign_keep_count(dim, star.dims()[dim].open_domain);
                let pos = foreign_seen[dim];
                foreign_seen[dim] += 1;
                pos < quota
            }
        })
        .map(|(i, _)| i)
        .collect();
    if keep.is_empty() {
        return Err(MlError::Shape {
            detail: format!("configuration {} leaves no features", config.name()),
        });
    }
    if keep.len() == full.n_features() {
        Ok(full)
    } else {
        full.select_features(&keep)
    }
}

/// The three datasets of one experiment run, built under one config.
#[derive(Debug, Clone)]
pub struct ExperimentData {
    /// Training split.
    pub train: CatDataset,
    /// Validation split (tuning).
    pub val: CatDataset,
    /// Holdout test split.
    pub test: CatDataset,
}

/// Builds train/validation/test datasets from a generated star under a
/// feature configuration.
pub fn build_splits(gs: &GeneratedStar, config: &FeatureConfig) -> Result<ExperimentData> {
    let full = build_dataset(&gs.star, config)?;
    Ok(ExperimentData {
        train: full.subset(&gs.train_idx()),
        val: full.subset(&gs.val_idx()),
        test: full.subset(&gs.test_idx()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hamlet_datagen::prelude::*;

    fn onexr() -> GeneratedStar {
        onexr::generate(OneXrParams::default())
    }

    #[test]
    fn joinall_has_home_fk_and_foreign() {
        let g = onexr();
        let ds = build_dataset(&g.star, &FeatureConfig::JoinAll).unwrap();
        // 4 xs + 1 fk + 4 xr
        assert_eq!(ds.n_features(), 9);
        let provs: Vec<_> = ds.features().iter().map(|f| f.provenance).collect();
        assert!(provs.contains(&Provenance::ForeignKey { dim: 0 }));
        assert!(provs.contains(&Provenance::Foreign { dim: 0 }));
        assert!(provs.contains(&Provenance::Home));
    }

    #[test]
    fn nojoin_drops_foreign_keeps_fk() {
        let g = onexr();
        let ds = build_dataset(&g.star, &FeatureConfig::NoJoin).unwrap();
        assert_eq!(ds.n_features(), 5); // 4 xs + 1 fk
        assert!(ds
            .features()
            .iter()
            .all(|f| !matches!(f.provenance, Provenance::Foreign { .. })));
    }

    #[test]
    fn nofk_drops_fk_keeps_foreign() {
        let g = onexr();
        let ds = build_dataset(&g.star, &FeatureConfig::NoFK).unwrap();
        assert_eq!(ds.n_features(), 8); // 4 xs + 4 xr
        assert!(ds
            .features()
            .iter()
            .all(|f| !matches!(f.provenance, Provenance::ForeignKey { .. })));
    }

    #[test]
    fn drop_dims_matches_table4_semantics() {
        let g = EmulatorSpec::yelp().generate_scaled(1200, 5);
        let no_r2 = build_dataset(&g.star, &FeatureConfig::DropDims(vec![1])).unwrap();
        // R1 (businesses, 32 features) kept; R2 (users, 6) dropped; 2 FKs.
        assert_eq!(no_r2.n_features(), 2 + 32);
        assert_eq!(FeatureConfig::DropDims(vec![1]).name(), "NoR2");
        assert_eq!(FeatureConfig::DropDims(vec![0, 2]).name(), "NoR1,R3");
    }

    #[test]
    fn open_domain_dimension_rules() {
        let g = EmulatorSpec::expedia().generate_scaled(1500, 6);
        // NoJoin: searches (open) foreign features kept, its FK dropped;
        // hotels foreign dropped, FK kept; 1 home feature.
        let ds = build_dataset(&g.star, &FeatureConfig::NoJoin).unwrap();
        let mut n_fk = 0;
        let mut n_foreign = 0;
        for f in ds.features() {
            match f.provenance {
                Provenance::ForeignKey { dim } => {
                    assert_eq!(dim, 0, "only the hotels FK is usable");
                    n_fk += 1;
                }
                Provenance::Foreign { dim } => {
                    assert_eq!(dim, 1, "only the open dimension's features remain");
                    n_foreign += 1;
                }
                Provenance::Home => {}
            }
        }
        assert_eq!(n_fk, 1);
        assert_eq!(n_foreign, 14);

        // JoinAll also must exclude the open-domain FK.
        let all = build_dataset(&g.star, &FeatureConfig::JoinAll).unwrap();
        assert!(all
            .features()
            .iter()
            .all(|f| f.provenance != Provenance::ForeignKey { dim: 1 }));
    }

    #[test]
    fn splits_share_feature_space() {
        let g = onexr();
        let data = build_splits(&g, &FeatureConfig::NoJoin).unwrap();
        assert_eq!(data.train.n_rows(), 1000);
        assert_eq!(data.val.n_rows(), 250);
        assert_eq!(data.test.n_rows(), 250);
        assert_eq!(data.train.n_features(), data.test.n_features());
    }

    #[test]
    fn config_names_match_paper() {
        assert_eq!(FeatureConfig::JoinAll.name(), "JoinAll");
        assert_eq!(FeatureConfig::NoJoin.name(), "NoJoin");
        assert_eq!(FeatureConfig::NoFK.name(), "NoFK");
        assert_eq!(
            FeatureConfig::PartialForeign(vec![2, 0]).name(),
            "Partial[2,0]"
        );
    }

    #[test]
    fn partial_foreign_interpolates_between_joinall_and_nojoin() {
        let g = onexr(); // d_s=4, 1 FK, d_r=4
                         // Keep 2 of the 4 foreign features.
        let ds = build_dataset(&g.star, &FeatureConfig::PartialForeign(vec![2])).unwrap();
        assert_eq!(ds.n_features(), 4 + 1 + 2);
        let foreign: Vec<&str> = ds
            .features()
            .iter()
            .filter(|f| matches!(f.provenance, Provenance::Foreign { .. }))
            .map(|f| f.name.as_str())
            .collect();
        assert_eq!(
            foreign,
            vec!["xr0", "xr1"],
            "prefix rule keeps the first features"
        );

        // keep = 0 ⇒ NoJoin; keep = d_r ⇒ JoinAll.
        let nojoin = build_dataset(&g.star, &FeatureConfig::PartialForeign(vec![0])).unwrap();
        assert_eq!(nojoin.n_features(), 5);
        let joinall = build_dataset(&g.star, &FeatureConfig::PartialForeign(vec![4])).unwrap();
        assert_eq!(joinall.n_features(), 9);
    }

    #[test]
    fn partial_foreign_respects_open_domain() {
        // Expedia: searches (open) always keeps all features regardless of
        // the quota; hotels honours it.
        let g = EmulatorSpec::expedia().generate_scaled(1200, 9);
        let ds = build_dataset(&g.star, &FeatureConfig::PartialForeign(vec![1, 0])).unwrap();
        let hotels = ds
            .features()
            .iter()
            .filter(|f| f.provenance == Provenance::Foreign { dim: 0 })
            .count();
        let searches = ds
            .features()
            .iter()
            .filter(|f| f.provenance == Provenance::Foreign { dim: 1 })
            .count();
        assert_eq!(hotels, 1);
        assert_eq!(searches, 14);
    }
}
