//! Shared plumbing for the simulation scenarios and emulators: assembling
//! validated [`StarSchema`]s from generated code arrays and carrying the
//! paper's train/validation/test convention (n_S training examples plus
//! n_S/4 validation and n_S/4 holdout, §4).

use std::sync::Arc;

use hamlet_relation::prelude::*;

/// A generated star schema plus the index ranges of its three splits inside
/// the fact table. Simulated rows are IID by construction, so contiguous
/// ranges are a valid split.
#[derive(Debug, Clone)]
pub struct GeneratedStar {
    /// The star schema (fact rows = train + val + test).
    pub star: StarSchema,
    /// Number of training rows (first `n_train` fact rows).
    pub n_train: usize,
    /// Number of validation rows (next `n_val`).
    pub n_val: usize,
    /// Number of holdout rows (last `n_test`).
    pub n_test: usize,
}

impl GeneratedStar {
    /// Training row indices.
    pub fn train_idx(&self) -> Vec<usize> {
        (0..self.n_train).collect()
    }

    /// Validation row indices.
    pub fn val_idx(&self) -> Vec<usize> {
        (self.n_train..self.n_train + self.n_val).collect()
    }

    /// Holdout row indices.
    pub fn test_idx(&self) -> Vec<usize> {
        let start = self.n_train + self.n_val;
        (start..start + self.n_test).collect()
    }

    /// Total fact rows.
    pub fn n_total(&self) -> usize {
        self.n_train + self.n_val + self.n_test
    }
}

/// One generated dimension table: named feature columns with cardinalities.
pub struct DimColumns {
    /// Dimension table name.
    pub name: String,
    /// `(feature name, cardinality, codes)` per foreign feature.
    pub columns: Vec<(String, u32, Vec<u32>)>,
    /// Whether the FK for this dimension has an open domain.
    pub open_domain: bool,
}

/// Fact-table ingredients produced by a generator.
pub struct FactColumns {
    /// Labels (`Y`).
    pub y: Vec<bool>,
    /// `(feature name, cardinality, codes)` per home feature.
    pub xs: Vec<(String, u32, Vec<u32>)>,
    /// FK code vectors, one per dimension, aligned with `y`.
    pub fks: Vec<Vec<u32>>,
}

/// Assembles a validated star schema from generated columns.
///
/// The FK and RID columns of each dimension share one `CatDomain` of size
/// `n_r`, so joins are direct code lookups; RIDs are sequential `0..n_r`.
/// Open-domain dimensions instead share a domain of size `n_r + 1` whose
/// trailing slot is the paper's `Others` placeholder: a real code with NO
/// dimension row behind it, so serving-time encode of an unseen key lands
/// on it while generated fact FKs stay within `0..n_r`.
pub fn assemble_star(name: &str, fact: FactColumns, dims: Vec<DimColumns>) -> StarSchema {
    let n = fact.y.len();
    let bin = CatDomain::synthetic("label", 2).into_shared();

    let mut defs = vec![ColumnDef::new("y", ColumnRole::Target)];
    let mut cols = vec![CatColumn::new(
        Arc::clone(&bin),
        fact.y.iter().map(|&b| u32::from(b)).collect(),
    )
    .expect("label codes are 0/1")];

    for (fname, card, codes) in &fact.xs {
        assert_eq!(codes.len(), n, "home feature length mismatch");
        let dom = CatDomain::synthetic(fname.clone(), *card).into_shared();
        defs.push(ColumnDef::new(fname.clone(), ColumnRole::HomeFeature));
        cols.push(CatColumn::new(dom, codes.clone()).expect("generated codes in domain"));
    }

    let mut dim_tables = Vec::with_capacity(dims.len());
    for (i, dim) in dims.iter().enumerate() {
        let n_r = dim
            .columns
            .first()
            .map(|(_, _, codes)| codes.len())
            .expect("dimensions have at least one feature column");
        let key_name = format!("{}_rid", dim.name);
        let key_dom = if dim.open_domain {
            CatDomain::synthetic_with_others(key_name, n_r as u32)
        } else {
            CatDomain::synthetic(key_name, n_r as u32)
        }
        .into_shared();

        // FK column in the fact table.
        let fk_name = format!("fk_{}", dim.name);
        defs.push(ColumnDef::new(
            fk_name.clone(),
            ColumnRole::ForeignKey { dim: i },
        ));
        cols.push(
            CatColumn::new(Arc::clone(&key_dom), fact.fks[i].clone())
                .expect("generated FK codes within the dimension key domain"),
        );

        // Dimension table.
        let mut d_defs = vec![ColumnDef::new("rid", ColumnRole::Id)];
        let mut d_cols = vec![
            CatColumn::new(Arc::clone(&key_dom), (0..n_r as u32).collect())
                .expect("sequential RIDs"),
        ];
        for (cname, card, codes) in &dim.columns {
            assert_eq!(codes.len(), n_r, "foreign feature length mismatch");
            let dom = CatDomain::synthetic(format!("{}_{cname}", dim.name), *card).into_shared();
            d_defs.push(ColumnDef::new(cname.clone(), ColumnRole::HomeFeature));
            d_cols.push(CatColumn::new(dom, codes.clone()).expect("generated codes in domain"));
        }
        let table = Table::new(
            TableSchema::new(dim.name.clone(), d_defs).expect("unique dimension column names"),
            d_cols,
        )
        .expect("dimension column lengths agree");
        let mut d = Dimension::new(table, "rid", fk_name);
        if dim.open_domain {
            d = d.open();
        }
        dim_tables.push(d);
    }

    let fact_table = Table::new(
        TableSchema::new(name, defs).expect("unique fact column names"),
        cols,
    )
    .expect("fact column lengths agree");
    StarSchema::new(fact_table, dim_tables).expect("generated star satisfies KFK constraints")
}

/// The paper's simulation split sizes: `n_s` train plus `n_s/4` validation
/// and `n_s/4` test (§4 "we also sample nS/4 examples each ...").
pub fn sim_split_sizes(n_s: usize) -> (usize, usize, usize) {
    let quarter = (n_s / 4).max(1);
    (n_s, quarter, quarter)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assemble_round_trips_through_validation() {
        let fact = FactColumns {
            y: vec![true, false, true, false],
            xs: vec![("xs0".into(), 2, vec![0, 1, 0, 1])],
            fks: vec![vec![0, 1, 2, 0]],
        };
        let dims = vec![DimColumns {
            name: "r1".into(),
            columns: vec![("xr0".into(), 2, vec![1, 0, 1])],
            open_domain: false,
        }];
        let star = assemble_star("sim", fact, dims);
        assert_eq!(star.fact().n_rows(), 4);
        assert_eq!(star.q(), 1);
        let joined = star.materialize_all().unwrap();
        assert_eq!(joined.column("xr0").unwrap().codes(), &[1, 0, 1, 1]);
    }

    #[test]
    fn open_domain_fk_gets_real_others_slot() {
        let fact = FactColumns {
            y: vec![true, false, true, false],
            xs: vec![("xs0".into(), 2, vec![0, 1, 0, 1])],
            fks: vec![vec![0, 1, 2, 0], vec![0, 1, 0, 1]],
        };
        let dims = vec![
            DimColumns {
                name: "op".into(),
                columns: vec![("xr0".into(), 2, vec![1, 0, 1])],
                open_domain: true,
            },
            DimColumns {
                name: "cl".into(),
                columns: vec![("xr1".into(), 2, vec![1, 0])],
                open_domain: false,
            },
        ];
        let star = assemble_star("sim", fact, dims);
        // Open dimension: the shared FK/RID domain carries a trailing
        // `Others` code (n_r = 3 rows, cardinality 4) with no dimension
        // row behind it, and unseen keys encode onto it.
        let open_dom = Arc::clone(star.fact().column("fk_op").unwrap().domain());
        assert_eq!(open_dom.cardinality(), 4);
        assert_eq!(open_dom.others_code(), Some(3));
        assert_eq!(open_dom.encode("never-seen-key"), Some(3));
        assert_eq!(star.dims()[0].n_rows(), 3);
        // Closed dimension: no slot, unseen keys refused.
        let closed_dom = star.fact().column("fk_cl").unwrap().domain();
        assert_eq!(closed_dom.cardinality(), 2);
        assert_eq!(closed_dom.encode("never-seen-key"), None);
        // Generated FKs stay within `0..n_r`, so joins are unaffected.
        star.materialize_all().unwrap();
    }

    #[test]
    fn split_sizes_follow_paper() {
        assert_eq!(sim_split_sizes(1000), (1000, 250, 250));
        assert_eq!(sim_split_sizes(2), (2, 1, 1));
    }

    #[test]
    fn generated_star_indices_are_contiguous() {
        let fact = FactColumns {
            y: vec![true; 6],
            xs: vec![("a".into(), 2, vec![0; 6])],
            fks: vec![vec![0; 6]],
        };
        let dims = vec![DimColumns {
            name: "r".into(),
            columns: vec![("x".into(), 2, vec![0])],
            open_domain: false,
        }];
        let g = GeneratedStar {
            star: assemble_star("s", fact, dims),
            n_train: 4,
            n_val: 1,
            n_test: 1,
        };
        assert_eq!(g.train_idx(), vec![0, 1, 2, 3]);
        assert_eq!(g.val_idx(), vec![4]);
        assert_eq!(g.test_idx(), vec![5]);
        assert_eq!(g.n_total(), 6);
    }
}
