//! Scenario `RepOneXr` (§4.3): the driving feature replicated across `X_R`.
//!
//! Like `OneXr`, a single binary `X_r` (with flip-noise `p`) determines `Y`
//! — but the dimension's *entire* feature vector is `X_r` repeated `d_R`
//! times. Since `FK → X_R`, there are at least as many FK values as `X_R`
//! values; raising `n_R` relative to the two `X_R` values maximises the
//! model's chance of getting "confused" by NoJoin. The paper uses this to
//! probe where the tree/SVM/1-NN deviate.

use rand::Rng;
use rand::SeedableRng;

use crate::sim::{assemble_star, sim_split_sizes, DimColumns, FactColumns, GeneratedStar};

/// Parameters of the RepOneXr generator. Figure 7 uses
/// `(n_s, d_s) = (1000, 4)` with `n_r ∈ {40, 200}` and `d_r ∈ 1..16`.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RepOneXrParams {
    /// Training examples `n_S`.
    pub n_s: usize,
    /// Dimension rows `n_R = |D_FK|`.
    pub n_r: u32,
    /// Home features `d_S` (binary noise).
    pub d_s: usize,
    /// Foreign features `d_R` (all copies of `X_r`).
    pub d_r: usize,
    /// Flip-noise parameter `p`.
    pub p: f64,
    /// Seed for example sampling (varied per Monte-Carlo run).
    pub seed: u64,
    /// Seed for the true distribution (the dimension's X_r draw, held fixed
    /// across Monte-Carlo runs).
    pub dist_seed: u64,
}

impl Default for RepOneXrParams {
    fn default() -> Self {
        Self {
            n_s: 1000,
            n_r: 40,
            d_s: 4,
            d_r: 4,
            p: 0.1,
            seed: 0x0e1,
            dist_seed: 0xD157,
        }
    }
}

/// Samples one RepOneXr star schema.
pub fn generate(params: RepOneXrParams) -> GeneratedStar {
    assert!(params.d_r >= 1 && params.n_r >= 1);
    let mut dist_rng = rand::rngs::StdRng::seed_from_u64(params.dist_seed);
    let mut rng = rand::rngs::StdRng::seed_from_u64(params.seed);
    let (n_train, n_val, n_test) = sim_split_sizes(params.n_s);
    let n_total = n_train + n_val + n_test;
    let n_r = params.n_r as usize;

    // Dimension (true distribution → dist_rng): one X_r draw per row,
    // replicated d_R times.
    let xr: Vec<u32> = (0..n_r).map(|_| dist_rng.gen_range(0..2)).collect();
    let dim_cols: Vec<(String, u32, Vec<u32>)> = (0..params.d_r)
        .map(|j| (format!("xr{j}"), 2u32, xr.clone()))
        .collect();

    // Home features: binary noise.
    let xs: Vec<(String, u32, Vec<u32>)> = (0..params.d_s)
        .map(|j| {
            let codes: Vec<u32> = (0..n_total).map(|_| rng.gen_range(0..2)).collect();
            (format!("xs{j}"), 2u32, codes)
        })
        .collect();

    // FK uniform; Y via the implicit join with flip-noise p.
    let fk: Vec<u32> = (0..n_total).map(|_| rng.gen_range(0..params.n_r)).collect();
    let y: Vec<bool> = fk
        .iter()
        .map(|&code| {
            let v = xr[code as usize];
            let p_pos = if v == 1 { params.p } else { 1.0 - params.p };
            rng.gen_bool(p_pos)
        })
        .collect();

    let star = assemble_star(
        "reponexr",
        FactColumns {
            y,
            xs,
            fks: vec![fk],
        },
        vec![DimColumns {
            name: "r".into(),
            columns: dim_cols,
            open_domain: false,
        }],
    );
    GeneratedStar {
        star,
        n_train,
        n_val,
        n_test,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_foreign_features_are_identical() {
        let g = generate(RepOneXrParams {
            d_r: 6,
            ..Default::default()
        });
        let dim = &g.star.dims()[0].table;
        let first = dim.column("xr0").unwrap().codes().to_vec();
        for j in 1..6 {
            assert_eq!(dim.column(&format!("xr{j}")).unwrap().codes(), &first[..]);
        }
    }

    #[test]
    fn shapes_follow_params() {
        let g = generate(RepOneXrParams {
            n_r: 200,
            d_r: 16,
            ..Default::default()
        });
        assert_eq!(g.star.dims()[0].n_rows(), 200);
        assert_eq!(g.star.dims()[0].d_features(), 16);
        assert_eq!(g.n_total(), 1500);
    }

    #[test]
    fn labels_follow_xr_with_noise() {
        let g = generate(RepOneXrParams {
            n_s: 4000,
            p: 0.05,
            ..Default::default()
        });
        let joined = g.star.materialize_all().unwrap();
        let xr = joined.column("xr0").unwrap().codes().to_vec();
        let y = joined.target_as_bool().unwrap();
        let mut agree = 0usize;
        for (v, label) in xr.iter().zip(&y) {
            // X_r = 0 → Y likely 1; X_r = 1 → Y likely 0 (p flips).
            if (*v == 0) == *label {
                agree += 1;
            }
        }
        let f = agree as f64 / y.len() as f64;
        assert!(f > 0.9, "agreement {f}");
    }

    #[test]
    fn reproducible() {
        let a = generate(RepOneXrParams::default());
        let b = generate(RepOneXrParams::default());
        assert_eq!(
            a.star.fact().column("fk_r").unwrap().codes(),
            b.star.fact().column("fk_r").unwrap().codes()
        );
    }
}
