//! Foreign-key skew distributions (§4.1 "Foreign Key Skew").
//!
//! The paper stress-tests NoJoin under two FK skews: a Zipfian distribution
//! (parameterised by the usual exponent) and a "needle-and-thread" skew that
//! puts probability mass `p` on a single FK value (the needle) and spreads
//! the rest uniformly (the thread).

use rand::Rng;

/// How fact-table FK values are drawn from the dimension's key domain.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum FkSkew {
    /// Uniform over `0..n_r`.
    Uniform,
    /// Zipfian with exponent `s` (`s = 0` degenerates to uniform).
    Zipf {
        /// Skew exponent; the paper sweeps 0..4.
        s: f64,
    },
    /// Needle-and-thread: mass `p` on code 0, the rest uniform on the others.
    NeedleThread {
        /// Needle probability; the paper sweeps 0.1..1.
        p: f64,
    },
}

/// A sampler over `0..n` for any [`FkSkew`], precomputing the CDF once.
#[derive(Debug, Clone)]
pub struct SkewSampler {
    cdf: Vec<f64>,
}

impl SkewSampler {
    /// Builds the cumulative distribution for `n` codes.
    pub fn new(skew: FkSkew, n: u32) -> Self {
        assert!(n > 0, "skew sampler needs at least one code");
        let n = n as usize;
        let mut pmf = vec![0.0f64; n];
        match skew {
            FkSkew::Uniform => {
                pmf.iter_mut().for_each(|p| *p = 1.0 / n as f64);
            }
            FkSkew::Zipf { s } => {
                let mut z = 0.0;
                for (i, p) in pmf.iter_mut().enumerate() {
                    *p = 1.0 / ((i + 1) as f64).powf(s);
                    z += *p;
                }
                pmf.iter_mut().for_each(|p| *p /= z);
            }
            FkSkew::NeedleThread { p } => {
                let p = p.clamp(0.0, 1.0);
                if n == 1 {
                    pmf[0] = 1.0;
                } else {
                    pmf[0] = p;
                    let rest = (1.0 - p) / (n - 1) as f64;
                    pmf.iter_mut().skip(1).for_each(|q| *q = rest);
                }
            }
        }
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for p in pmf {
            acc += p;
            cdf.push(acc);
        }
        // Guard against floating-point shortfall at the tail.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Self { cdf }
    }

    /// Draws one code.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u32 {
        let u: f64 = rng.gen();
        // First index with cdf >= u.
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) | Err(i) => i.min(self.cdf.len() - 1) as u32,
        }
    }

    /// Probability of one code (from CDF differences).
    pub fn pmf(&self, code: u32) -> f64 {
        let i = code as usize;
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }

    /// Number of codes.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn hist(skew: FkSkew, n: u32, draws: usize) -> Vec<usize> {
        let sampler = SkewSampler::new(skew, n);
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let mut h = vec![0usize; n as usize];
        for _ in 0..draws {
            h[sampler.sample(&mut rng) as usize] += 1;
        }
        h
    }

    #[test]
    fn uniform_is_flat() {
        let h = hist(FkSkew::Uniform, 10, 40_000);
        for &c in &h {
            let f = c as f64 / 40_000.0;
            assert!((f - 0.1).abs() < 0.02, "freq {f}");
        }
    }

    #[test]
    fn zipf_zero_is_uniform() {
        let s = SkewSampler::new(FkSkew::Zipf { s: 0.0 }, 5);
        for c in 0..5 {
            assert!((s.pmf(c) - 0.2).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_mass_decreases_with_rank() {
        let s = SkewSampler::new(FkSkew::Zipf { s: 2.0 }, 8);
        for c in 1..8 {
            assert!(s.pmf(c) < s.pmf(c - 1));
        }
        // Empirically the first code dominates.
        let h = hist(FkSkew::Zipf { s: 2.0 }, 8, 20_000);
        assert!(h[0] > h[1] && h[1] > h[2]);
    }

    #[test]
    fn needle_gets_requested_mass() {
        let s = SkewSampler::new(FkSkew::NeedleThread { p: 0.7 }, 11);
        assert!((s.pmf(0) - 0.7).abs() < 1e-12);
        for c in 1..11 {
            assert!((s.pmf(c) - 0.03).abs() < 1e-12);
        }
        let h = hist(FkSkew::NeedleThread { p: 0.7 }, 11, 20_000);
        let f0 = h[0] as f64 / 20_000.0;
        assert!((f0 - 0.7).abs() < 0.02);
    }

    #[test]
    fn needle_p_one_is_deterministic() {
        let h = hist(FkSkew::NeedleThread { p: 1.0 }, 4, 1000);
        assert_eq!(h[0], 1000);
    }

    #[test]
    fn pmf_sums_to_one() {
        for skew in [
            FkSkew::Uniform,
            FkSkew::Zipf { s: 1.5 },
            FkSkew::NeedleThread { p: 0.4 },
        ] {
            let s = SkewSampler::new(skew, 23);
            let total: f64 = (0..23).map(|c| s.pmf(c)).sum();
            assert!((total - 1.0).abs() < 1e-9, "{skew:?}");
        }
    }

    #[test]
    fn single_code_domain_works() {
        let s = SkewSampler::new(FkSkew::NeedleThread { p: 0.5 }, 1);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        assert_eq!(s.sample(&mut rng), 0);
        assert_eq!(s.n(), 1);
    }
}
