//! # hamlet-datagen
//!
//! Workload generators for the VLDB 2017 study "Are Key-Foreign Key Joins
//! Safe to Avoid when Learning High-Capacity Classifiers?":
//!
//! - [`onexr`] — Scenario `OneXr` (§4.1): a lone foreign feature drives the
//!   target; the known worst case for avoiding joins. Supports FK skew
//!   ([`skew::FkSkew`]) and hidden-FK fractions for smoothing experiments.
//! - [`xsxr`] — Scenario `XSXR` (§4.2): a noise-free true probability table
//!   over the full feature vector.
//! - [`reponexr`] — Scenario `RepOneXr` (§4.3): the driving feature
//!   replicated across all foreign features.
//! - [`emulate`] — synthetic stand-ins for the seven real datasets of
//!   Table 1, preserving schema shape and every tuple ratio (see DESIGN.md
//!   for the substitution argument).
//!
//! All generators return a [`sim::GeneratedStar`]: a validated
//! [`hamlet_relation::star::StarSchema`] plus the paper's train/validation/
//! test split boundaries. Everything is seeded and reproducible.

pub mod emulate;
pub mod onexr;
pub mod reponexr;
pub mod sim;
pub mod skew;
pub mod xsxr;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::emulate::{DimSpec, EmulatorSpec, DEFAULT_TARGET_N_S};
    pub use crate::onexr::{self, OneXrParams};
    pub use crate::reponexr::{self, RepOneXrParams};
    pub use crate::sim::{sim_split_sizes, GeneratedStar};
    pub use crate::skew::{FkSkew, SkewSampler};
    pub use crate::xsxr::{self, XsXrParams};
}
