//! Scenario `OneXr` (§4.1): a lone foreign feature drives the target.
//!
//! The "worst case" for avoiding the join: a single `X_r ∈ X_R` determines
//! `Y` (with flip-noise `p`), everything else — the rest of `X_R` and all of
//! `X_S` — is random noise. The FK is *not* in the true distribution, but it
//! functionally determines `X_r`, so NoJoin must recover the signal through
//! the FK's much larger domain.
//!
//! Generation procedure (verbatim from the paper):
//! 1. Build `R` by sampling `X_R` uniformly (independent coin tosses).
//! 2. Build `S` by sampling `X_S` uniformly.
//! 3. Assign FK values uniformly (or with Zipfian / needle-and-thread skew).
//! 4. Assign `Y` by looking up `X_r` through the implicit join and sampling
//!    `P(Y=0|X_r=0) = P(Y=1|X_r=1) = p`.

use rand::Rng;
use rand::SeedableRng;

use crate::sim::{assemble_star, sim_split_sizes, DimColumns, FactColumns, GeneratedStar};
use crate::skew::{FkSkew, SkewSampler};

/// Parameters of the OneXr generator. Defaults mirror Figure 2's fixed
/// values: `(n_s, n_r, d_s, d_r) = (1000, 40, 4, 4)`, `p = 0.1`.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct OneXrParams {
    /// Training examples `n_S` (validation and test add `n_S/4` each).
    pub n_s: usize,
    /// Dimension rows `n_R = |D_FK|`.
    pub n_r: u32,
    /// Home features `d_S` (binary, noise).
    pub d_s: usize,
    /// Foreign features `d_R` (binary noise except `X_r`).
    pub d_r: usize,
    /// Flip-noise / probability skew parameter `p` (Bayes error when < 0.5).
    pub p: f64,
    /// Domain size of the driving feature `X_r` (Figure 2(F) sweeps this).
    pub xr_domain: u32,
    /// FK skew (Figure 5 sweeps Zipf and needle-and-thread).
    pub skew: FkSkew,
    /// Fraction of `D_FK` hidden from the train/validation splits
    /// (γ in the §6.2 smoothing experiments; 0 = all values visible).
    pub unseen_frac: f64,
    /// Seed for *example sampling* (X_S, FK, Y-noise). Monte-Carlo studies
    /// vary this per run.
    pub seed: u64,
    /// Seed for the *true distribution* (the dimension table, i.e. the
    /// FK → X_r map). Monte-Carlo studies keep this fixed so every run
    /// samples from the same distribution (required for the Domingos
    /// bias-variance decomposition to be meaningful).
    pub dist_seed: u64,
}

impl Default for OneXrParams {
    fn default() -> Self {
        Self {
            n_s: 1000,
            n_r: 40,
            d_s: 4,
            d_r: 4,
            p: 0.1,
            xr_domain: 2,
            skew: FkSkew::Uniform,
            unseen_frac: 0.0,
            seed: 0x10e,
            dist_seed: 0xD157,
        }
    }
}

/// Samples one OneXr star schema.
pub fn generate(params: OneXrParams) -> GeneratedStar {
    assert!(params.d_r >= 1, "OneXr needs at least the driving feature");
    assert!(params.n_r >= 1);
    let mut dist_rng = rand::rngs::StdRng::seed_from_u64(params.dist_seed);
    let mut rng = rand::rngs::StdRng::seed_from_u64(params.seed);
    let (n_train, n_val, n_test) = sim_split_sizes(params.n_s);
    let n_total = n_train + n_val + n_test;
    let n_r = params.n_r as usize;

    // Step 1: dimension table (part of the true distribution → dist_rng).
    // Feature 0 is X_r (domain `xr_domain`); the remaining d_r − 1 features
    // are binary noise.
    let xr: Vec<u32> = (0..n_r)
        .map(|_| dist_rng.gen_range(0..params.xr_domain))
        .collect();
    let mut dim_cols = vec![("xr0".to_string(), params.xr_domain, xr.clone())];
    for j in 1..params.d_r {
        let codes: Vec<u32> = (0..n_r).map(|_| dist_rng.gen_range(0..2)).collect();
        dim_cols.push((format!("xr{j}"), 2, codes));
    }

    // Step 2: home features (binary noise).
    let mut xs = Vec::with_capacity(params.d_s);
    for j in 0..params.d_s {
        let codes: Vec<u32> = (0..n_total).map(|_| rng.gen_range(0..2)).collect();
        xs.push((format!("xs{j}"), 2u32, codes));
    }

    // Step 3: FK assignment. Train/val rows draw from the "seen" subset when
    // unseen_frac > 0; test rows always draw from the full domain.
    let sampler = SkewSampler::new(params.skew, params.n_r);
    let n_seen = if params.unseen_frac > 0.0 {
        (((1.0 - params.unseen_frac) * n_r as f64).round() as usize).clamp(1, n_r)
    } else {
        n_r
    };
    let mut fk = Vec::with_capacity(n_total);
    for i in 0..n_total {
        let in_train_or_val = i < n_train + n_val;
        loop {
            let code = sampler.sample(&mut rng);
            if !in_train_or_val || (code as usize) < n_seen {
                fk.push(code);
                break;
            }
            // Rejection sampling keeps the skew shape on the seen subset.
        }
    }

    // Step 4: labels through the implicit join.
    // P(Y=1 | X_r = v) = p when v is odd, 1 − p when v is even — the paper's
    // binary rule P(Y=0|Xr=0) = P(Y=1|Xr=1) = p, extended to |D_Xr| > 2.
    let y: Vec<bool> = fk
        .iter()
        .map(|&code| {
            let v = xr[code as usize];
            let p_pos = if v % 2 == 1 { params.p } else { 1.0 - params.p };
            rng.gen_bool(p_pos)
        })
        .collect();

    let star = assemble_star(
        "onexr",
        FactColumns {
            y,
            xs,
            fks: vec![fk],
        },
        vec![DimColumns {
            name: "r".into(),
            columns: dim_cols,
            open_domain: false,
        }],
    );
    GeneratedStar {
        star,
        n_train,
        n_val,
        n_test,
    }
}

/// The Bayes-optimal test error of this scenario (`min(p, 1−p)`).
pub fn bayes_error(params: &OneXrParams) -> f64 {
    params.p.min(1.0 - params.p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hamlet_relation::fd::check_fd;

    #[test]
    fn shapes_follow_params() {
        let g = generate(OneXrParams::default());
        assert_eq!(g.n_train, 1000);
        assert_eq!(g.n_val, 250);
        assert_eq!(g.n_test, 250);
        assert_eq!(g.star.fact().n_rows(), 1500);
        assert_eq!(g.star.dims()[0].n_rows(), 40);
        assert_eq!(g.star.dims()[0].d_features(), 4);
        // Fact: y + 4 xs + 1 fk.
        assert_eq!(g.star.fact().width(), 6);
    }

    #[test]
    fn join_satisfies_fd() {
        let g = generate(OneXrParams::default());
        let joined = g.star.materialize_all().unwrap();
        assert!(check_fd(&joined, "fk_r", &["xr0", "xr1", "xr2", "xr3"]).unwrap());
    }

    #[test]
    fn labels_track_xr_with_noise() {
        let params = OneXrParams {
            n_s: 4000,
            p: 0.1,
            ..Default::default()
        };
        let g = generate(params);
        let joined = g.star.materialize_all().unwrap();
        let xr = joined.column("xr0").unwrap().codes().to_vec();
        let y = joined.target_as_bool().unwrap();
        // Empirical P(Y=1 | Xr=1) should be near p = 0.1.
        let (mut n1, mut pos1) = (0usize, 0usize);
        for (v, label) in xr.iter().zip(&y) {
            if *v == 1 {
                n1 += 1;
                pos1 += usize::from(*label);
            }
        }
        let f = pos1 as f64 / n1 as f64;
        assert!((f - 0.1).abs() < 0.03, "P(Y=1|Xr=1) = {f}");
    }

    #[test]
    fn seeded_generation_is_reproducible() {
        let a = generate(OneXrParams::default());
        let b = generate(OneXrParams::default());
        assert_eq!(
            a.star.fact().column("fk_r").unwrap().codes(),
            b.star.fact().column("fk_r").unwrap().codes()
        );
    }

    #[test]
    fn unseen_fraction_hides_codes_from_training() {
        let params = OneXrParams {
            n_s: 2000,
            n_r: 40,
            unseen_frac: 0.5,
            seed: 3,
            ..Default::default()
        };
        let g = generate(params);
        let fk = g.star.fact().column("fk_r").unwrap().codes().to_vec();
        let train_max = g.train_idx().into_iter().map(|i| fk[i]).max().unwrap();
        assert!(
            train_max < 20,
            "train FK codes must come from the seen half"
        );
        // The test split should hit at least one hidden code.
        let test_hits_hidden = g.test_idx().into_iter().any(|i| fk[i] >= 20);
        assert!(test_hits_hidden);
    }

    #[test]
    fn dist_seed_fixes_the_distribution_across_sample_seeds() {
        let a = generate(OneXrParams {
            seed: 1,
            ..Default::default()
        });
        let b = generate(OneXrParams {
            seed: 2,
            ..Default::default()
        });
        // Same true distribution: identical dimension tables...
        assert_eq!(
            a.star.dims()[0].table.column("xr0").unwrap().codes(),
            b.star.dims()[0].table.column("xr0").unwrap().codes()
        );
        // ...but different training samples.
        assert_ne!(
            a.star.fact().column("fk_r").unwrap().codes(),
            b.star.fact().column("fk_r").unwrap().codes()
        );
    }

    #[test]
    fn multi_valued_xr_supported() {
        let params = OneXrParams {
            xr_domain: 5,
            ..Default::default()
        };
        let g = generate(params);
        let joined = g.star.materialize_all().unwrap();
        let max_xr = joined
            .column("xr0")
            .unwrap()
            .codes()
            .iter()
            .max()
            .copied()
            .unwrap();
        assert!(max_xr < 5);
    }

    #[test]
    fn bayes_error_is_min_p() {
        let p = OneXrParams {
            p: 0.2,
            ..Default::default()
        };
        assert!((bayes_error(&p) - 0.2).abs() < 1e-12);
        let p = OneXrParams {
            p: 0.9,
            ..Default::default()
        };
        assert!((bayes_error(&p) - 0.1).abs() < 1e-12);
    }
}
