//! Scenario `XSXR` (§4.2): the whole feature vector determines the target.
//!
//! A "true probability table" (TPT) over every `[X_S, X_R]` combination maps
//! deterministically to `Y` (`H(Y|X) = 0`, no Bayes noise). The dimension
//! table is sampled from the marginal `P(X_R)`; the TPT is then restricted
//! to the realised `X_R` tuples and renormalised, examples are drawn from
//! it, and each example's FK is drawn uniformly from the RIDs that carry its
//! `X_R` value (the implicit join).

use rand::Rng;
use rand::SeedableRng;

use crate::sim::{assemble_star, sim_split_sizes, DimColumns, FactColumns, GeneratedStar};

/// Parameters of the XSXR generator. Defaults match Figure 6's fixed values.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct XsXrParams {
    /// Training examples `n_S`.
    pub n_s: usize,
    /// Dimension rows `n_R = |D_FK|`.
    pub n_r: u32,
    /// Home features `d_S` (binary).
    pub d_s: usize,
    /// Foreign features `d_R` (binary).
    pub d_r: usize,
    /// Seed for example sampling (varied per Monte-Carlo run).
    pub seed: u64,
    /// Seed for the true distribution: the TPT, its labels, and the
    /// dimension-table draw (held fixed across Monte-Carlo runs).
    pub dist_seed: u64,
}

impl Default for XsXrParams {
    fn default() -> Self {
        Self {
            n_s: 1000,
            n_r: 40,
            d_s: 4,
            d_r: 4,
            seed: 0x55b,
            dist_seed: 0xD157,
        }
    }
}

/// Draws an index from an (unnormalised) weight vector.
fn sample_weighted<R: Rng>(weights: &[f64], total: f64, rng: &mut R) -> usize {
    let mut u = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        u -= w;
        if u <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// Samples one XSXR star schema.
pub fn generate(params: XsXrParams) -> GeneratedStar {
    assert!(
        params.d_s + params.d_r <= 24,
        "TPT would exceed 2^24 entries"
    );
    assert!(params.d_r >= 1 && params.n_r >= 1);
    let mut dist_rng = rand::rngs::StdRng::seed_from_u64(params.dist_seed);
    let mut rng = rand::rngs::StdRng::seed_from_u64(params.seed);
    let (n_train, n_val, n_test) = sim_split_sizes(params.n_s);
    let n_total = n_train + n_val + n_test;
    let n_r = params.n_r as usize;

    let xs_states = 1usize << params.d_s;
    let xr_states = 1usize << params.d_r;
    let tpt_len = xs_states * xr_states;

    // Steps 1–2 (true distribution → dist_rng): random TPT + deterministic
    // labels per entry.
    let mut tpt: Vec<f64> = (0..tpt_len).map(|_| dist_rng.gen::<f64>()).collect();
    let labels: Vec<bool> = (0..tpt_len).map(|_| dist_rng.gen_bool(0.5)).collect();

    // Step 3 (still the distribution): marginalise to P(X_R), sample n_R
    // dimension tuples.
    let mut p_xr = vec![0.0f64; xr_states];
    for (entry, &w) in tpt.iter().enumerate() {
        p_xr[entry % xr_states] += w;
    }
    let p_xr_total: f64 = p_xr.iter().sum();
    let dim_xr: Vec<usize> = (0..n_r)
        .map(|_| sample_weighted(&p_xr, p_xr_total, &mut dist_rng))
        .collect();

    // RIDs carrying each X_R state (for the implicit-join FK assignment).
    let mut rids_by_xr: Vec<Vec<u32>> = vec![Vec::new(); xr_states];
    for (rid, &state) in dim_xr.iter().enumerate() {
        rids_by_xr[state].push(rid as u32);
    }

    // Step 4: zero out TPT entries with unrealised X_R; renormalisation is
    // implicit in weighted sampling.
    for (entry, w) in tpt.iter_mut().enumerate() {
        if rids_by_xr[entry % xr_states].is_empty() {
            *w = 0.0;
        }
    }
    let tpt_total: f64 = tpt.iter().sum();
    assert!(tpt_total > 0.0, "at least one X_R tuple is realised");

    // Steps 5–6: sample examples and assign FKs.
    let mut xs_cols: Vec<Vec<u32>> = vec![Vec::with_capacity(n_total); params.d_s];
    let mut fk = Vec::with_capacity(n_total);
    let mut y = Vec::with_capacity(n_total);
    for _ in 0..n_total {
        let entry = sample_weighted(&tpt, tpt_total, &mut rng);
        let xs_state = entry / xr_states;
        let xr_state = entry % xr_states;
        for (j, col) in xs_cols.iter_mut().enumerate() {
            col.push(((xs_state >> j) & 1) as u32);
        }
        let rids = &rids_by_xr[xr_state];
        fk.push(rids[rng.gen_range(0..rids.len())]);
        y.push(labels[entry]);
    }

    // Dimension feature columns: bits of each row's X_R state.
    let dim_cols: Vec<(String, u32, Vec<u32>)> = (0..params.d_r)
        .map(|j| {
            let codes: Vec<u32> = dim_xr.iter().map(|&s| ((s >> j) & 1) as u32).collect();
            (format!("xr{j}"), 2u32, codes)
        })
        .collect();

    let xs = xs_cols
        .into_iter()
        .enumerate()
        .map(|(j, codes)| (format!("xs{j}"), 2u32, codes))
        .collect();

    let star = assemble_star(
        "xsxr",
        FactColumns {
            y,
            xs,
            fks: vec![fk],
        },
        vec![DimColumns {
            name: "r".into(),
            columns: dim_cols,
            open_domain: false,
        }],
    );
    GeneratedStar {
        star,
        n_train,
        n_val,
        n_test,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hamlet_relation::fd::check_fd;
    use std::collections::HashMap;

    #[test]
    fn shapes_follow_params() {
        let g = generate(XsXrParams::default());
        assert_eq!(g.star.fact().n_rows(), 1500);
        assert_eq!(g.star.dims()[0].n_rows(), 40);
        assert_eq!(g.star.dims()[0].d_features(), 4);
    }

    #[test]
    fn join_satisfies_fd() {
        let g = generate(XsXrParams::default());
        let joined = g.star.materialize_all().unwrap();
        assert!(check_fd(&joined, "fk_r", &["xr0", "xr1", "xr2", "xr3"]).unwrap());
    }

    #[test]
    fn target_is_deterministic_in_xs_xr() {
        // H(Y | X_S, X_R) = 0: identical [xs, xr] rows carry identical labels.
        let g = generate(XsXrParams {
            n_s: 2000,
            ..Default::default()
        });
        let joined = g.star.materialize_all().unwrap();
        let y = joined.target_as_bool().unwrap();
        let mut key_cols: Vec<Vec<u32>> = Vec::new();
        for name in ["xs0", "xs1", "xs2", "xs3", "xr0", "xr1", "xr2", "xr3"] {
            key_cols.push(joined.column(name).unwrap().codes().to_vec());
        }
        let mut seen: HashMap<Vec<u32>, bool> = HashMap::new();
        for i in 0..joined.n_rows() {
            let key: Vec<u32> = key_cols.iter().map(|c| c[i]).collect();
            if let Some(&prev) = seen.get(&key) {
                assert_eq!(prev, y[i], "label must be a function of [X_S, X_R]");
            } else {
                seen.insert(key, y[i]);
            }
        }
    }

    #[test]
    fn fk_only_maps_to_matching_xr_rows() {
        let g = generate(XsXrParams::default());
        // Every FK value refers to a dimension row; join integrity was
        // validated at construction, so reaching here is the assertion.
        assert_eq!(g.star.q(), 1);
    }

    #[test]
    fn reproducible() {
        let a = generate(XsXrParams::default());
        let b = generate(XsXrParams::default());
        assert_eq!(
            a.star.fact().column("fk_r").unwrap().codes(),
            b.star.fact().column("fk_r").unwrap().codes()
        );
    }

    #[test]
    fn weighted_sampler_respects_zeros() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let w = vec![0.0, 1.0, 0.0];
        for _ in 0..100 {
            assert_eq!(sample_weighted(&w, 1.0, &mut rng), 1);
        }
    }
}
