//! Synthetic emulators for the paper's seven real-world datasets (Table 1).
//!
//! The original data (Kaggle, GroupLens, last.fm, openflights, BookCrossing)
//! is not redistributable, so each dataset is replaced by a generator that
//! preserves everything the paper identifies as behaviourally relevant:
//!
//! - the star-schema *shape*: `q`, `d_S`, per-dimension `d_R`;
//! - every **tuple ratio** `n_S / n_R` (the paper's decision quantity),
//!   via a common scale factor on `n_S` and all `n_R`;
//! - open-domain FKs (Expedia's search table can never be discarded);
//! - a planted label distribution mixing *foreign-feature signal* (what
//!   JoinAll sees directly and NoJoin must recover through the FK),
//!   *per-FK idiosyncratic effects* (what NoFK loses), *home-feature
//!   signal*, and Bayes noise.
//!
//! The per-dimension signal weights are chosen so the qualitative Table 2/3
//! outcomes reproduce: dimensions with healthy tuple ratios are safe to
//! avoid; Yelp's users dimension (ratio 2.5) carries strong signal and
//! *hurts* when avoided; Books' low-ratio dimension carries little signal
//! and stays safe (the paper's "tuple ratio is conservative" remark).

use rand::Rng;
use rand::SeedableRng;

use crate::sim::{assemble_star, DimColumns, FactColumns, GeneratedStar};
use crate::skew::{FkSkew, SkewSampler};

/// Shape and planted-signal description of one dimension table.
#[derive(Debug, Clone)]
pub struct DimSpec {
    /// Dimension name (mirrors the paper's description).
    pub name: &'static str,
    /// Full-scale `n_R` from Table 1.
    pub n_r_full: usize,
    /// Foreign-feature count `d_R` from Table 1.
    pub d_r: usize,
    /// Weight of this dimension's foreign features in the label score.
    pub signal: f64,
    /// Weight of the per-FK idiosyncratic effect (signal carried by the FK
    /// itself, invisible to `X_R` — what NoFK forfeits).
    pub fk_effect: f64,
    /// Open-domain FK (Table 1's "N/A" rows).
    pub open_domain: bool,
    /// X_R profile pooling divisor: `> 0` draws each dimension row's feature
    /// tuple from a pool of `max(2, n_R / div)` distinct profiles, so many
    /// FKs share one X_R profile and `X_R` cannot identify the FK. This is
    /// what makes a per-FK effect genuinely invisible to NoFK (with fully
    /// i.i.d. features, every dimension row is unique and X_R leaks the
    /// key). `0` = independent features per row.
    pub profile_pool_div: u32,
}

/// Shape and signal description of one emulated dataset.
#[derive(Debug, Clone)]
pub struct EmulatorSpec {
    /// Dataset name as in Table 1.
    pub name: &'static str,
    /// Full-scale `n_S` from Table 1 (total labelled examples).
    pub n_s_full: usize,
    /// Home-feature count `d_S` from Table 1.
    pub d_s: usize,
    /// Weight of home features in the label score.
    pub home_signal: f64,
    /// Logistic sharpness (inverse Bayes noise).
    pub beta: f64,
    /// Dimensions in Table 1 order.
    pub dims: Vec<DimSpec>,
}

/// Default emulation size: total labelled examples generated when callers do
/// not override the target (the 50 % train split then has 6 000 rows).
pub const DEFAULT_TARGET_N_S: usize = 12_000;

impl EmulatorSpec {
    /// Expedia: hotel-ranking; hotels dimension + open-domain search events.
    pub fn expedia() -> Self {
        Self {
            name: "Expedia",
            n_s_full: 942_142,
            d_s: 1,
            home_signal: 0.4,
            beta: 6.0,
            dims: vec![
                DimSpec {
                    name: "hotels",
                    n_r_full: 11_939,
                    d_r: 8,
                    signal: 0.7,
                    fk_effect: 0.3,
                    open_domain: false,
                    profile_pool_div: 6,
                },
                DimSpec {
                    name: "searches",
                    n_r_full: 37_021,
                    d_r: 14,
                    signal: 0.6,
                    fk_effect: 0.0,
                    open_domain: true,
                    profile_pool_div: 0,
                },
            ],
        }
    }

    /// MovieLens: rating prediction; users and movies dimensions.
    pub fn movies() -> Self {
        Self {
            name: "Movies",
            n_s_full: 1_000_209,
            d_s: 0,
            home_signal: 0.0,
            beta: 6.0,
            dims: vec![
                DimSpec {
                    name: "users",
                    n_r_full: 6_040,
                    d_r: 4,
                    signal: 0.6,
                    fk_effect: 0.3,
                    open_domain: false,
                    profile_pool_div: 4,
                },
                DimSpec {
                    name: "movies",
                    n_r_full: 3_706,
                    d_r: 21,
                    signal: 0.7,
                    fk_effect: 0.3,
                    open_domain: false,
                    profile_pool_div: 4,
                },
            ],
        }
    }

    /// Yelp: business-rating prediction; the users dimension has the
    /// paper's lowest tuple ratio (2.5) *and* strong signal — the one case
    /// where NoJoin visibly hurts.
    pub fn yelp() -> Self {
        Self {
            name: "Yelp",
            n_s_full: 215_879,
            d_s: 0,
            home_signal: 0.0,
            beta: 7.0,
            dims: vec![
                DimSpec {
                    name: "businesses",
                    n_r_full: 11_535,
                    d_r: 32,
                    signal: 0.7,
                    fk_effect: 0.0,
                    open_domain: false,
                    profile_pool_div: 0,
                },
                DimSpec {
                    name: "users",
                    n_r_full: 43_873,
                    d_r: 6,
                    signal: 0.6,
                    fk_effect: 0.0,
                    open_domain: false,
                    profile_pool_div: 0,
                },
            ],
        }
    }

    /// Walmart: department-sales prediction; stores + indicators dimensions.
    pub fn walmart() -> Self {
        Self {
            name: "Walmart",
            n_s_full: 421_570,
            d_s: 1,
            home_signal: 0.5,
            beta: 8.0,
            dims: vec![
                DimSpec {
                    name: "indicators",
                    n_r_full: 2_340,
                    d_r: 9,
                    signal: 0.8,
                    fk_effect: 0.0,
                    open_domain: false,
                    profile_pool_div: 0,
                },
                DimSpec {
                    name: "stores",
                    n_r_full: 45,
                    d_r: 2,
                    signal: 0.5,
                    fk_effect: 0.0,
                    open_domain: false,
                    profile_pool_div: 0,
                },
            ],
        }
    }

    /// LastFM: play-count prediction; users + artists dimensions.
    pub fn lastfm() -> Self {
        Self {
            name: "LastFM",
            n_s_full: 343_747,
            d_s: 0,
            home_signal: 0.0,
            beta: 6.0,
            dims: vec![
                DimSpec {
                    name: "users",
                    n_r_full: 4_099,
                    d_r: 7,
                    signal: 0.6,
                    fk_effect: 0.6,
                    open_domain: false,
                    profile_pool_div: 10,
                },
                DimSpec {
                    name: "artists",
                    n_r_full: 50_000,
                    d_r: 4,
                    signal: 0.2,
                    fk_effect: 0.0,
                    open_domain: false,
                    profile_pool_div: 0,
                },
            ],
        }
    }

    /// BookCrossing: book-rating prediction; readers + books dimensions.
    /// Both tuple ratios are low, but the planted signal is weak — the
    /// "conservative indicator" case (avoiding stays safe).
    pub fn books() -> Self {
        Self {
            name: "Books",
            n_s_full: 253_120,
            d_s: 0,
            home_signal: 0.0,
            beta: 2.5,
            dims: vec![
                DimSpec {
                    name: "readers",
                    n_r_full: 27_876,
                    d_r: 2,
                    signal: 0.5,
                    fk_effect: 0.6,
                    open_domain: false,
                    profile_pool_div: 8,
                },
                DimSpec {
                    name: "books",
                    n_r_full: 49_972,
                    d_r: 4,
                    signal: 0.2,
                    fk_effect: 0.0,
                    open_domain: false,
                    profile_pool_div: 0,
                },
            ],
        }
    }

    /// Flights: codeshare prediction; airlines + source/destination
    /// airports. Strong per-airline FK effect (NoFK drops ≈ 0.05 in the
    /// paper).
    pub fn flights() -> Self {
        Self {
            name: "Flights",
            n_s_full: 66_548,
            d_s: 20,
            home_signal: 0.5,
            beta: 8.0,
            dims: vec![
                DimSpec {
                    name: "airlines",
                    n_r_full: 540,
                    d_r: 5,
                    signal: 0.6,
                    fk_effect: 0.9,
                    open_domain: false,
                    profile_pool_div: 10,
                },
                DimSpec {
                    name: "src_airports",
                    n_r_full: 3_167,
                    d_r: 6,
                    signal: 0.3,
                    fk_effect: 0.0,
                    open_domain: false,
                    profile_pool_div: 0,
                },
                DimSpec {
                    name: "dst_airports",
                    n_r_full: 3_170,
                    d_r: 6,
                    signal: 0.3,
                    fk_effect: 0.0,
                    open_domain: false,
                    profile_pool_div: 0,
                },
            ],
        }
    }

    /// All seven emulators in Table 1 order.
    pub fn all() -> Vec<EmulatorSpec> {
        vec![
            Self::expedia(),
            Self::movies(),
            Self::yelp(),
            Self::walmart(),
            Self::lastfm(),
            Self::books(),
            Self::flights(),
        ]
    }

    /// Generates at the default target size.
    pub fn generate(&self, seed: u64) -> GeneratedStar {
        self.generate_scaled(DEFAULT_TARGET_N_S, seed)
    }

    /// Generates with `n_S ≈ target_n_s` (capped at the full-scale size),
    /// scaling every `n_R` by the same factor so the Table 1 tuple ratios
    /// are preserved.
    pub fn generate_scaled(&self, target_n_s: usize, seed: u64) -> GeneratedStar {
        let scale = (target_n_s as f64 / self.n_s_full as f64).min(1.0);
        let n_s = ((self.n_s_full as f64 * scale).round() as usize).max(64);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);

        // Scaled dimension sizes.
        let n_rs: Vec<usize> = self
            .dims
            .iter()
            .map(|d| ((d.n_r_full as f64 * scale).round() as usize).clamp(2, d.n_r_full))
            .collect();

        // Dimension feature columns: cardinalities cycle 2,3,4,6,8 and codes
        // are uniform. The first few columns of each dimension carry the
        // planted signal (via the centred code value).
        const CARDS: [u32; 5] = [2, 3, 4, 6, 8];
        // Signal concentration: the lead feature carries most of a group's
        // score (0.7/0.3 with the second feature). Spreading it thinner
        // makes the additive signal unlearnable for trees at these scales.
        const LEAD: f64 = 0.7;
        const SECOND: f64 = 0.3;
        let mut dims_cols: Vec<DimColumns> = Vec::with_capacity(self.dims.len());
        let mut dim_scores: Vec<Vec<f64>> = Vec::with_capacity(self.dims.len());
        let mut fk_effects: Vec<Vec<f64>> = Vec::with_capacity(self.dims.len());
        for (spec, &n_r) in self.dims.iter().zip(&n_rs) {
            let mut columns = Vec::with_capacity(spec.d_r);
            let mut score = vec![0.0f64; n_r];
            // Profile pooling: rows draw their whole X_R tuple from a small
            // pool, so many FKs share a profile (see `DimSpec`).
            let profile_assignment: Option<(usize, Vec<usize>)> = if spec.profile_pool_div > 0 {
                let pool = (n_r / spec.profile_pool_div as usize).max(2);
                let assignment = (0..n_r).map(|_| rng.gen_range(0..pool)).collect();
                Some((pool, assignment))
            } else {
                None
            };
            for j in 0..spec.d_r {
                let card = CARDS[j % CARDS.len()];
                let codes: Vec<u32> = match &profile_assignment {
                    Some((pool, assignment)) => {
                        let pool_codes: Vec<u32> =
                            (0..*pool).map(|_| rng.gen_range(0..card)).collect();
                        assignment.iter().map(|&p| pool_codes[p]).collect()
                    }
                    None => (0..n_r).map(|_| rng.gen_range(0..card)).collect(),
                };
                let w = match j {
                    0 => {
                        if spec.d_r == 1 {
                            1.0
                        } else {
                            LEAD
                        }
                    }
                    1 => SECOND,
                    _ => 0.0,
                };
                if w > 0.0 {
                    for (s, &code) in score.iter_mut().zip(&codes) {
                        *s += w * centred(code, card);
                    }
                }
                columns.push((format!("{}_{j}", spec.name), card, codes));
            }
            dims_cols.push(DimColumns {
                name: spec.name.to_string(),
                columns,
                open_domain: spec.open_domain,
            });
            dim_scores.push(score);
            // Per-FK idiosyncratic effect: a coin flip to ±1 per key, so
            // the effect is sharply learnable by FK memorization.
            fk_effects.push(
                (0..n_r)
                    .map(|_| if rng.gen_bool(0.5) { 1.0 } else { -1.0 })
                    .collect(),
            );
        }

        // Home features: signal spreads geometrically over up to six of
        // them (w_j ∝ 2^{-j}, normalised), which keeps wide fact tables
        // (Flights, d_S = 20) informative for distance-based models too.
        let mut xs = Vec::with_capacity(self.d_s);
        let mut home_score = vec![0.0f64; n_s];
        let n_home_signal = self.d_s.min(6);
        let home_norm: f64 = (0..n_home_signal).map(|j| 0.5f64.powi(j as i32)).sum();
        for j in 0..self.d_s {
            let card = CARDS[j % CARDS.len()];
            let codes: Vec<u32> = (0..n_s).map(|_| rng.gen_range(0..card)).collect();
            if j < n_home_signal {
                let w = 0.5f64.powi(j as i32) / home_norm;
                for (s, &code) in home_score.iter_mut().zip(&codes) {
                    *s += w * centred(code, card);
                }
            }
            xs.push((format!("s_{j}"), card, codes));
        }

        // FK assignment: mild Zipf skew (real key popularity is skewed).
        let samplers: Vec<SkewSampler> = n_rs
            .iter()
            .map(|&n_r| SkewSampler::new(FkSkew::Zipf { s: 0.5 }, n_r as u32))
            .collect();
        let fks: Vec<Vec<u32>> = samplers
            .iter()
            .map(|s| (0..n_s).map(|_| s.sample(&mut rng)).collect())
            .collect();

        // Label scores: weighted sum of dimension signal, FK effects and
        // home signal, squashed through a logistic with sharpness beta.
        let total_weight: f64 = self.home_signal
            + self
                .dims
                .iter()
                .map(|d| d.signal + d.fk_effect)
                .sum::<f64>();
        let mut y = Vec::with_capacity(n_s);
        #[allow(clippy::needless_range_loop)] // row index spans several arrays
        for i in 0..n_s {
            let mut z = self.home_signal * home_score.get(i).copied().unwrap_or(0.0);
            for (k, spec) in self.dims.iter().enumerate() {
                let fk = fks[k][i] as usize;
                z += spec.signal * dim_scores[k][fk] + spec.fk_effect * fk_effects[k][fk];
            }
            let p = sigmoid(self.beta * z / total_weight.max(1e-9));
            y.push(rng.gen_bool(p));
        }

        // dS = 0 datasets still need a fact side: FKs are features, so the
        // fact table is simply y + FKs (CatDataset accepts FK-only rows).
        let star = assemble_star(self.name, FactColumns { y, xs, fks }, dims_cols);
        // 50 / 25 / 25 split of the generated labelled examples (§3.2).
        let n_train = n_s / 2;
        let n_val = n_s / 4;
        GeneratedStar {
            star,
            n_train,
            n_val,
            n_test: n_s - n_train - n_val,
        }
    }
}

/// Centred value of a code spanning the full [−1, 1] range.
#[inline]
fn centred(code: u32, card: u32) -> f64 {
    if card <= 1 {
        return 0.0;
    }
    2.0 * code as f64 / (card - 1) as f64 - 1.0
}

#[inline]
fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_seven_datasets_present_in_table1_order() {
        let names: Vec<&str> = EmulatorSpec::all().iter().map(|e| e.name).collect();
        assert_eq!(
            names,
            vec!["Expedia", "Movies", "Yelp", "Walmart", "LastFM", "Books", "Flights"]
        );
    }

    #[test]
    fn shapes_match_table1() {
        let e = EmulatorSpec::flights();
        assert_eq!(e.d_s, 20);
        assert_eq!(e.dims.len(), 3);
        assert_eq!(e.dims[0].n_r_full, 540);
        let y = EmulatorSpec::yelp();
        assert_eq!(y.dims[1].d_r, 6);
        assert!(EmulatorSpec::expedia().dims[1].open_domain);
    }

    #[test]
    fn tuple_ratios_preserved_under_scaling() {
        let spec = EmulatorSpec::yelp();
        let g = spec.generate_scaled(10_000, 1);
        let stats = g.star.stats(g.n_train);
        // Paper: 9.4 and 2.5 (on the train split).
        assert!(
            (stats[0].tuple_ratio - 9.4).abs() < 1.5,
            "{}",
            stats[0].tuple_ratio
        );
        assert!(
            (stats[1].tuple_ratio - 2.5).abs() < 0.6,
            "{}",
            stats[1].tuple_ratio
        );
    }

    #[test]
    fn generated_star_is_valid_and_split() {
        let g = EmulatorSpec::walmart().generate_scaled(4000, 7);
        assert_eq!(g.n_total(), g.star.fact().n_rows());
        assert_eq!(g.n_train, g.n_total() / 2);
        // Join materializes (validated at construction).
        let joined = g.star.materialize_all().unwrap();
        assert_eq!(
            joined.width(),
            g.star.fact().width() + 9 + 2 // indicators d_r + stores d_r
        );
    }

    #[test]
    fn labels_correlate_with_planted_signal() {
        // The Yelp users dimension carries weight-1.0 signal; labels must
        // correlate with its first feature through the join.
        let g = EmulatorSpec::yelp().generate_scaled(8000, 3);
        let joined = g.star.materialize_all().unwrap();
        let yc = joined.target_as_bool().unwrap();
        let sig = joined.column("users_0").unwrap().codes().to_vec();
        let (mut n0, mut p0, mut n1, mut p1) = (0usize, 0usize, 0usize, 0usize);
        for (code, label) in sig.iter().zip(&yc) {
            if *code == 0 {
                n0 += 1;
                p0 += usize::from(*label);
            } else {
                n1 += 1;
                p1 += usize::from(*label);
            }
        }
        let r0 = p0 as f64 / n0 as f64;
        let r1 = p1 as f64 / n1 as f64;
        assert!(r1 - r0 > 0.1, "positive rate by signal value: {r0} vs {r1}");
    }

    #[test]
    fn scaling_caps_at_full_size() {
        let spec = EmulatorSpec::flights();
        let g = spec.generate_scaled(100_000_000, 2);
        assert_eq!(g.n_total(), spec.n_s_full);
    }

    #[test]
    fn reproducible_given_seed() {
        let a = EmulatorSpec::books().generate_scaled(2000, 11);
        let b = EmulatorSpec::books().generate_scaled(2000, 11);
        assert_eq!(
            a.star.fact().column("fk_readers").unwrap().codes(),
            b.star.fact().column("fk_readers").unwrap().codes()
        );
    }
}
