//! A miniature of the paper's §4 simulation study: stress-test how safe it
//! is to avoid the join as the foreign-key domain grows (Figure 2(B)).
//!
//! For each `n_R`, we draw several training sets from a fixed OneXr
//! distribution, tune a gini decision tree under JoinAll / NoJoin / NoFK,
//! and report the Domingos decomposition — average test error and net
//! variance — against the known Bayes-optimal predictions.
//!
//! ```text
//! cargo run --release --example simulation_study
//! ```

use hamlet::prelude::*;

fn main() {
    let budget = Budget::quick();
    let runs = 10;
    let p = 0.1; // Bayes error of the scenario
    println!("OneXr stress test: vary |D_FK| = n_R at n_S = 1000 ({runs} runs/point)");
    println!("Bayes error = {p}\n");
    println!(
        "{:>6}  {:>11}  {:>22}  {:>22}  {:>22}",
        "n_R", "tuple ratio", "JoinAll err (netvar)", "NoJoin err (netvar)", "NoFK err (netvar)"
    );

    for n_r in [10u32, 40, 100, 333, 1000] {
        let generate = move |seed: u64| {
            onexr::generate(OneXrParams {
                n_s: 1000,
                n_r,
                seed,
                ..Default::default()
            })
        };
        let mut cells = Vec::new();
        for config in [
            FeatureConfig::JoinAll,
            FeatureConfig::NoJoin,
            FeatureConfig::NoFK,
        ] {
            let point = run_monte_carlo(
                generate,
                |gs| onexr_bayes(gs, p),
                runs,
                ModelSpec::TreeGini,
                &config,
                &budget,
                42,
            )
            .unwrap();
            cells.push(format!(
                "{:.4} ({:+.4})",
                point.result.avg_error, point.result.net_variance
            ));
        }
        println!(
            "{:>6}  {:>11.1}  {:>22}  {:>22}  {:>22}",
            n_r,
            1000.0 / f64::from(n_r),
            cells[0],
            cells[1],
            cells[2]
        );
    }

    println!("\nReading the table: NoJoin tracks JoinAll (and the 0.1 Bayes floor) until");
    println!("the tuple ratio collapses below ~3; only then does net variance — extra");
    println!("overfitting from the FK's huge domain — push its error up, while NoFK");
    println!("(which sees the true driving feature directly) stays flat.");
}
