//! Walk the seven Table-1 dataset emulators: print each schema's advisor
//! report, then verify the interesting cases by training a gini decision
//! tree with and without the joins.
//!
//! The punchline mirrors the paper's §3.3: 13 of the 14 closed-domain
//! dimension tables are safe to avoid for a tree; Yelp's users table
//! (tuple ratio ≈ 2.5) is the exception the advisor flags.
//!
//! ```text
//! cargo run --release --example dataset_emulation
//! ```

use hamlet::prelude::*;

fn main() {
    let budget = Budget::quick();
    let target = 4000; // keep the example snappy; tuple ratios are preserved

    println!("Advisor reports (decision tree family, threshold 3x):\n");
    for spec in EmulatorSpec::all() {
        let g = spec.generate_scaled(target, 11);
        let report = advise(&g.star, g.n_train, ModelFamily::TreeOrAnn);
        print!("{:<8}", spec.name);
        for d in &report.dimensions {
            let verdict = match d.advice {
                Advice::AvoidJoin => "avoid",
                Advice::RetainJoin => "RETAIN",
                Advice::CannotDiscard => "n/a(open)",
            };
            print!("  {}={:.1}→{}", d.dimension, d.tuple_ratio, verdict);
        }
        println!();
    }

    println!("\nVerification on the flagged vs. an unflagged dataset (NB-BFS):\n");
    for spec in [EmulatorSpec::yelp(), EmulatorSpec::walmart()] {
        let g = spec.generate_scaled(target, 11);
        let ja = run_experiment(
            &g,
            ModelSpec::NaiveBayesBfs,
            &FeatureConfig::JoinAll,
            &budget,
        )
        .unwrap();
        let nj = run_experiment(
            &g,
            ModelSpec::NaiveBayesBfs,
            &FeatureConfig::NoJoin,
            &budget,
        )
        .unwrap();
        println!(
            "{:<8} JoinAll {:.4} vs NoJoin {:.4}  (gap {:+.4})",
            spec.name,
            ja.test_accuracy,
            nj.test_accuracy,
            ja.test_accuracy - nj.test_accuracy
        );
    }
    println!("\nWalmart's dimensions (ratios 91x and 2000x) are safe to avoid; Yelp's");
    println!("low-ratio users table is the one join worth keeping — or worth fixing");
    println!("with FK compression/smoothing (see the fk_compression example).");
}
