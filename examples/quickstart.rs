//! Quickstart: the paper's running example (§1) — customer churn.
//!
//! `Customers(CustomerID, Churn, Gender, Age, Employer)` joins
//! `Employers(Employer, State, Revenue)` through the `Employer` foreign
//! key. Should the data scientist bother procuring the employers table?
//! The tuple-ratio advisor answers from schema information alone, and we
//! verify its answer by training a decision tree both ways.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rand::Rng;
use rand::SeedableRng;
use std::sync::Arc;

use hamlet::prelude::*;

fn main() {
    // --- Build the star schema the intro describes. -------------------
    let n_customers = 4000;
    let n_employers = 60; // tuple ratio 4000/60 ≈ 67 — comfortably high
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);

    let employer_keys = CatDomain::synthetic("employer", n_employers).into_shared();
    let state = CatDomain::new("state", vec!["coastal".into(), "inland".into()])
        .unwrap()
        .into_shared();
    let revenue = CatDomain::new("revenue", vec!["low".into(), "mid".into(), "high".into()])
        .unwrap()
        .into_shared();
    let gender = CatDomain::synthetic("gender", 2).into_shared();
    let age = CatDomain::new(
        "age_band",
        vec!["18-30".into(), "31-50".into(), "51+".into()],
    )
    .unwrap()
    .into_shared();
    let churn = CatDomain::synthetic("churn", 2).into_shared();

    // Employers: state and revenue per employer.
    let emp_state: Vec<u32> = (0..n_employers).map(|_| rng.gen_range(0..2)).collect();
    let emp_revenue: Vec<u32> = (0..n_employers).map(|_| rng.gen_range(0..3)).collect();
    let employers = Table::new(
        TableSchema::new(
            "employers",
            vec![
                ColumnDef::new("employer", ColumnRole::Id),
                ColumnDef::new("state", ColumnRole::HomeFeature),
                ColumnDef::new("revenue", ColumnRole::HomeFeature),
            ],
        )
        .unwrap(),
        vec![
            CatColumn::new(Arc::clone(&employer_keys), (0..n_employers).collect()).unwrap(),
            CatColumn::new(Arc::clone(&state), emp_state.clone()).unwrap(),
            CatColumn::new(Arc::clone(&revenue), emp_revenue.clone()).unwrap(),
        ],
    )
    .unwrap();

    // Customers: churn depends on the employer's wealth & coast (the data
    // scientist's "hunch" from the intro) plus the customer's age.
    let mut cust_gender = Vec::new();
    let mut cust_age = Vec::new();
    let mut cust_emp = Vec::new();
    let mut cust_churn = Vec::new();
    for _ in 0..n_customers {
        let g = rng.gen_range(0..2u32);
        let a = rng.gen_range(0..3u32);
        let e = rng.gen_range(0..n_employers);
        let rich_coastal = emp_revenue[e as usize] == 2 && emp_state[e as usize] == 0;
        let mut p_churn = 0.08f64;
        if !rich_coastal {
            p_churn += 0.62; // the intro's hunch: rich coastal employers retain
        }
        if a == 0 {
            p_churn += 0.2; // younger customers churn more
        }
        let p_churn = p_churn.min(0.92);
        cust_gender.push(g);
        cust_age.push(a);
        cust_emp.push(e);
        cust_churn.push(u32::from(rng.gen_bool(p_churn)));
    }
    let customers = Table::new(
        TableSchema::new(
            "customers",
            vec![
                ColumnDef::new("churn", ColumnRole::Target),
                ColumnDef::new("gender", ColumnRole::HomeFeature),
                ColumnDef::new("age_band", ColumnRole::HomeFeature),
                ColumnDef::new("employer", ColumnRole::ForeignKey { dim: 0 }),
            ],
        )
        .unwrap(),
        vec![
            CatColumn::new(churn, cust_churn).unwrap(),
            CatColumn::new(gender, cust_gender).unwrap(),
            CatColumn::new(age, cust_age).unwrap(),
            CatColumn::new(Arc::clone(&employer_keys), cust_emp).unwrap(),
        ],
    )
    .unwrap();

    let star = StarSchema::new(
        customers,
        vec![Dimension::new(employers, "employer", "employer")],
    )
    .unwrap();

    // --- Ask the advisor (no employer data needed, just its cardinality).
    let n_train = n_customers as usize / 2;
    let report = advise(&star, n_train, ModelFamily::TreeOrAnn);
    println!(
        "Advisor (decision tree, threshold {}x):",
        report.dimensions[0].threshold
    );
    for d in &report.dimensions {
        println!(
            "  {}: tuple ratio {:.1} → {:?}",
            d.dimension, d.tuple_ratio, d.advice
        );
    }

    // --- Verify by training both ways. --------------------------------
    let g = GeneratedStar {
        star,
        n_train,
        n_val: n_customers as usize / 4,
        n_test: n_customers as usize - n_train - n_customers as usize / 4,
    };
    let budget = Budget::quick();
    println!("\nDecision tree (gini), tuned on the validation split:");
    for config in [FeatureConfig::JoinAll, FeatureConfig::NoJoin] {
        let r = run_experiment(&g, ModelSpec::TreeGini, &config, &budget).unwrap();
        println!(
            "  {:<8} test accuracy {:.4}  ({:.2}s end-to-end)",
            r.config, r.test_accuracy, r.seconds
        );
    }
    println!("\nAvoiding the join was safe — exactly what the tuple ratio predicted.");
}
