//! Making foreign-key features practical (§6): domain compression for
//! interpretability and smoothing for FK values unseen in training.
//!
//! Part 1 compresses a large FK domain to a handful of groups and shows the
//! tree is still accurate — and actually *readable*. Part 2 hides a
//! fraction of the FK domain from training and compares random vs
//! X_R-based smoothing at prediction time.
//!
//! ```text
//! cargo run --release --example fk_compression
//! ```

use hamlet::ml::dataset::Provenance;
use hamlet::prelude::*;

fn main() {
    let budget = Budget::quick();

    // ---- Part 1: domain compression (Figure 10 in miniature). --------
    println!("Part 1: FK domain compression (OneXr, n_R = 400, NoJoin)\n");
    let g = onexr::generate(OneXrParams {
        n_s: 2000,
        n_r: 400,
        ..Default::default()
    });
    let data = build_splits(&g, &FeatureConfig::NoJoin).unwrap();
    let fk = data
        .train
        .features()
        .iter()
        .position(|f| matches!(f.provenance, Provenance::ForeignKey { .. }))
        .unwrap();

    let uncompressed = ModelSpec::TreeGini
        .fit_tuned(&data.train, &data.val, &budget)
        .unwrap();
    println!(
        "  uncompressed (|D_FK| = 400): test accuracy {:.4}",
        uncompressed.model.accuracy(&data.test)
    );

    println!("  (OneXr routes ALL signal through the FK — the adversarial case)");
    for l in [4u32, 16, 64] {
        for method in [
            CompressionMethod::RandomHash { seed: 1 },
            CompressionMethod::SortBased,
            CompressionMethod::RateBased,
        ] {
            let comp = build_compression(&data.train, fk, l, method).unwrap();
            let train = comp.apply(&data.train).unwrap();
            let val = comp.apply(&data.val).unwrap();
            let test = comp.apply(&data.test).unwrap();
            let tuned = ModelSpec::TreeGini
                .fit_tuned(&train, &val, &budget)
                .unwrap();
            println!(
                "  budget {l:>3} {:<26} test accuracy {:.4}",
                format!("({method:?})"),
                tuned.model.accuracy(&test)
            );
        }
    }
    println!("\n  The paper's entropy sort is class-symmetric, so when the FK itself");
    println!("  carries the signal it can merge opposing codes; the rate-based");
    println!("  extension keeps the signal at any budget.");

    // ---- Part 2: smoothing unseen FK values (Figure 11 in miniature). -
    println!("\nPart 2: smoothing FK values unseen in training (γ = 0.5)\n");
    let g = onexr::generate(OneXrParams {
        n_s: 1000,
        n_r: 40,
        unseen_frac: 0.5,
        ..Default::default()
    });
    let data = build_splits(&g, &FeatureConfig::NoJoin).unwrap();
    let fk = data
        .train
        .features()
        .iter()
        .position(|f| matches!(f.provenance, Provenance::ForeignKey { .. }))
        .unwrap();

    // Baseline: no smoothing — unseen codes fall to the majority child.
    let tuned = ModelSpec::TreeGini
        .fit_tuned(&data.train, &data.val, &budget)
        .unwrap();
    println!(
        "  no smoothing:        test accuracy {:.4}",
        tuned.model.accuracy(&data.test)
    );

    for (label, method) in [
        ("random reassignment", SmoothingMethod::Random { seed: 3 }),
        ("X_R-based (l0 match)", SmoothingMethod::XrBased),
    ] {
        let dim = &g.star.dims()[0].table;
        let smoothing = build_smoothing(&data.train, fk, method, Some(dim)).unwrap();
        let val = smoothing.apply(&data.val).unwrap();
        let test = smoothing.apply(&data.test).unwrap();
        let tuned = ModelSpec::TreeGini
            .fit_tuned(&data.train, &val, &budget)
            .unwrap();
        println!(
            "  {label}: test accuracy {:.4}  ({} unseen codes reassigned)",
            tuned.model.accuracy(&test),
            smoothing.n_unseen
        );
    }
    println!("\nThe dimension table earns its keep as *side information* for smoothing");
    println!("even when its features are never model inputs — §6.2's 'best of both worlds'.");
}
