//! # hamlet
//!
//! A from-scratch Rust reproduction of **"Are Key-Foreign Key Joins Safe to
//! Avoid when Learning High-Capacity Classifiers?"** (Shah, Kumar, Zhu —
//! VLDB 2017), the follow-up to the SIGMOD'16 "Hamlet" line of work.
//!
//! This facade crate re-exports the core layers of the system:
//!
//! - [`relation`] (`hamlet-relation`) — the categorical star-schema
//!   substrate: domains, columnar tables, KFK joins, FD checking;
//! - [`ml`] (`hamlet-ml`) — the ten classifiers of the study, built from
//!   scratch (CART trees, SMO kernel SVMs, an MLP with Adam, 1-NN, Naive
//!   Bayes, L1 logistic regression) plus grid-search tuning;
//! - [`datagen`] (`hamlet-datagen`) — the paper's simulation scenarios
//!   (`OneXr`, `XSXR`, `RepOneXr`, FK skew) and Table-1 dataset emulators;
//! - [`core`] (`hamlet-core`) — the contribution itself: feature configs
//!   (JoinAll / NoJoin / NoFK), the tuple-ratio advisor, FK domain
//!   compression and smoothing, the bias-variance harness and the
//!   experiment runner.
//!
//! The serving layer (`hamlet-serve`: model persistence, the registry and
//! the batched HTTP inference/advisor server) is intentionally not
//! re-exported here — depend on it directly, or use the `hamlet-serve`
//! binary (see the README quickstart).
//!
//! ## Quickstart
//!
//! ```
//! use hamlet::prelude::*;
//!
//! // A Movies-shaped star schema at reduced scale.
//! let g = EmulatorSpec::movies().generate_scaled(1200, 7);
//!
//! // Should we bother joining the dimension tables for a decision tree?
//! let report = advise(&g.star, g.n_train, ModelFamily::TreeOrAnn);
//! assert!(report.all_avoidable());
//!
//! // Prove it: accuracy with and without the joins.
//! let budget = Budget::quick();
//! let join_all = run_experiment(&g, ModelSpec::TreeGini, &FeatureConfig::JoinAll, &budget).unwrap();
//! let no_join = run_experiment(&g, ModelSpec::TreeGini, &FeatureConfig::NoJoin, &budget).unwrap();
//! assert!((join_all.test_accuracy - no_join.test_accuracy).abs() < 0.08);
//! ```

pub use hamlet_core as core;
pub use hamlet_datagen as datagen;
pub use hamlet_ml as ml;
pub use hamlet_relation as relation;

/// Everything a typical user needs, in one import.
pub mod prelude {
    pub use hamlet_core::prelude::*;
    pub use hamlet_datagen::prelude::*;
    pub use hamlet_ml::prelude::*;
    pub use hamlet_relation::prelude::*;
}
