//! Offline compat `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored `serde`.
//!
//! Implemented directly on `proc_macro` token trees (no `syn`/`quote`, which
//! are unavailable offline). Supports the shapes this workspace uses:
//!
//! - structs with named fields;
//! - tuple structs (newtype and multi-field);
//! - enums with unit, newtype, tuple and struct variants;
//!
//! without generic parameters and without `#[serde(...)]` attributes. The
//! emitted representation matches `serde_json`'s externally tagged default,
//! see the `serde` crate docs.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = serialize_body(&item);
    format!(
        "impl ::serde::Serialize for {} {{\n\
         fn serialize(&self) -> ::serde::Value {{ {} }}\n\
         }}",
        item.name, body
    )
    .parse()
    .expect("derive(Serialize): generated code must parse")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = deserialize_body(&item);
    format!(
        "impl ::serde::Deserialize for {} {{\n\
         fn deserialize(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ {} }}\n\
         }}",
        item.name, body
    )
    .parse()
    .expect("derive(Deserialize): generated code must parse")
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attrs_and_vis(&tokens, &mut pos);
    let kind = match &tokens[pos] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde derive: expected `struct` or `enum`, got {other}"),
    };
    pos += 1;
    let name = match &tokens[pos] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde derive: expected type name, got {other}"),
    };
    pos += 1;
    if matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde derive (vendored): generic types are not supported — `{name}`");
    }
    let shape = match kind.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("serde derive: unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde derive: unsupported enum body for `{name}`: {other:?}"),
        },
        other => panic!("serde derive: cannot derive for `{other}` items"),
    };
    Item { name, shape }
}

/// Advances past outer attributes (`#[...]`) and visibility (`pub`,
/// `pub(...)`).
fn skip_attrs_and_vis(tokens: &[TokenTree], pos: &mut usize) {
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *pos += 1; // '#'
                if matches!(tokens.get(*pos), Some(TokenTree::Group(_))) {
                    *pos += 1; // [...]
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *pos += 1;
                if matches!(
                    tokens.get(*pos),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *pos += 1; // (crate) / (super) / ...
                }
            }
            _ => return,
        }
    }
}

/// Parses `name: Type, ...` field lists, returning the names. Types are
/// skipped with angle-bracket depth tracking so generic arguments' commas do
/// not split fields.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = match &tokens[pos] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde derive: expected field name, got {other}"),
        };
        pos += 1;
        match &tokens[pos] {
            TokenTree::Punct(p) if p.as_char() == ':' => pos += 1,
            other => panic!("serde derive: expected `:` after `{name}`, got {other}"),
        }
        skip_type(&tokens, &mut pos);
        fields.push(name);
        // Skip the trailing comma, if any.
        if matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
    }
    fields
}

/// Skips one type, stopping at a top-level `,` (or end of stream).
fn skip_type(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(tok) = tokens.get(*pos) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *pos += 1;
    }
}

/// Counts tuple fields by splitting on top-level commas.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut pos);
        skip_type(&tokens, &mut pos);
        count += 1;
        if matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = match &tokens[pos] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde derive: expected variant name, got {other}"),
        };
        pos += 1;
        let kind = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                VariantKind::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        if matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            pos += 1;
            while pos < tokens.len()
                && !matches!(&tokens[pos], TokenTree::Punct(p) if p.as_char() == ',')
            {
                pos += 1;
            }
        }
        if matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// ---------------------------------------------------------------- codegen

fn str_lit(s: &str) -> String {
    format!("::std::string::String::from(\"{s}\")")
}

fn serialize_body(item: &Item) -> String {
    match &item.shape {
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("({}, ::serde::Serialize::serialize(&self.{f}))", str_lit(f)))
                .collect();
            format!("::serde::Value::Obj(::std::vec![{}])", entries.join(", "))
        }
        Shape::TupleStruct(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            format!("::serde::Value::Arr(::std::vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| serialize_variant_arm(&item.name, v))
                .collect();
            format!("match self {{ {} }}", arms.join("\n"))
        }
    }
}

fn serialize_variant_arm(ty: &str, v: &Variant) -> String {
    let tag = str_lit(&v.name);
    match &v.kind {
        VariantKind::Unit => format!("{ty}::{v} => ::serde::Value::Str({tag}),", v = v.name),
        VariantKind::Tuple(1) => format!(
            "{ty}::{v}(x0) => ::serde::Value::Obj(::std::vec![({tag}, \
             ::serde::Serialize::serialize(x0))]),",
            v = v.name
        ),
        VariantKind::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
            let items: Vec<String> = binds
                .iter()
                .map(|b| format!("::serde::Serialize::serialize({b})"))
                .collect();
            format!(
                "{ty}::{v}({binds}) => ::serde::Value::Obj(::std::vec![({tag}, \
                 ::serde::Value::Arr(::std::vec![{items}]))]),",
                v = v.name,
                binds = binds.join(", "),
                items = items.join(", ")
            )
        }
        VariantKind::Named(fields) => {
            let binds = fields.join(", ");
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("({}, ::serde::Serialize::serialize({f}))", str_lit(f)))
                .collect();
            format!(
                "{ty}::{v} {{ {binds} }} => ::serde::Value::Obj(::std::vec![({tag}, \
                 ::serde::Value::Obj(::std::vec![{entries}]))]),",
                v = v.name,
                entries = entries.join(", ")
            )
        }
    }
}

fn deserialize_body(item: &Item) -> String {
    let ty = &item.name;
    match &item.shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::deserialize(obj.field(\"{f}\"))\
                         .map_err(|e| e.at(\"{f}\"))?,"
                    )
                })
                .collect();
            format!(
                "let obj = v.as_obj_view(\"{ty}\")?;\n\
                 ::std::result::Result::Ok({ty} {{ {} }})",
                inits.join("\n")
            )
        }
        Shape::TupleStruct(1) => {
            format!("::std::result::Result::Ok({ty}(::serde::Deserialize::deserialize(v)?))")
        }
        Shape::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::deserialize(&items[{i}])?"))
                .collect();
            format!(
                "match v {{\n\
                 ::serde::Value::Arr(items) if items.len() == {n} => \
                 ::std::result::Result::Ok({ty}({inits})),\n\
                 other => ::std::result::Result::Err(::serde::Error::expected(\
                 \"{n}-element array for {ty}\", other)),\n\
                 }}",
                inits = inits.join(", ")
            )
        }
        Shape::UnitStruct => format!("::std::result::Result::Ok({ty})"),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| deserialize_variant_arm(ty, v))
                .collect();
            format!(
                "let (tag, payload) = v.as_enum_view(\"{ty}\")?;\n\
                 let _ = &payload;\n\
                 match tag {{\n{}\n\
                 other => ::std::result::Result::Err(::serde::Error(::std::format!(\
                 \"unknown variant `{{other}}` for {ty}\"))),\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

fn deserialize_variant_arm(ty: &str, v: &Variant) -> String {
    let name = &v.name;
    match &v.kind {
        VariantKind::Unit => {
            format!("\"{name}\" => ::std::result::Result::Ok({ty}::{name}),")
        }
        VariantKind::Tuple(1) => format!(
            "\"{name}\" => ::std::result::Result::Ok({ty}::{name}(\
             ::serde::Deserialize::deserialize(payload).map_err(|e| e.at(\"{name}\"))?)),"
        ),
        VariantKind::Tuple(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::deserialize(&items[{i}])\
                         .map_err(|e| e.at(\"{name}\"))?"
                    )
                })
                .collect();
            format!(
                "\"{name}\" => match payload {{\n\
                 ::serde::Value::Arr(items) if items.len() == {n} => \
                 ::std::result::Result::Ok({ty}::{name}({inits})),\n\
                 other => ::std::result::Result::Err(::serde::Error::expected(\
                 \"{n}-element array for {ty}::{name}\", other)),\n\
                 }},",
                inits = inits.join(", ")
            )
        }
        VariantKind::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::deserialize(obj.field(\"{f}\"))\
                         .map_err(|e| e.at(\"{name}.{f}\"))?,"
                    )
                })
                .collect();
            format!(
                "\"{name}\" => {{\n\
                 let obj = payload.as_obj_view(\"{ty}::{name}\")?;\n\
                 ::std::result::Result::Ok({ty}::{name} {{ {} }})\n\
                 }},",
                inits.join("\n")
            )
        }
    }
}
