//! Offline compat subset of the `serde_json` API, backed by the vendored
//! `serde`'s [`Value`] tree and its JSON reader/writer.

pub use serde::value::Number;
pub use serde::Error;
pub use serde::Value;

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.serialize().to_json())
}

/// Serializes a value to pretty-printed JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.serialize().to_json_pretty())
}

/// Serializes a value to compact JSON bytes.
pub fn to_vec<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    Ok(value.serialize().to_json().into_bytes())
}

/// Deserializes a value from JSON text.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T> {
    T::deserialize(&Value::from_json(text)?)
}

/// Deserializes a value from JSON bytes.
pub fn from_slice<T: serde::Deserialize>(bytes: &[u8]) -> Result<T> {
    let text = std::str::from_utf8(bytes).map_err(|e| Error(format!("invalid UTF-8: {e}")))?;
    from_str(text)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.serialize())
}

/// Reconstructs a typed value from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T> {
    T::deserialize(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_level_roundtrip() {
        let v: Vec<u32> = from_str("[1, 2, 3]").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        assert_eq!(to_string(&v).unwrap(), "[1,2,3]");
        assert!(from_str::<Vec<u32>>("[1, ]").is_err());
    }

    #[test]
    fn slice_and_vec_roundtrip() {
        let bytes = to_vec(&true).unwrap();
        assert!(from_slice::<bool>(&bytes).unwrap());
    }
}
