//! `Serialize`/`Deserialize` implementations for std types.

use crate::value::{Number, Value};
use crate::{Deserialize, Error, Serialize};
use std::collections::{BTreeMap, HashMap};

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", other)),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Num(Number::UInt(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(n) => n
                        .as_u64()
                        .and_then(|u| <$t>::try_from(u).ok())
                        .ok_or_else(|| Error::expected(stringify!($t), v)),
                    other => Err(Error::expected(stringify!($t), other)),
                }
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let v = *self as i64;
                if v < 0 {
                    Value::Num(Number::Int(v))
                } else {
                    Value::Num(Number::UInt(v as u64))
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(n) => n
                        .as_i64()
                        .and_then(|i| <$t>::try_from(i).ok())
                        .ok_or_else(|| Error::expected(stringify!($t), v)),
                    other => Err(Error::expected(stringify!($t), other)),
                }
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Num(Number::Float(*self))
    }
}

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Num(n) => Ok(n.as_f64()),
            // serde_json writes non-finite floats as null; accept them back
            // as NaN so artifacts containing sentinel values stay loadable.
            Value::Null => Ok(f64::NAN),
            other => Err(Error::expected("f64", other)),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        // Widening to f64 is exact, so the shortest-f64 printing round-trips
        // the original f32 bit pattern through `as f32`.
        Value::Num(Number::Float(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        f64::deserialize(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::expected("single-char string", other)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        T::deserialize(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        T::deserialize(v).map(std::sync::Arc::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(inner) => inner.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Arr(items) => items.iter().map(T::deserialize).collect(),
            other => Err(Error::expected("array", other)),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Arr(items) if items.len() == N => {
                let mut out = [T::default(); N];
                for (slot, item) in out.iter_mut().zip(items) {
                    *slot = T::deserialize(item)?;
                }
                Ok(out)
            }
            other => Err(Error::expected("fixed-size array", other)),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Arr(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Arr(items) if items.len() == [$($idx),+].len() => {
                        Ok(($($name::deserialize(&items[$idx])?,)+))
                    }
                    other => Err(Error::expected("tuple array", other)),
                }
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize(&self) -> Value {
        // Sort keys so output is deterministic.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.serialize()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Obj(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Obj(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
                .collect(),
            other => Err(Error::expected("object", other)),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Obj(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
                .collect(),
            other => Err(Error::expected("object", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Serialize + Deserialize + PartialEq + std::fmt::Debug>(x: T) {
        let v = x.serialize();
        let text = v.to_json();
        let parsed = Value::from_json(&text).unwrap();
        assert_eq!(T::deserialize(&parsed).unwrap(), x, "{text}");
    }

    #[test]
    fn std_types_roundtrip() {
        roundtrip(true);
        roundtrip(42u32);
        roundtrip(u64::MAX);
        roundtrip(-7i64);
        roundtrip(0.1f64);
        roundtrip(0.1f32);
        roundtrip(String::from("héllo\n"));
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Some(5usize));
        roundtrip(Option::<usize>::None);
        roundtrip([1.5f64, -2.5]);
        roundtrip((1u32, String::from("x")));
    }

    #[test]
    fn f32_roundtrips_bit_exactly() {
        for f in [0.1f32, 1.0 / 3.0, f32::MIN_POSITIVE, 1e30] {
            let text = f.serialize().to_json();
            let back = f32::deserialize(&Value::from_json(&text).unwrap()).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{text}");
        }
    }

    #[test]
    fn bounds_are_checked() {
        let v = Value::Num(Number::UInt(300));
        assert!(u8::deserialize(&v).is_err());
        assert!(u32::deserialize(&Value::Num(Number::Int(-1))).is_err());
    }
}
