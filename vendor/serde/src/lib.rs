//! Offline compat subset of the `serde` API.
//!
//! The build environment has no network access, so this workspace vendors a
//! small, dependency-free serialization framework exposing the serde surface
//! the hamlet crates use: the [`Serialize`]/[`Deserialize`] traits and their
//! derive macros. Instead of upstream serde's visitor architecture, both
//! traits go through one self-describing in-memory tree, [`Value`] — the
//! derive macros and the `serde_json` facade all speak [`Value`].
//!
//! Representation choices mirror `serde_json` so derived types interoperate
//! with hand-written JSON:
//!
//! - structs → objects keyed by field name;
//! - unit enum variants → the variant name as a string;
//! - struct/tuple enum variants → externally tagged single-key objects;
//! - newtype variants → `{"Variant": value}`;
//! - `Option` → the value or `null`; missing object keys deserialize into
//!   `Option::None`.
//!
//! Integers keep 64-bit precision end to end ([`Value::Int`]/[`Value::UInt`]
//! are not collapsed into `f64`), so `u64` seeds and hashes round-trip
//! bit-exactly; floats print in shortest round-trip form.

mod impls;
pub mod value;

pub use value::{Number, Value};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// Deserialization error: a human-readable path plus expectation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Builds an error describing what was expected at which field.
    pub fn expected(what: &str, got: &Value) -> Error {
        Error(format!("expected {what}, got {}", got.kind()))
    }

    /// Prefixes an error with a field/variant path segment.
    #[must_use]
    pub fn at(self, segment: &str) -> Error {
        Error(format!("{segment}: {}", self.0))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types convertible into a [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` into the value tree.
    fn serialize(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserializes from a value tree.
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

/// Object-shaped helper used by derived code: field lookup with
/// missing-field tracking (missing fields read as [`Value::Null`], which
/// only `Option` fields accept).
pub struct ObjView<'a> {
    entries: &'a [(String, Value)],
}

impl<'a> ObjView<'a> {
    /// Wraps an object's entries.
    pub fn new(entries: &'a [(String, Value)]) -> Self {
        ObjView { entries }
    }

    /// Looks up a field; absent fields read as `Null`.
    pub fn field(&self, name: &str) -> &'a Value {
        self.entries
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .unwrap_or(&Value::Null)
    }
}

impl Value {
    /// Views this value as an object, or errors naming the expecting type.
    pub fn as_obj_view(&self, type_name: &str) -> Result<ObjView<'_>, Error> {
        match self {
            Value::Obj(entries) => Ok(ObjView::new(entries)),
            other => Err(Error(format!(
                "expected object for {type_name}, got {}",
                other.kind()
            ))),
        }
    }

    /// Views this value as an externally tagged enum: either a bare string
    /// (unit variant) or a single-key object `(tag, payload)`.
    pub fn as_enum_view(&self, type_name: &str) -> Result<(&str, &Value), Error> {
        match self {
            Value::Str(s) => Ok((s.as_str(), &Value::Null)),
            Value::Obj(entries) if entries.len() == 1 => Ok((entries[0].0.as_str(), &entries[0].1)),
            other => Err(Error(format!(
                "expected enum variant for {type_name}, got {}",
                other.kind()
            ))),
        }
    }
}
