//! The self-describing value tree plus its JSON reader/writer.

use std::fmt;

/// A number preserving 64-bit integer precision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Signed integer (only used for negative values).
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating point.
    Float(f64),
}

impl Number {
    /// Lossy view as `f64` (exact for integers below 2^53).
    pub fn as_f64(self) -> f64 {
        match self {
            Number::Int(v) => v as f64,
            Number::UInt(v) => v as f64,
            Number::Float(v) => v,
        }
    }

    /// Exact view as `u64` when representable.
    pub fn as_u64(self) -> Option<u64> {
        match self {
            Number::Int(v) if v >= 0 => Some(v as u64),
            Number::Int(_) => None,
            Number::UInt(v) => Some(v),
            Number::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            Number::Float(_) => None,
        }
    }

    /// Exact view as `i64` when representable.
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::Int(v) => Some(v),
            Number::UInt(v) => i64::try_from(v).ok(),
            Number::Float(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => Some(f as i64),
            Number::Float(_) => None,
        }
    }
}

/// A JSON-shaped tree. Objects preserve insertion order (derived structs
/// serialize fields in declaration order).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(Number),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object as ordered key-value pairs.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Short kind tag for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }

    /// Renders compact JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out, None, 0);
        out
    }

    /// Renders pretty-printed JSON with two-space indentation.
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out, Some(2), 0);
        out
    }

    fn write_json(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Num(n) => write_number(*n, out),
            Value::Str(s) => write_escaped(s, out),
            Value::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write_json(out, indent, d);
                });
            }
            Value::Obj(entries) => {
                write_seq(out, indent, depth, '{', '}', entries.len(), |out, i, d| {
                    write_escaped(&entries[i].0, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    entries[i].1.write_json(out, indent, d);
                });
            }
        }
    }

    /// Parses JSON text.
    pub fn from_json(text: &str) -> Result<Value, crate::Error> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.parse_value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(crate::Error(format!(
                "trailing characters at byte {}",
                p.pos
            )));
        }
        Ok(v)
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut write_item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        write_item(out, i, depth + 1);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * depth));
    }
    out.push(close);
}

fn write_number(n: Number, out: &mut String) {
    use fmt::Write as _;
    match n {
        Number::Int(v) => {
            let _ = write!(out, "{v}");
        }
        Number::UInt(v) => {
            let _ = write!(out, "{v}");
        }
        Number::Float(f) if f.is_finite() => {
            // `{}` prints the shortest string that round-trips the f64; add
            // `.0` so integral floats re-parse as floats, matching serde_json.
            let start = out.len();
            let _ = write!(out, "{f}");
            if !out[start..].contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        // serde_json maps non-finite floats to null.
        Number::Float(_) => out.push_str("null"),
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Recursion cap for nested arrays/objects. The parser descends once per
/// nesting level, so unbounded input depth would overflow the stack — fatal
/// and uncatchable in a server worker. 128 matches serde_json's default.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn err(&self, msg: &str) -> crate::Error {
        crate::Error(format!("{msg} at byte {}", self.pos))
    }

    fn expect(&mut self, b: u8) -> Result<(), crate::Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn expect_literal(&mut self, lit: &str) -> Result<(), crate::Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value, crate::Error> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err("nesting deeper than 128 levels"));
        }
        let value = self.parse_value_inner();
        self.depth -= 1;
        value
    }

    fn parse_value_inner(&mut self) -> Result<Value, crate::Error> {
        match self.peek() {
            Some(b'n') => {
                self.expect_literal("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.expect_literal("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.expect_literal("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Obj(entries));
                        }
                        _ => return Err(self.err("expected ',' or '}'")),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_string(&mut self) -> Result<String, crate::Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.expect_literal("\\u")?;
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                _ => {
                    // Re-decode UTF-8 starting at the byte we consumed.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && !matches!(self.bytes[end], b'"' | b'\\') {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, crate::Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, crate::Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Num(Number::UInt(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Num(Number::Int(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Num(Number::Float(f)))
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact() {
        let v = Value::Obj(vec![
            ("a".into(), Value::Num(Number::UInt(7))),
            ("b".into(), Value::Arr(vec![Value::Bool(true), Value::Null])),
            ("s".into(), Value::Str("x \"y\"\n".into())),
            ("f".into(), Value::Num(Number::Float(0.1))),
        ]);
        let text = v.to_json();
        let back = Value::from_json(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn integers_keep_full_precision() {
        let v = Value::Num(Number::UInt(u64::MAX));
        let back = Value::from_json(&v.to_json()).unwrap();
        assert_eq!(back, v);
        let v = Value::Num(Number::Int(-42));
        assert_eq!(Value::from_json(&v.to_json()).unwrap(), v);
    }

    #[test]
    fn floats_roundtrip_shortest_form() {
        for f in [0.1, 1.0 / 3.0, 1e300, -2.5e-10, 3.0] {
            let v = Value::Num(Number::Float(f));
            let text = v.to_json();
            match Value::from_json(&text).unwrap() {
                Value::Num(n) => assert_eq!(n.as_f64().to_bits(), f.to_bits(), "{text}"),
                other => panic!("expected number, got {other:?}"),
            }
        }
    }

    #[test]
    fn pretty_print_shape() {
        let v = Value::Obj(vec![("k".into(), Value::Arr(vec![Value::Null]))]);
        let text = v.to_json_pretty();
        assert!(text.contains("\n  \"k\": [\n    null\n  ]\n"));
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(Value::from_json("{\"a\": }").is_err());
        assert!(Value::from_json("[1, 2").is_err());
        assert!(Value::from_json("12 34").is_err());
        assert!(Value::from_json("\"\\q\"").is_err());
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        // 2M nesting levels must be a clean parse error, not a stack
        // overflow (which would abort a whole server process).
        let bomb = "[".repeat(2_000_000);
        let err = Value::from_json(&bomb).unwrap_err();
        assert!(err.0.contains("nesting"), "{err}");
        // Depth exactly at the cap still parses.
        let ok = format!("{}0{}", "[".repeat(127), "]".repeat(127));
        assert!(Value::from_json(&ok).is_ok());
    }

    #[test]
    fn unicode_escapes() {
        let v = Value::from_json("\"\\u00e9\\ud83d\\ude00\"").unwrap();
        assert_eq!(v, Value::Str("é😀".into()));
    }
}
