//! Offline compat subset of the `criterion` API.
//!
//! A lightweight timing harness with criterion's bench-definition surface
//! (`criterion_group!`, `criterion_main!`, `Criterion::bench_function`,
//! benchmark groups, `bench_with_input`, `black_box`) so the workspace's
//! benches compile and produce useful numbers offline. Statistics are
//! simple — fixed warm-up plus `sample_size` timed batches reporting
//! mean/median/min — with none of upstream's outlier analysis or HTML
//! reports.
//!
//! ## Machine-readable results
//!
//! Every bench binary also **persists its medians as JSON** so the perf
//! trajectory of the repo can be tracked across commits: on exit,
//! `criterion_main!` merges `{"bench/label": median_ns, ...}` into the file
//! named by the `HAMLET_BENCH_JSON` environment variable (default
//! `BENCH_serve.json` in the workspace root, resolved from
//! `CARGO_MANIFEST_DIR`). Existing entries for other benches are preserved,
//! so `cargo bench` runs accumulate into one snapshot.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, re-exported like criterion's.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark identifier combining a function name and a parameter label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// The timing loop handle passed to bench closures.
pub struct Bencher {
    /// Timed samples collected by `iter`.
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, collecting `sample_size` samples of adaptively
    /// chosen batch size.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and batch sizing: aim for ≥ ~2ms per sample so Instant
        // overhead stays negligible, capped to keep total time bounded.
        let warmup = Instant::now();
        black_box(routine());
        let once = warmup.elapsed().max(Duration::from_nanos(50));
        let per_sample = Duration::from_millis(2);
        let batch = (per_sample.as_nanos() / once.as_nanos()).clamp(1, 10_000) as usize;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / batch as u32);
        }
    }
}

/// The benchmark driver (subset of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
    /// `(label, median ns)` for every benchmark run so far, in run order.
    results: Vec<(String, u64)>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            results: Vec::new(),
        }
    }
}

fn run_one(
    label: &str,
    sample_size: usize,
    results: &mut Vec<(String, u64)>,
    f: impl FnOnce(&mut Bencher),
) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:<50} (no samples)");
        return;
    }
    let min = bencher.samples.iter().min().unwrap();
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let mut sorted = bencher.samples.clone();
    sorted.sort();
    let median = sorted[sorted.len() / 2];
    println!("{label:<50} mean {mean:>12.2?}   median {median:>12.2?}   min {min:>12.2?}");
    results.push((
        label.to_string(),
        median.as_nanos().min(u128::from(u64::MAX)) as u64,
    ));
}

impl Criterion {
    /// Overrides the sample count for subsequently defined benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Defines a standalone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        run_one(name, self.sample_size, &mut self.results, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            parent: self,
        }
    }

    /// `(label, median ns)` pairs recorded so far.
    pub fn results(&self) -> &[(String, u64)] {
        &self.results
    }

    /// Merges this run's medians into the snapshot JSON (see module docs).
    /// Called by `criterion_main!`; failures are reported but non-fatal —
    /// a read-only checkout must not fail the bench run itself.
    pub fn persist_results(&self) {
        if self.results.is_empty() {
            return;
        }
        let path = snapshot_path();
        let mut merged = read_snapshot(&path);
        for (label, median) in &self.results {
            merged.retain(|(l, _)| l != label);
            merged.push((label.clone(), *median));
        }
        merged.sort_by(|a, b| a.0.cmp(&b.0));
        let mut out = String::from("{\n");
        for (i, (label, median)) in merged.iter().enumerate() {
            let comma = if i + 1 == merged.len() { "" } else { "," };
            out.push_str(&format!("  \"{}\": {median}{comma}\n", escape(label)));
        }
        out.push_str("}\n");
        match std::fs::write(&path, out) {
            Ok(()) => println!("bench medians merged into {}", path.display()),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
    }
}

/// Where the snapshot lives: `HAMLET_BENCH_JSON` wins; otherwise
/// `BENCH_serve.json` at the workspace root (two levels above the bench
/// crate's manifest), falling back to the current directory.
fn snapshot_path() -> std::path::PathBuf {
    if let Ok(p) = std::env::var("HAMLET_BENCH_JSON") {
        return std::path::PathBuf::from(p);
    }
    let root = std::env::var("CARGO_MANIFEST_DIR")
        .map(|m| {
            let mut p = std::path::PathBuf::from(m);
            p.pop();
            p.pop();
            p
        })
        .unwrap_or_default();
    root.join("BENCH_serve.json")
}

/// Reads an existing snapshot written by `persist_results` (one
/// `"label": ns` pair per line). Tolerates a missing or foreign file by
/// starting empty — the format is ours, so no general JSON parser is
/// needed offline.
fn read_snapshot(path: &std::path::Path) -> Vec<(String, u64)> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some(rest) = line.strip_prefix('"') else {
            continue;
        };
        let Some((label, value)) = rest.rsplit_once("\": ") else {
            continue;
        };
        if let Ok(ns) = value.trim().parse::<u64>() {
            out.push((unescape(label), ns));
        }
    }
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn unescape(s: &str) -> String {
    s.replace("\\\"", "\"").replace("\\\\", "\\")
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count within this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Defines a benchmark inside the group.
    pub fn bench_function(
        &mut self,
        name: impl Display,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        run_one(
            &format!("{}/{name}", self.name),
            self.sample_size,
            &mut self.parent.results,
            f,
        );
        self
    }

    /// Defines a parameterized benchmark inside the group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id.label),
            self.sample_size,
            &mut self.parent.results,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (formatting no-op, kept for API parity).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the bench `main` running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            c.persist_results();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        c.sample_size(3)
            .bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("inner", |b| b.iter(|| black_box(2) * 2));
        group.bench_with_input(BenchmarkId::new("param", 7), &7u32, |b, &x| {
            b.iter(|| x + 1)
        });
        group.finish();
        assert_eq!(c.results().len(), 3);
        assert!(c.results().iter().all(|(_, ns)| *ns > 0));
    }

    #[test]
    fn snapshot_merge_roundtrips() {
        let dir = std::env::temp_dir().join(format!("criterion-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_test.json");
        std::fs::write(&path, "{\n  \"old/keep\": 7,\n  \"old/replace\": 100\n}\n").unwrap();
        let existing = read_snapshot(&path);
        assert_eq!(existing.len(), 2);
        // Merge semantics: replaced keys update, others survive.
        let mut merged = existing;
        merged.retain(|(l, _)| l != "old/replace");
        merged.push(("old/replace".into(), 42));
        assert!(merged.iter().any(|(l, n)| l == "old/keep" && *n == 7));
        assert!(merged.iter().any(|(l, n)| l == "old/replace" && *n == 42));
        std::fs::remove_dir_all(&dir).ok();
    }
}
