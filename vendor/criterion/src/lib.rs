//! Offline compat subset of the `criterion` API.
//!
//! A lightweight timing harness with criterion's bench-definition surface
//! (`criterion_group!`, `criterion_main!`, `Criterion::bench_function`,
//! benchmark groups, `bench_with_input`, `black_box`) so the workspace's
//! benches compile and produce useful numbers offline. Statistics are
//! simple — fixed warm-up plus `sample_size` timed batches reporting
//! mean/min — with none of upstream's outlier analysis or HTML reports.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, re-exported like criterion's.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark identifier combining a function name and a parameter label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// The timing loop handle passed to bench closures.
pub struct Bencher {
    /// Timed samples collected by `iter`.
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, collecting `sample_size` samples of adaptively
    /// chosen batch size.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and batch sizing: aim for ≥ ~2ms per sample so Instant
        // overhead stays negligible, capped to keep total time bounded.
        let warmup = Instant::now();
        black_box(routine());
        let once = warmup.elapsed().max(Duration::from_nanos(50));
        let per_sample = Duration::from_millis(2);
        let batch = (per_sample.as_nanos() / once.as_nanos()).clamp(1, 10_000) as usize;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / batch as u32);
        }
    }
}

/// The benchmark driver (subset of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

fn run_one(label: &str, sample_size: usize, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:<50} (no samples)");
        return;
    }
    let min = bencher.samples.iter().min().unwrap();
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    println!("{label:<50} mean {mean:>12.2?}   min {min:>12.2?}");
}

impl Criterion {
    /// Overrides the sample count for subsequently defined benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Defines a standalone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        run_one(name, self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count within this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Defines a benchmark inside the group.
    pub fn bench_function(
        &mut self,
        name: impl Display,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        run_one(&format!("{}/{name}", self.name), self.sample_size, f);
        self
    }

    /// Defines a parameterized benchmark inside the group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id.label),
            self.sample_size,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (formatting no-op, kept for API parity).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the bench `main` running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        c.sample_size(3)
            .bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("inner", |b| b.iter(|| black_box(2) * 2));
        group.bench_with_input(BenchmarkId::new("param", 7), &7u32, |b, &x| {
            b.iter(|| x + 1)
        });
        group.finish();
    }
}
