//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard generator: xoshiro256++ seeded via SplitMix64.
///
/// Fast, 256-bit state, passes BigCrush; *not* the upstream ChaCha12-based
/// `StdRng` (streams differ, determinism per seed is what callers rely on).
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_is_never_all_zero() {
        // Even seed 0 must produce a non-degenerate stream.
        let mut rng = StdRng::seed_from_u64(0);
        let first: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        assert!(first.iter().any(|&v| v != 0));
        assert_ne!(first[0], first[1]);
    }
}
