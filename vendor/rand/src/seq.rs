//! Sequence helpers (subset of `rand::seq`).

use crate::{Rng, RngCore};

/// Slice extensions (subset of `rand::seq::SliceRandom`).
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// In-place Fisher–Yates shuffle.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly chosen element, `None` on an empty slice.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j: usize = rng.gen_range(0..i + 1);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..50).collect();
        let mut rng = StdRng::seed_from_u64(9);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "seed 9 should permute");
    }

    #[test]
    fn choose_covers_bounds() {
        let v = [1, 2, 3];
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
