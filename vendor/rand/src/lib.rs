//! Offline compat subset of the `rand` 0.8 API.
//!
//! The build environment has no network access, so this workspace vendors a
//! minimal, dependency-free implementation of exactly the surface the hamlet
//! crates use: [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`],
//! [`rngs::StdRng`] and [`seq::SliceRandom::shuffle`]. The generator is
//! SplitMix64-seeded xoshiro256++ — high quality and deterministic, though
//! the streams differ from upstream `rand`'s ChaCha-based `StdRng` (all
//! in-repo consumers only rely on seeded determinism, not on specific
//! upstream streams).

pub mod rngs;
pub mod seq;

use core::ops::{Range, RangeInclusive};

/// Types that can be uniformly sampled from a range by [`Rng::gen_range`].
pub trait SampleUniform: Copy {
    /// Uniform draw from `[lo, hi)`. `lo < hi` is the caller's contract.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as u64).wrapping_sub(lo as u64);
                debug_assert!(span > 0, "gen_range requires a non-empty range");
                // Debiased multiply-shift (Lemire); the retry loop is cheap
                // because rejection regions are tiny for realistic spans.
                loop {
                    let x = rng.next_u64();
                    let m = (x as u128).wrapping_mul(span as u128);
                    let lowbits = m as u64;
                    if lowbits >= span.wrapping_neg() % span || span.is_power_of_two() {
                        return lo.wrapping_add((m >> 64) as u64 as $t);
                    }
                }
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        lo + (hi - lo) * rng.next_f64()
    }
}

/// Values producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the generator's standard distribution.
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl Standard for f32 {
    #[inline]
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits give a uniform f32 in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u32 {
    #[inline]
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u64 {
    #[inline]
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    #[inline]
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)` (53 bits of randomness).
    #[inline]
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Uniform draw from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range on an empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

macro_rules! impl_range_inclusive {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range on an empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                <$t>::sample_half_open(lo, hi + 1, rng)
            }
        }
    )*};
}
impl_range_inclusive!(u8, u16, u32, u64, usize, i32, i64, isize);

/// The user-facing random-value interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value of an inferred type.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::gen_standard(self)
    }

    /// Uniform draw from a range.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        self.next_f64() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds a generator from OS entropy; this offline vendored build
    /// derives entropy from the system clock instead.
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E3779B97F4A7C15);
        Self::seed_from_u64(nanos)
    }
}

/// Convenience alias for thread-local-style usage: a clock-seeded [`rngs::StdRng`].
pub fn thread_rng() -> rngs::StdRng {
    rngs::StdRng::from_entropy()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_is_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u32 = rng.gen_range(0..7);
            assert!(v < 7);
            let w: usize = rng.gen_range(3..=5);
            assert!((3..=5).contains(&w));
            let f: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_frequency_is_sane() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let freq = hits as f64 / 20_000.0;
        assert!((freq - 0.25).abs() < 0.02, "freq {freq}");
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn full_u64_range_supported() {
        let mut rng = StdRng::seed_from_u64(4);
        let v: u64 = rng.gen_range(0..=u64::MAX);
        let _ = v;
    }
}
