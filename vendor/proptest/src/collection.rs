//! Collection strategies (subset of `proptest::collection`).

use std::ops::Range;

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Length specification for [`vec`]: a fixed size or a half-open range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Strategy producing `Vec`s of values drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Output of [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn draw(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = if self.size.hi - self.size.lo <= 1 {
            self.size.lo
        } else {
            rng.gen_range(self.size.lo..self.size.hi)
        };
        (0..len).map(|_| self.element.draw(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn fixed_and_ranged_lengths() {
        let mut rng = StdRng::seed_from_u64(5);
        let fixed = vec(0u32..3, 4usize);
        assert_eq!(fixed.draw(&mut rng).len(), 4);
        let ranged = vec(0u32..3, 1..6);
        for _ in 0..100 {
            let v = ranged.draw(&mut rng);
            assert!((1..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 3));
        }
    }

    #[test]
    fn nested_vecs() {
        let mut rng = StdRng::seed_from_u64(6);
        let nested = vec(vec(0u32..2, 3usize), 2usize);
        let v = nested.draw(&mut rng);
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|inner| inner.len() == 3));
    }
}
