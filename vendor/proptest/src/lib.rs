//! Offline compat subset of the `proptest` API.
//!
//! The build environment has no network access, so this workspace vendors a
//! small property-testing harness covering the surface the hamlet crates
//! use: the [`Strategy`] trait with `prop_map`/`prop_flat_map`, range and
//! tuple strategies, [`collection::vec`], [`Just`], the [`ProptestConfig`]
//! case count, and the `proptest!`/`prop_assert*` macros.
//!
//! Differences from upstream: cases are drawn from a fixed-seed RNG stream
//! (deterministic per test name length and case index — fully reproducible),
//! and failing inputs are reported but **not shrunk**.

pub mod collection;
pub mod strategy;

pub use strategy::{Just, Strategy};

#[doc(hidden)]
pub use rand as __rand;

/// Runner configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Commonly used items, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests: each `#[test] fn name(binding in strategy, ...)`
/// becomes a standard test that draws `cases` random inputs and runs the
/// body on each, panicking with the offending input on failure.
#[macro_export]
macro_rules! proptest {
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            use $crate::Strategy as _;
            let config: $crate::ProptestConfig = $cfg;
            // Deterministic seed: the test name keeps sibling tests on
            // different streams; no time or global state involved.
            let mut seed: u64 = 0xCAFE_F00D_D15E_A5E5;
            for b in stringify!($name).bytes() {
                seed = seed.wrapping_mul(0x100000001B3).wrapping_add(b as u64);
            }
            for case in 0..config.cases as u64 {
                let mut rng =
                    <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(
                        seed ^ case.wrapping_mul(0x9E3779B97F4A7C15),
                    );
                $(let $arg = ($strat).draw(&mut rng);)*
                let inputs = ($(::std::clone::Clone::clone(&$arg),)*);
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    move || $body,
                ));
                if let Err(panic) = result {
                    let msg = panic
                        .downcast_ref::<String>()
                        .map(String::as_str)
                        .or_else(|| panic.downcast_ref::<&str>().copied())
                        .unwrap_or("<non-string panic>");
                    panic!("proptest case {case} failed: {msg}\n  inputs: {inputs:?}");
                }
            }
        }
    )*};
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}
