//! The [`Strategy`] trait and primitive strategies.

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating random values (subset of `proptest::Strategy`).
///
/// Unlike upstream there is no value tree / shrinking: `draw` directly
/// produces one value from the runner's RNG.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn draw(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Filters generated values, retrying until `pred` accepts one (up to a
    /// fixed retry cap, then panicking like upstream's rejection limit).
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            pred,
            reason,
        }
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn draw(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.draw(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn draw(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.draw(rng)).draw(rng)
    }
}

/// Output of [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    pred: F,
    reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn draw(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.draw(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 candidates: {}", self.reason);
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn draw(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn draw(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn draw(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn draw(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn draw(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.draw(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Full-domain strategy for simple types (subset of `proptest::arbitrary`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    /// The strategy type `any` returns.
    type Strategy: Strategy<Value = Self>;

    /// The full-domain strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Draws via `Rng::gen`-style full-domain sampling.
#[derive(Debug, Clone, Copy)]
pub struct AnyOf<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary {
    ($($t:ty => |$rng:ident| $draw:expr),* $(,)?) => {$(
        impl Strategy for AnyOf<$t> {
            type Value = $t;
            fn draw(&self, $rng: &mut StdRng) -> $t {
                $draw
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyOf<$t>;
            fn arbitrary() -> AnyOf<$t> {
                AnyOf(std::marker::PhantomData)
            }
        }
    )*};
}
impl_arbitrary! {
    bool => |rng| rng.gen::<bool>(),
    u8 => |rng| (rng.gen::<u32>() & 0xFF) as u8,
    u16 => |rng| (rng.gen::<u32>() & 0xFFFF) as u16,
    u32 => |rng| rng.gen::<u32>(),
    u64 => |rng| rng.gen::<u64>(),
    usize => |rng| rng.gen::<u64>() as usize,
    i32 => |rng| rng.gen::<u32>() as i32,
    i64 => |rng| rng.gen::<u64>() as i64,
    f64 => |rng| rng.gen::<f64>(),
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_tuples_maps_compose() {
        let strat = (1u32..5, 0usize..=3)
            .prop_map(|(a, b)| a as usize + b)
            .prop_flat_map(|n| (Just(n), 0..n.max(1)));
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..200 {
            let (n, k) = strat.draw(&mut rng);
            assert!(n <= 7);
            assert!(k < n.max(1));
        }
    }

    #[test]
    fn filter_retries() {
        let strat = (0u32..100).prop_filter("even", |v| v % 2 == 0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(strat.draw(&mut rng) % 2, 0);
        }
    }
}
